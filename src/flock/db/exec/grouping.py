"""Vectorized key formation for the common single-integer-key case.

Hash joins and hash aggregation both form per-row keys; the generic paths
build Python tuples row by row, which dominates the profile once predicates
and projections are vectorized. For a single INTEGER (or DATE — same int64
physical type) key column these helpers do the same work with numpy sorts
and searches, reproducing the documented orderings **bit for bit**:

- :func:`group_single_int` returns groups in first-occurrence order with
  ascending row indexes per group — exactly the dict-insertion order the
  per-row loop produces.
- :func:`join_single_int` returns (left_idx, right_idx) pairs ordered by
  left row, with each left row's matches in ascending right-row order —
  exactly the build-then-probe order of the per-row hash join. NULL keys on
  either side never match.

FLOAT keys stay on the generic path on purpose: Python dict semantics for
NaN (identity-based) differ from numpy sort/unique semantics, and the
generic path is the documented behaviour.
"""

from __future__ import annotations

import numpy as np

from flock.db.types import DataType, python_value
from flock.db.vector import ColumnVector

#: Key dtypes with int64 physical storage and dict-compatible equality.
_INT_KEY_TYPES = (DataType.INTEGER, DataType.DATE)


def group_single_int(
    vector: ColumnVector,
) -> tuple[list[tuple], list[np.ndarray]] | None:
    """First-occurrence-ordered groups of one int64-backed key column.

    Returns ``(keys, indexes)`` — keys as 1-tuples of user-facing Python
    values (None for the NULL group), indexes ascending per group — or None
    when the column is not eligible for the vectorized path.
    """
    if vector.dtype not in _INT_KEY_TYPES:
        return None
    nulls = vector.nulls
    nn_pos = np.nonzero(~nulls)[0]
    entries: list[tuple[int, tuple, np.ndarray]] = []
    if len(nn_pos):
        uniq, first_idx, inverse = np.unique(
            vector.values[nn_pos], return_index=True, return_inverse=True
        )
        inverse = inverse.reshape(-1)
        counts = np.bincount(inverse, minlength=len(uniq))
        # Stable sort by group id keeps row positions ascending per group.
        grouped_rows = nn_pos[np.argsort(inverse, kind="stable")].astype(
            np.int64, copy=False
        )
        stops = np.cumsum(counts)
        starts = stops - counts
        first_pos = nn_pos[first_idx]
        for g in range(len(uniq)):
            entries.append(
                (
                    int(first_pos[g]),
                    (python_value(uniq[g], vector.dtype),),
                    grouped_rows[starts[g]:stops[g]],
                )
            )
    if nulls.any():
        null_rows = np.nonzero(nulls)[0].astype(np.int64, copy=False)
        entries.append((int(null_rows[0]), (None,), null_rows))
    entries.sort(key=lambda e: e[0])
    keys = [key for _, key, _ in entries]
    indexes = [rows for _, _, rows in entries]
    return keys, indexes


def join_single_int(
    left_vec: ColumnVector, right_vec: ColumnVector
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Vectorized equi-match of two int64-backed key columns.

    Returns ``(left_idx, right_idx, match_counts)`` where the pairs are
    ordered by left row with ascending right matches per left row, and
    ``match_counts[i]`` is left row *i*'s match count (0 for NULL keys) —
    or None when the key dtypes are not eligible.
    """
    if (
        left_vec.dtype is not right_vec.dtype
        or left_vec.dtype not in _INT_KEY_TYPES
    ):
        return None
    r_present = np.nonzero(~right_vec.nulls)[0]
    r_vals = right_vec.values[r_present]
    order = np.argsort(r_vals, kind="stable")
    sorted_vals = r_vals[order]
    sorted_ids = r_present[order].astype(np.int64, copy=False)
    l_vals = left_vec.values
    lo = np.searchsorted(sorted_vals, l_vals, side="left")
    hi = np.searchsorted(sorted_vals, l_vals, side="right")
    counts = (hi - lo).astype(np.int64)
    if left_vec.nulls.any():
        counts[left_vec.nulls] = 0
    total = int(counts.sum())
    left_idx = np.repeat(
        np.arange(len(l_vals), dtype=np.int64), counts
    )
    cum = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    right_idx = sorted_ids[np.repeat(lo.astype(np.int64), counts) + within]
    return left_idx, right_idx, counts
