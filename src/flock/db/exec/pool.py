"""The shared morsel worker pool.

One :class:`WorkerPool` per :class:`~flock.db.engine.Database` runs every
parallel pipeline fragment in the engine — ad-hoc queries, prepared plans
and the serving layer all share it, so total thread count is bounded by the
``flock.workers`` setting rather than by concurrent statement count.

Pool threads are tagged so the executor can refuse *nested* parallelism: a
morsel task that somehow reaches the parallel driver again (e.g. through a
scorer that issues a query) falls back to serial execution instead of
deadlocking the pool against itself.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, TypeVar

from flock.observability import metrics

T = TypeVar("T")

_IN_WORKER = threading.local()


def in_worker_thread() -> bool:
    """True when the calling thread is a morsel worker of *any* pool."""
    return getattr(_IN_WORKER, "flag", False)


def _mark_worker() -> None:
    _IN_WORKER.flag = True


class WorkerPool:
    """A fixed-size thread pool with ordered fan-out/fan-in semantics.

    ``run_ordered`` is the only submission primitive the executor needs:
    results come back in task order (the basis of deterministic merges) and
    the first failure — by task index, not by wall-clock — is re-raised, so
    parallel error surfacing matches what serial execution would raise.
    """

    def __init__(self, workers: int, name: str = "flock-exec"):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix=name,
            initializer=_mark_worker,
        )
        self._busy = 0
        self._busy_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def run_ordered(self, tasks: list[Callable[[], T]]) -> list[T]:
        """Run *tasks* on the pool; return their results in task order.

        If any task raises, the exception of the **lowest-index** failing
        task is re-raised after all tasks have settled (a later morsel must
        not mask the error serial execution would have hit first).
        """
        futures = [self._executor.submit(self._run_one, fn) for fn in tasks]
        results: list[T] = []
        first_error: tuple[int, BaseException] | None = None
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                results.append(None)  # type: ignore[arg-type]
                if first_error is None or index < first_error[0]:
                    first_error = (index, exc)
        if first_error is not None:
            raise first_error[1]
        return results

    def _run_one(self, fn: Callable[[], T]) -> T:
        with self._busy_lock:
            self._busy += 1
            busy = self._busy
        gauge = metrics().gauge("parallel.pool_busy")
        gauge.set(busy)
        try:
            return fn()
        finally:
            with self._busy_lock:
                self._busy -= 1
                busy = self._busy
            gauge.set(busy)

    # ------------------------------------------------------------------
    @property
    def busy(self) -> int:
        """Tasks currently executing (for stats surfaces)."""
        with self._busy_lock:
            return self._busy

    def shutdown(self) -> None:
        """Stop accepting work; running morsels finish first."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerPool(workers={self.workers}, busy={self.busy})"
