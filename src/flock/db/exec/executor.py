"""A vectorized, materializing plan executor.

Each node is evaluated bottom-up into a :class:`~flock.db.vector.Batch`.
Tables are materialized in memory, so full materialization per operator is
the appropriate regime (it is also what keeps the vectorized-vs-per-row
comparison in the Figure 4 benchmark honest: both regimes share this
executor and differ only in the Predict operator's strategy).
"""

from __future__ import annotations

import contextvars
import time
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from flock.db import functions as fn
from flock.db import index as index_module
from flock.db.encoding import DictionaryVector, EncodedVector
from flock.db.exec import grouping
from flock.db.exec import parallel as par
from flock.db.exec import spill as spill_module
from flock.db.exec.pool import WorkerPool, in_worker_thread
from flock.db.expr import BoundExpr, truthy_mask
from flock.db.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    IndexLookupNode,
    JoinNode,
    LimitNode,
    PlanNode,
    PredictNode,
    ProjectNode,
    ScanNode,
    SetOpNode,
    SortNode,
    WindowNode,
)
from flock.db.types import DataType
from flock.db.vector import Batch, ColumnVector
from flock.errors import ExecutionError
from flock.observability import get_tracer, metrics
from flock.testing import faultpoints


class ExecutionContext(Protocol):
    """Runtime services a plan needs: table snapshots and model scoring."""

    def table_batch(self, table_name: str) -> Batch: ...

    def score(self, node: PredictNode, inputs: Batch) -> list[ColumnVector]: ...


@dataclass
class NodeStats:
    """Per-plan-node runtime stats collected for EXPLAIN ANALYZE.

    ``wall_ns`` is inclusive (the node plus everything under it), which is
    what the nested EXPLAIN ANALYZE tree reads naturally as.
    """

    rows_out: int = 0
    wall_ns: int = 0
    calls: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def wall_ms(self) -> float:
        return self.wall_ns / 1e6


def render_analyzed_plan(plan: PlanNode, stats: dict[int, NodeStats]) -> str:
    """The plan tree with per-node row counts and wall time annotations.

    Mirrors :meth:`PlanNode.explain`; ``stats`` is keyed by ``id(node)``
    (as collected by ``Executor(collect_stats=True)``).
    """
    lines: list[str] = []

    def visit(node: PlanNode, indent: int) -> None:
        line = "  " * indent + node.describe()
        node_stats = stats.get(id(node))
        if node_stats is not None:
            parts = []
            child_stats = [stats.get(id(c)) for c in node.children()]
            if child_stats and all(cs is not None for cs in child_stats):
                rows_in = sum(cs.rows_out for cs in child_stats)
                parts.append(f"rows_in={rows_in}")
            parts.append(f"rows={node_stats.rows_out}")
            parts.append(f"time={node_stats.wall_ms:.3f}ms")
            parts.extend(f"{k}={v}" for k, v in node_stats.extras.items())
            line += "  [" + " ".join(parts) + "]"
        lines.append(line)
        for child in node.children():
            visit(child, indent + 1)

    visit(plan, 0)
    return "\n".join(lines)


class Executor:
    """Evaluates logical plans against an :class:`ExecutionContext`.

    With ``collect_stats=True`` every operator execution is recorded into
    :attr:`node_stats` (keyed by ``id(plan_node)``) — the data source for
    ``EXPLAIN ANALYZE``. Trace spans are always emitted (one per operator
    node) unless tracing is globally disabled.

    When a :class:`~flock.db.exec.pool.WorkerPool` and a
    :class:`~flock.db.exec.parallel.ParallelConfig` with ``workers > 1``
    are supplied, eligible Scan→Filter/Project/Predict pipelines (and the
    aggregates / ORDER BY+LIMIT heads above them) execute morsel-parallel
    with bit-identical results (see :mod:`flock.db.exec.parallel`). The
    snapshot is pinned in the driver thread: ``context.table_batch`` is
    called exactly once per scan and workers only see immutable slices of
    that batch, so MVCC isolation is unaffected by the fan-out.
    """

    def __init__(
        self,
        context: ExecutionContext,
        collect_stats: bool = False,
        pool: WorkerPool | None = None,
        parallel: par.ParallelConfig | None = None,
    ):
        self.context = context
        self.collect_stats = collect_stats
        self.node_stats: dict[int, NodeStats] = {}
        self.pool = pool
        self.parallel = parallel
        # A morsel worker must never fan out again: nested parallelism
        # would let pool tasks block on the very pool they run in.
        self._parallel_enabled = (
            pool is not None
            and parallel is not None
            and parallel.workers > 1
            and not in_worker_thread()
        )

    def run(self, plan: PlanNode) -> Batch:
        batch = self._execute(plan)
        if batch.names != plan.field_names():
            batch = Batch(plan.field_names(), batch.columns)
        return batch

    # ------------------------------------------------------------------
    def _execute(self, plan: PlanNode) -> Batch:
        op_name = type(plan).__name__
        with get_tracer().span(f"exec.{op_name}") as span:
            start_ns = time.perf_counter_ns()
            batch = self._execute_node(plan)
            elapsed_ns = time.perf_counter_ns() - start_ns
            span.set_attribute("rows_out", batch.num_rows)
            if isinstance(plan, PredictNode):
                span.set_attribute("strategy", plan.strategy or "batch")
            if self.collect_stats:
                node_stats = self.node_stats.setdefault(id(plan), NodeStats())
                node_stats.calls += 1
                node_stats.rows_out += batch.num_rows
                node_stats.wall_ns += elapsed_ns
                if isinstance(plan, PredictNode):
                    node_stats.extras["strategy"] = plan.strategy or "batch"
        metrics().counter("exec.operators").inc()
        return batch

    def _execute_node(self, plan: PlanNode) -> Batch:
        if self._parallel_enabled:
            result = self._try_parallel(plan)
            if result is not None:
                return result
        if isinstance(plan, ScanNode):
            return self._scan(plan)
        if isinstance(plan, FilterNode):
            return self._filter(plan)
        if isinstance(plan, ProjectNode):
            return self._project(plan)
        if isinstance(plan, PredictNode):
            return self._predict(plan)
        if isinstance(plan, JoinNode):
            return self._join(plan)
        if isinstance(plan, AggregateNode):
            return self._aggregate(plan)
        if isinstance(plan, SortNode):
            return self._sort(plan)
        if isinstance(plan, LimitNode):
            return self._limit(plan)
        if isinstance(plan, DistinctNode):
            return self._distinct(plan)
        if isinstance(plan, SetOpNode):
            return self._set_op(plan)
        if isinstance(plan, WindowNode):
            return self._window(plan)
        raise ExecutionError(f"cannot execute plan node {type(plan).__name__}")

    def _scan(self, node: ScanNode) -> Batch:
        return self._source_batch(node)

    def _source_batch(self, node: ScanNode) -> Batch:
        """Materialize a scan's input: index lookup, zone pruning or full.

        The shared access-path entry for the serial scan and the parallel
        morsel preparation. Both accelerations are advisory supersets — the
        filter above re-checks the full predicate — so any fallback (a
        context without index services, a snapshot the index cannot serve)
        silently degrades to the plain full scan.
        """
        base = self.context.table_batch(node.table_name)
        extras: dict = {}
        selected = [base.columns[i] for i in node.column_indexes]
        if isinstance(node, IndexLookupNode):
            lookup = getattr(self.context, "index_lookup", None)
            row_ids = (
                lookup(node.table_name, node.index_name, node.key_values)
                if lookup is not None
                else None
            )
            if row_ids is not None:
                selected = [c.take(row_ids) for c in selected]
                extras["index"] = node.index_name
            else:
                extras["index"] = f"{node.index_name}(fallback)"
                metrics().counter("index.fallbacks").inc()
        elif node.zone_predicates:
            version_of = getattr(self.context, "table_version", None)
            if version_of is not None:
                version = version_of(node.table_name)
                row_mask, pruned, _total = index_module.prune_row_mask(
                    version, node.zone_predicates
                )
                if row_mask is not None:
                    selected = [c.filter(row_mask) for c in selected]
                extras["morsels_pruned"] = pruned
        if self.collect_stats:
            encodings = sorted(
                {c.encoding for c in selected if isinstance(c, EncodedVector)}
            )
            if encodings:
                extras["enc"] = ",".join(encodings)
        if extras and self.collect_stats:
            stats = self.node_stats.setdefault(id(node), NodeStats())
            stats.extras.update(extras)
        return Batch([f.name for f in node.fields], selected)

    def _filter(self, node: FilterNode) -> Batch:
        return self._filter_batch(node, self._execute(node.child))

    def _filter_batch(self, node: FilterNode, child: Batch) -> Batch:
        predicate = node.predicate.evaluate(child)
        return child.filter(truthy_mask(predicate))

    def _project(self, node: ProjectNode) -> Batch:
        return self._project_batch(node, self._execute(node.child))

    def _project_batch(self, node: ProjectNode, child: Batch) -> Batch:
        columns = [e.evaluate(child) for e in node.exprs]
        return Batch([f.name for f in node.fields], columns)

    def _predict(self, node: PredictNode) -> Batch:
        return self._predict_batch(node, self._execute(node.child))

    def _predict_batch(self, node: PredictNode, child: Batch) -> Batch:
        inputs = Batch(
            [child.names[i] for i in node.input_indexes],
            [child.columns[i] for i in node.input_indexes],
        )
        outputs = self.context.score(node, inputs)
        return child.with_columns([f.name for f in node.output_fields], outputs)

    def _apply_stage(self, stage: PlanNode, batch: Batch) -> Batch:
        """Run one pipeline stage over an already-materialized input."""
        if isinstance(stage, FilterNode):
            return self._filter_batch(stage, batch)
        if isinstance(stage, ProjectNode):
            return self._project_batch(stage, batch)
        if isinstance(stage, PredictNode):
            return self._predict_batch(stage, batch)
        raise ExecutionError(
            f"{type(stage).__name__} is not a pipeline stage"
        )

    # -- morsel-driven parallel execution ---------------------------------
    def _try_parallel(self, plan: PlanNode) -> Batch | None:
        """Morsel-parallel execution of *plan*, or None to stay serial.

        Three parallel shapes, each with a deterministic merge (see
        :mod:`flock.db.exec.parallel`): aggregates over a pipeline segment,
        ORDER BY+LIMIT (top-k) over a segment, and plain pipeline tails
        (also reached for the inputs of joins, sorts, distincts and set
        operations, which then run serially over the merged batch).
        """
        if isinstance(plan, AggregateNode):
            segment = par.find_segment(plan.child)
            prepared = self._prepare_morsels(segment, allow_bare_scan=True)
            if prepared is None:
                return None
            scan_batch, bounds = prepared
            partials = self._run_morsels(
                plan, segment, scan_batch, bounds,
                sink=lambda batch: par.aggregate_partial(plan, batch),
            )
            return par.merge_aggregate_partials(plan, partials)

        if isinstance(plan, LimitNode):
            sort = plan.child
            if (
                isinstance(sort, SortNode)
                and sort.keys
                and plan.limit is not None
            ):
                segment = par.find_segment(sort.child)
                prepared = self._prepare_morsels(
                    segment, allow_bare_scan=True
                )
                if prepared is None:
                    return None
                scan_batch, bounds = prepared
                keep = plan.offset + plan.limit
                partials = self._run_morsels(
                    plan, segment, scan_batch, bounds,
                    sink=lambda batch: par.topk_partial(
                        sort.keys, keep, batch
                    ),
                )
                return par.merge_topk(
                    sort.keys, plan.limit, plan.offset, partials
                )
            segment = par.find_segment(plan.child)
            prepared = self._prepare_morsels(segment)
            if prepared is None:
                return None
            scan_batch, bounds = prepared
            # Each morsel needs at most offset+limit of its own rows: the
            # serial result is a prefix of the morsel-order concatenation.
            stop = None if plan.limit is None else plan.offset + plan.limit
            outputs = self._run_morsels(
                plan, segment, scan_batch, bounds,
                sink=(
                    None
                    if stop is None
                    else lambda batch: batch.slice(0, stop)
                ),
            )
            merged = par.concat_batches(outputs)
            end = merged.num_rows if plan.limit is None else stop
            return merged.slice(plan.offset, end)

        if isinstance(plan, (FilterNode, ProjectNode, PredictNode)):
            segment = par.find_segment(plan)
            prepared = self._prepare_morsels(segment)
            if prepared is None:
                return None
            scan_batch, bounds = prepared
            outputs = self._run_morsels(plan, segment, scan_batch, bounds)
            return par.concat_batches(outputs)
        return None

    def _prepare_morsels(
        self,
        segment: par.PipelineSegment | None,
        allow_bare_scan: bool = False,
    ) -> tuple[Batch, list[tuple[int, int]]] | None:
        """Pin the snapshot and split it, or None when serial is better.

        ``context.table_batch`` runs here, in the driver thread, exactly
        once per scan: workers share the returned immutable batch, so every
        morsel sees the same MVCC snapshot. A bare scan only parallelizes
        when a sink (aggregation, top-k) supplies the per-morsel work; a
        plain pipeline over it would be pure concatenation overhead.
        """
        from flock.db.optimizer.cost import choose_morsel_rows

        if segment is None or (not segment.stages and not allow_bare_scan):
            return None
        config = self.parallel
        assert config is not None and self.pool is not None
        start_ns = time.perf_counter_ns()
        scan_batch = self._source_batch(segment.scan)
        morsel_rows = choose_morsel_rows(
            scan_batch.num_rows,
            has_predict=segment.has_predict,
            workers=self.pool.workers,
            morsel_rows=config.morsel_rows,
            min_parallel_rows=config.min_parallel_rows,
        )
        if morsel_rows <= 0:
            return None
        bounds = par.morsel_bounds(scan_batch.num_rows, morsel_rows)
        if len(bounds) < 2:
            return None
        if self.collect_stats:
            scan_stats = self.node_stats.setdefault(
                id(segment.scan), NodeStats()
            )
            scan_stats.calls += 1
            scan_stats.rows_out += scan_batch.num_rows
            scan_stats.wall_ns += time.perf_counter_ns() - start_ns
        return scan_batch, bounds

    def _run_morsels(
        self,
        plan: PlanNode,
        segment: par.PipelineSegment,
        scan_batch: Batch,
        bounds: list[tuple[int, int]],
        sink=None,
    ) -> list:
        """Fan morsels out on the pool; results come back in morsel order.

        ``sink`` (partial-state builder or pruner) runs inside the worker,
        so group gathering and local top-k sorts are parallel too. Per-task
        ``contextvars`` copies keep each morsel's trace span nested under
        the current operator span.
        """
        assert self.pool is not None
        stages = segment.stages

        def run_one(index: int, start: int, stop: int):
            faultpoints.reach("parallel.pre_morsel")
            with get_tracer().span(
                "exec.morsel", {"index": index, "rows": stop - start}
            ):
                batch = scan_batch.slice(start, stop)
                stage_stats = []
                for stage in stages:
                    stage_start = time.perf_counter_ns()
                    batch = self._apply_stage(stage, batch)
                    stage_stats.append(
                        (
                            id(stage),
                            batch.num_rows,
                            time.perf_counter_ns() - stage_start,
                        )
                    )
                result = batch if sink is None else sink(batch)
            faultpoints.reach("parallel.post_morsel")
            return result, stage_stats

        tasks = []
        for index, (start, stop) in enumerate(bounds):
            task_context = contextvars.copy_context()
            tasks.append(
                lambda ctx=task_context, i=index, lo=start, hi=stop: ctx.run(
                    run_one, i, lo, hi
                )
            )
        outcomes = self.pool.run_ordered(tasks)

        registry = metrics()
        registry.counter("parallel.fragments").inc()
        registry.counter("parallel.morsels").inc(len(bounds))
        registry.histogram("parallel.morsels_per_fragment").observe(
            len(bounds)
        )
        if self.collect_stats:
            plan_stats = self.node_stats.setdefault(id(plan), NodeStats())
            plan_stats.extras["workers"] = self.pool.workers
            plan_stats.extras["morsels"] = len(bounds)
            for _, stage_stats in outcomes:
                for node_id, rows_out, wall_ns in stage_stats:
                    entry = self.node_stats.setdefault(node_id, NodeStats())
                    entry.calls += 1
                    entry.rows_out += rows_out
                    entry.wall_ns += wall_ns
        return [result for result, _ in outcomes]

    # -- joins -----------------------------------------------------------
    def _join(self, node: JoinNode) -> Batch:
        left = self._execute(node.left)
        right = self._execute(node.right)
        if node.join_type in ("SEMI", "ANTI"):
            matched = self._matched_left_rows(node, left, right)
            if node.join_type == "SEMI":
                return left.filter(matched)
            return left.filter(~matched)
        if node.join_type == "CROSS" and node.condition is None:
            return self._cross(left, right)
        equi, residual = _split_join_condition(node, left.num_columns)
        if equi:
            return self._hash_join(node, left, right, equi, residual)
        return self._nested_loop(node, left, right, node.condition)

    def _matched_left_rows(
        self, node: JoinNode, left: Batch, right: Batch
    ) -> np.ndarray:
        """Which left rows have ≥1 right match under the join condition.

        The SEMI/ANTI work-horse: the output is a boolean mask in left row
        order, so the join preserves left order deterministically.
        """
        matched = np.zeros(left.num_rows, dtype=bool)
        if node.condition is None:
            if right.num_rows > 0:
                matched[:] = True
            return matched
        equi, residual = _split_join_condition(node, left.num_columns)
        if equi:
            left_keys = [expr.evaluate(left) for expr, _ in equi]
            right_keys = [expr.evaluate(right) for _, expr in equi]
            fast = (
                grouping.join_single_int(left_keys[0], right_keys[0])
                if len(equi) == 1
                else None
            )
            if fast is not None:
                left_idx, right_idx, match_counts = fast
                if residual is None:
                    matched[match_counts > 0] = True
                    return matched
            else:
                table: dict[tuple, list[int]] = {}
                for i, key in enumerate(_key_rows(right_keys)):
                    if key is None:
                        continue
                    table.setdefault(key, []).append(i)
                left_out: list[int] = []
                right_out: list[int] = []
                for i, key in enumerate(_key_rows(left_keys)):
                    if key is None:
                        continue
                    hits = table.get(key)
                    if not hits:
                        continue
                    if residual is None:
                        matched[i] = True
                    else:
                        left_out.extend([i] * len(hits))
                        right_out.extend(hits)
                if residual is None:
                    return matched
                left_idx = np.array(left_out, dtype=np.int64)
                right_idx = np.array(right_out, dtype=np.int64)
            combined = _combine(left, right, left_idx, right_idx)
            mask = truthy_mask(residual.evaluate(combined))
            matched[left_idx[mask]] = True
            return matched
        combined = self._cross(left, right)
        mask = truthy_mask(node.condition.evaluate(combined))
        left_rep = np.repeat(np.arange(left.num_rows), right.num_rows)
        matched[left_rep[mask]] = True
        return matched

    def _cross(self, left: Batch, right: Batch) -> Batch:
        left_idx = np.repeat(np.arange(left.num_rows), right.num_rows)
        right_idx = np.tile(np.arange(right.num_rows), left.num_rows)
        combined = left.take(left_idx)
        right_taken = right.take(right_idx)
        return combined.with_columns(right_taken.names, right_taken.columns)

    def _hash_join(
        self,
        node: JoinNode,
        left: Batch,
        right: Batch,
        equi: list[tuple[BoundExpr, BoundExpr]],
        residual: BoundExpr | None,
    ) -> Batch:
        budget = getattr(self.context, "memory_budget", None)
        if (
            budget
            and residual is None
            and node.join_type in ("INNER", "LEFT")
            and left.num_rows > 1
            and right.num_rows > 0
            and spill_module.batch_nbytes(left)
            + spill_module.batch_nbytes(right)
            > budget
        ):
            spilled = self._hash_join_spilled(node, left, right, equi)
            if spilled is not None:
                return spilled

        left_keys = [expr.evaluate(left) for expr, _ in equi]
        right_keys = [expr.evaluate(right) for _, expr in equi]
        left_idx, right_idx, unmatched = _equi_match(
            left_keys, right_keys, node.join_type == "LEFT"
        )
        unmatched_left: list[int] = unmatched.tolist()
        combined = _combine(left, right, left_idx, right_idx)

        if residual is not None:
            mask = truthy_mask(residual.evaluate(combined))
            if node.join_type == "LEFT":
                # Rows failing the residual revert to unmatched.
                failed_left = set(left_idx[~mask].tolist())
                surviving_left = set(left_idx[mask].tolist())
                extra = sorted(failed_left - surviving_left - set(unmatched_left))
                unmatched_left.extend(extra)
            combined = combined.filter(mask)

        if node.join_type == "LEFT" and unmatched_left:
            pad = _left_padding(left, right, np.array(unmatched_left))
            combined = combined.concat(pad)
        return combined

    def _hash_join_spilled(
        self,
        node: JoinNode,
        left: Batch,
        right: Batch,
        equi: list[tuple[BoundExpr, BoundExpr]],
    ) -> Batch | None:
        """Partitioned hash join under the memory budget (no residual).

        Both inputs hash-partition by join key; matching keys land in the
        same partition, so partitions join independently against disk-
        resident (still encoded) inputs. Per-partition pairs carry global
        row positions, and the merge reorders the concatenated output by
        ``(left row, right row)`` — exactly the pair order the in-memory
        build-then-probe join emits. LEFT padding appends the unmatched
        left rows (NULL-key rows included) in ascending global order, as
        the serial path does. Only reached for pure equi INNER/LEFT joins:
        a residual predicate interleaves match- and unmatched-row decisions
        in ways partitioning cannot reproduce cheaply, so those stay in
        memory.
        """
        spill_dir = getattr(self.context, "spill_directory", None)
        if spill_dir is None:
            return None
        budget = self.context.memory_budget
        total = spill_module.batch_nbytes(left) + spill_module.batch_nbytes(
            right
        )
        partitions = spill_module.partition_count(total, budget)
        left_keys = [expr.evaluate(left) for expr, _ in equi]
        right_keys = [expr.evaluate(right) for _, expr in equi]
        left_part = np.fromiter(
            (
                -1 if key is None else hash(key) % partitions
                for key in _key_rows(left_keys)
            ),
            dtype=np.int64,
            count=left.num_rows,
        )
        right_part = np.fromiter(
            (
                -1 if key is None else hash(key) % partitions
                for key in _key_rows(right_keys)
            ),
            dtype=np.int64,
            count=right.num_rows,
        )
        del left_keys, right_keys
        unmatched: list[np.ndarray] = []
        if node.join_type == "LEFT" and (left_part < 0).any():
            unmatched.append(np.nonzero(left_part < 0)[0].astype(np.int64))
        pieces: list[tuple[Batch, np.ndarray, np.ndarray]] = []
        spilled_parts = 0
        with spill_module.SpillManager(spill_dir()) as manager:
            pending: list[tuple[str, str]] = []
            for p in range(partitions):
                lrows = np.nonzero(left_part == p)[0].astype(np.int64)
                if not len(lrows):
                    continue  # right-only partitions can never match
                rrows = np.nonzero(right_part == p)[0].astype(np.int64)
                if not len(rrows):
                    if node.join_type == "LEFT":
                        unmatched.append(lrows)
                    continue
                pending.append(
                    (
                        manager.spill(left.take(lrows), lrows),
                        manager.spill(right.take(rrows), rrows),
                    )
                )
            spilled_parts = len(pending)
            for left_path, right_path in pending:
                lsub, lrows = manager.load(left_path)
                rsub, rrows = manager.load(right_path)
                lkeys = [expr.evaluate(lsub) for expr, _ in equi]
                rkeys = [expr.evaluate(rsub) for _, expr in equi]
                lidx, ridx, local_unmatched = _equi_match(
                    lkeys, rkeys, node.join_type == "LEFT"
                )
                if len(local_unmatched):
                    unmatched.append(lrows[local_unmatched])
                pieces.append(
                    (_combine(lsub, rsub, lidx, ridx), lrows[lidx], rrows[ridx])
                )
        if pieces:
            combined = Batch.concat_all([piece for piece, _, _ in pieces])
            gleft = np.concatenate([gl for _, gl, _ in pieces])
            gright = np.concatenate([gr for _, _, gr in pieces])
            combined = combined.take(np.lexsort((gright, gleft)))
        else:
            empty = np.empty(0, dtype=np.int64)
            combined = _combine(left, right, empty, empty)
        if node.join_type == "LEFT" and unmatched:
            rows = np.sort(np.concatenate(unmatched))
            combined = combined.concat(_left_padding(left, right, rows))
        metrics().counter("spill.joins").inc()
        if self.collect_stats:
            stats = self.node_stats.setdefault(id(node), NodeStats())
            stats.extras["spill"] = f"join:{spilled_parts}"
        return combined

    def _nested_loop(
        self, node: JoinNode, left: Batch, right: Batch, condition: BoundExpr | None
    ) -> Batch:
        combined = self._cross(left, right)
        if condition is None:
            return combined
        mask = truthy_mask(condition.evaluate(combined))
        result = combined.filter(mask)
        if node.join_type == "LEFT":
            matched = set(
                np.repeat(np.arange(left.num_rows), right.num_rows)[mask].tolist()
            )
            unmatched = [i for i in range(left.num_rows) if i not in matched]
            if unmatched:
                pad = _left_padding(left, right, np.array(unmatched))
                result = result.concat(pad)
        return result

    # -- aggregation -------------------------------------------------------
    def _aggregate(self, node: AggregateNode) -> Batch:
        child = self._execute(node.child)
        group_vectors = [e.evaluate(child) for e in node.group_exprs]

        budget = getattr(self.context, "memory_budget", None)
        if (
            budget
            and group_vectors
            and child.num_rows > 1
            and spill_module.batch_nbytes(child) > budget
        ):
            spilled = self._aggregate_spilled(node, child, group_vectors)
            if spilled is not None:
                return spilled

        group_keys, group_indexes = _group_rows(group_vectors, child.num_rows)
        return self._aggregate_output(node, child, group_keys, group_indexes)

    def _aggregate_output(
        self,
        node: AggregateNode,
        child: Batch,
        group_keys: list[tuple],
        group_indexes: list[np.ndarray],
    ) -> Batch:
        columns: list[ColumnVector] = []
        for k, expr in enumerate(node.group_exprs):
            values = [key[k] for key in group_keys]
            columns.append(ColumnVector.from_values(expr.dtype, values))

        for spec_index, spec in enumerate(node.aggregates):
            results = _aggregate_values(node, child, spec_index, group_indexes)
            columns.append(ColumnVector.from_values(spec.dtype, results))

        return Batch([f.name for f in node.fields], columns)

    def _aggregate_spilled(
        self,
        node: AggregateNode,
        child: Batch,
        group_vectors: list[ColumnVector],
    ) -> Batch | None:
        """Partition-and-spill hash aggregation under the memory budget.

        Rows hash-partition by group key, each partition is written to disk
        (columns still encoded) and aggregated independently; because a
        group lives wholly in one partition and keeps its rows in ascending
        global order, every per-group reduction sees exactly the array the
        in-memory path would, and sorting the merged groups by global
        first-occurrence position restores the serial output order.
        """
        spill_dir = getattr(self.context, "spill_directory", None)
        if spill_dir is None:
            return None
        budget = self.context.memory_budget
        total = spill_module.batch_nbytes(child)
        partitions = spill_module.partition_count(total, budget)
        pylists = [v.to_pylist() for v in group_vectors]
        part_ids = spill_module.key_partition_ids(
            list(zip(*pylists)), partitions
        )
        del pylists
        with spill_module.SpillManager(spill_dir()) as manager:
            files = [
                manager.spill(child.take(rows), rows)
                for rows in spill_module.partition_rows(part_ids, partitions)
            ]
            child = None  # the spilled partitions are now the only copy
            group_vectors = None
            entries: list[tuple[int, tuple, list]] = []
            for path in files:
                sub, rows = manager.load(path)
                sub_groups = [e.evaluate(sub) for e in node.group_exprs]
                keys, indexes = _group_rows(sub_groups, sub.num_rows)
                per_spec = [
                    _aggregate_values(node, sub, s, indexes)
                    for s in range(len(node.aggregates))
                ]
                for g, (key, local_rows) in enumerate(zip(keys, indexes)):
                    entries.append(
                        (
                            int(rows[local_rows[0]]),
                            key,
                            [values[g] for values in per_spec],
                        )
                    )
        entries.sort(key=lambda e: e[0])
        metrics().counter("spill.aggregates").inc()
        if self.collect_stats:
            stats = self.node_stats.setdefault(id(node), NodeStats())
            stats.extras["spill"] = f"agg:{len(files)}"

        columns: list[ColumnVector] = []
        for k, expr in enumerate(node.group_exprs):
            columns.append(
                ColumnVector.from_values(
                    expr.dtype, [key[k] for _, key, _ in entries]
                )
            )
        for spec_index, spec in enumerate(node.aggregates):
            columns.append(
                ColumnVector.from_values(
                    spec.dtype,
                    [values[spec_index] for _, _, values in entries],
                )
            )
        return Batch([f.name for f in node.fields], columns)

    # -- sort / limit / distinct -------------------------------------------
    def _sort(self, node: SortNode) -> Batch:
        child = self._execute(node.child)
        if child.num_rows <= 1 or not node.keys:
            return child
        code_arrays = []
        for expr, ascending in node.keys:
            vector = expr.evaluate(child)
            code_arrays.append(_sort_codes(vector, ascending))
        # np.lexsort treats the LAST array as the primary key.
        order = np.lexsort(tuple(reversed(code_arrays)))
        return child.take(order)

    def _limit(self, node: LimitNode) -> Batch:
        sort = node.child
        if isinstance(sort, SortNode) and sort.keys and node.limit is not None:
            return self._topk(node, sort)
        child = self._execute(node.child)
        start = node.offset
        stop = child.num_rows if node.limit is None else start + node.limit
        return child.slice(start, stop)

    def _topk(self, node: LimitNode, sort: SortNode) -> Batch:
        """Bounded-memory ORDER BY + LIMIT: select-then-sort the top k.

        ``np.partition`` finds the k-th smallest primary sort code without
        ordering anything; only the candidate rows at or below it (a
        superset of the serial result, since the primary key dominates the
        lexicographic order) get the full stable sort. Candidates keep
        ascending input positions, so their stable sort reproduces serial
        tie order exactly and the first k rows equal the full-sort prefix.
        """
        child = self._execute(sort.child)
        n = child.num_rows
        k = node.offset + node.limit
        if n <= 1 or k >= n:
            code_arrays = [
                _sort_codes(expr.evaluate(child), ascending)
                for expr, ascending in sort.keys
            ] if n > 1 else []
            ordered = (
                child.take(np.lexsort(tuple(reversed(code_arrays))))
                if code_arrays
                else child
            )
            return ordered.slice(node.offset, k)
        code_arrays = [
            _sort_codes(expr.evaluate(child), ascending)
            for expr, ascending in sort.keys
        ]
        mode = "sort"
        if k == 0:
            rows = np.empty(0, dtype=np.int64)
        else:
            primary = code_arrays[0]
            kth = np.partition(primary, k - 1)[k - 1]
            candidates = np.nonzero(primary <= kth)[0]
            if len(candidates) < n:
                mode = "heap"
                order = np.lexsort(
                    tuple(reversed([c[candidates] for c in code_arrays]))
                )
                rows = candidates[order[:k]]
            else:
                order = np.lexsort(tuple(reversed(code_arrays)))
                rows = order[:k]
        if self.collect_stats:
            stats = self.node_stats.setdefault(id(node), NodeStats())
            stats.extras["topk"] = mode
            if mode == "heap":
                stats.extras["topk_candidates"] = len(candidates)
        return child.take(rows).slice(node.offset, len(rows))

    def _set_op(self, node: SetOpNode) -> Batch:
        left = self._execute(node.left)
        right = Batch(left.names, self._execute(node.right).columns)

        if node.op == "UNION":
            combined = left.concat(right)
            if node.all:
                return combined
            return self._distinct_rows(combined)

        from collections import Counter

        left_rows = list(left.rows())
        right_rows = list(right.rows())
        if node.op == "EXCEPT":
            if node.all:
                budget = Counter(right_rows)
                keep = []
                for i, row in enumerate(left_rows):
                    if budget[row] > 0:
                        budget[row] -= 1
                    else:
                        keep.append(i)
            else:
                blocked = set(right_rows)
                seen: set[tuple] = set()
                keep = []
                for i, row in enumerate(left_rows):
                    if row not in blocked and row not in seen:
                        seen.add(row)
                        keep.append(i)
            return left.take(np.array(keep, dtype=np.int64))
        if node.op == "INTERSECT":
            if node.all:
                budget = Counter(right_rows)
                keep = []
                for i, row in enumerate(left_rows):
                    if budget[row] > 0:
                        budget[row] -= 1
                        keep.append(i)
            else:
                allowed = set(right_rows)
                seen = set()
                keep = []
                for i, row in enumerate(left_rows):
                    if row in allowed and row not in seen:
                        seen.add(row)
                        keep.append(i)
            return left.take(np.array(keep, dtype=np.int64))
        raise ExecutionError(f"unknown set operation {node.op!r}")

    def _distinct_rows(self, batch: Batch) -> Batch:
        seen: set[tuple] = set()
        keep: list[int] = []
        pylists = [c.to_pylist() for c in batch.columns]
        for i, key in enumerate(zip(*pylists)):
            if key not in seen:
                seen.add(key)
                keep.append(i)
        return batch.take(np.array(keep, dtype=np.int64))

    # -- window functions --------------------------------------------------
    def _window(self, node: WindowNode) -> Batch:
        """Evaluate one window function, appending a column in input order.

        Partitions hash on key tuples; each partition is ordered by the
        window ORDER BY via the shared :func:`_sort_codes` encoding (stable,
        so ties keep input row order — deterministic under every execution
        tier). SUM uses the SQL default RANGE frame: peers by the ORDER BY
        key share the cumulative value at the end of their peer group.
        """
        child = self._execute(node.child)
        n = child.num_rows
        if node.partition_exprs:
            pylists = [
                e.evaluate(child).to_pylist() for e in node.partition_exprs
            ]
            groups: dict[tuple, list[int]] = {}
            for i, key in enumerate(zip(*pylists)):
                groups.setdefault(key, []).append(i)
            partitions = [
                np.array(ix, dtype=np.int64) for ix in groups.values()
            ]
        else:
            partitions = [np.arange(n, dtype=np.int64)]
        codes = (
            [
                _sort_codes(expr.evaluate(child), asc)
                for expr, asc in node.order_keys
            ]
            if node.order_keys
            else None
        )
        arg_list = (
            node.arg.evaluate(child).to_pylist()
            if node.arg is not None
            else None
        )

        values: list = [None] * n
        for part in partitions:
            if codes is not None:
                order = part[
                    np.lexsort(tuple(reversed([c[part] for c in codes])))
                ]
                key_rows = [tuple(c[i] for c in codes) for i in order]
            else:
                order = part
                key_rows = None
            if node.func_name == "ROW_NUMBER":
                for position, i in enumerate(order):
                    values[i] = position + 1
            elif node.func_name == "RANK":
                if key_rows is None:
                    for i in order:
                        values[i] = 1
                else:
                    rank = 1
                    for position, i in enumerate(order):
                        if (
                            position > 0
                            and key_rows[position] != key_rows[position - 1]
                        ):
                            rank = position + 1
                        values[i] = rank
            else:  # SUM
                assert arg_list is not None
                if key_rows is None:
                    total = None
                    for i in order:
                        v = arg_list[i]
                        if v is not None:
                            total = v if total is None else total + v
                    for i in order:
                        values[i] = total
                else:
                    running = None
                    position = 0
                    size = len(order)
                    while position < size:
                        end = position
                        while (
                            end + 1 < size
                            and key_rows[end + 1] == key_rows[position]
                        ):
                            end += 1
                        for j in range(position, end + 1):
                            v = arg_list[order[j]]
                            if v is not None:
                                running = (
                                    v if running is None else running + v
                                )
                        for j in range(position, end + 1):
                            values[order[j]] = running
                        position = end + 1
        vector = ColumnVector.from_values(node.dtype, values)
        return child.with_columns([node.output_name], [vector])

    def _distinct(self, node: DistinctNode) -> Batch:
        child = self._execute(node.child)
        seen: set[tuple] = set()
        keep: list[int] = []
        pylists = [c.to_pylist() for c in child.columns]
        for i, key in enumerate(zip(*pylists)):
            if key not in seen:
                seen.add(key)
                keep.append(i)
        return child.take(np.array(keep, dtype=np.int64))


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _conjuncts(expr: BoundExpr) -> list[BoundExpr]:
    from flock.db.expr import BoundBinary

    if isinstance(expr, BoundBinary) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _split_join_condition(
    node: JoinNode, left_width: int
) -> tuple[list[tuple[BoundExpr, BoundExpr]], BoundExpr | None]:
    """Split a join condition into equi-key pairs and a residual predicate.

    An equi pair is a conjunct ``e_left = e_right`` where one side reads only
    left columns and the other only right columns; the right-side expression
    is rewritten to right-local column positions. Everything else stays in
    the residual (evaluated over the combined row).
    """
    from flock.db.expr import BoundBinary

    if node.condition is None:
        return [], None
    equi: list[tuple[BoundExpr, BoundExpr]] = []
    residual: list[BoundExpr] = []
    right_width = len(node.right.fields)
    right_mapping = {left_width + i: i for i in range(right_width)}
    for conjunct in _conjuncts(node.condition):
        if isinstance(conjunct, BoundBinary) and conjunct.op == "=":
            left_refs = conjunct.left.referenced_columns()
            right_refs = conjunct.right.referenced_columns()
            if left_refs and right_refs:
                if max(left_refs) < left_width and min(right_refs) >= left_width:
                    equi.append(
                        (conjunct.left, conjunct.right.rewrite_columns(right_mapping))
                    )
                    continue
                if max(right_refs) < left_width and min(left_refs) >= left_width:
                    equi.append(
                        (conjunct.right, conjunct.left.rewrite_columns(right_mapping))
                    )
                    continue
        residual.append(conjunct)
    residual_expr: BoundExpr | None = None
    for conjunct in residual:
        if residual_expr is None:
            residual_expr = conjunct
        else:
            from flock.db.expr import BoundBinary as _BB

            residual_expr = _BB("AND", residual_expr, conjunct, DataType.BOOLEAN)
    return equi, residual_expr


def _group_rows(
    group_vectors: list[ColumnVector], num_rows: int
) -> tuple[list[tuple], list[np.ndarray]]:
    """Group keys (first-occurrence order) and ascending row indexes.

    The shared grouping core of the in-memory and spilled aggregate paths
    (and the parallel partial builder reproduces the same contract).
    """
    if group_vectors:
        fast = grouping.group_keys(group_vectors)
        if fast is not None:
            return fast
        groups: dict[tuple, list[int]] = {}
        order: list[tuple] = []
        pylists = [v.to_pylist() for v in group_vectors]
        for i, key in enumerate(zip(*pylists)):
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(i)
        return order, [np.array(groups[k], dtype=np.int64) for k in order]
    return [()], [np.arange(num_rows, dtype=np.int64)]


def _aggregate_values(
    node: AggregateNode,
    child: Batch,
    spec_index: int,
    group_indexes: list[np.ndarray],
) -> list:
    """One aggregate spec evaluated over every group of *child*."""
    spec = node.aggregates[spec_index]
    agg = fn.AGGREGATE_FUNCTIONS[spec.func_name]
    if spec.arg is None:  # COUNT(*)
        return [len(indexes) for indexes in group_indexes]
    arg = spec.arg.evaluate(child)
    return [
        agg.reduce(arg.take(indexes), spec.distinct)
        for indexes in group_indexes
    ]


def _equi_match(
    left_keys: list[ColumnVector],
    right_keys: list[ColumnVector],
    want_unmatched: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Equi-join pair indexes in build-then-probe order.

    Pairs are ordered by left row with ascending right matches per left
    row; ``unmatched`` (only collected when requested) holds the left rows
    with no match — NULL-key rows included — ascending. The shared match
    core of the in-memory and spilled hash-join paths.
    """
    fast = (
        grouping.join_single_int(left_keys[0], right_keys[0])
        if len(left_keys) == 1
        else None
    )
    if fast is not None:
        left_idx, right_idx, match_counts = fast
        unmatched = (
            np.nonzero(match_counts == 0)[0].astype(np.int64)
            if want_unmatched
            else np.empty(0, dtype=np.int64)
        )
        return left_idx, right_idx, unmatched
    table: dict[tuple, list[int]] = {}
    for i, key in enumerate(_key_rows(right_keys)):
        if key is None:
            continue  # NULL keys never match
        table.setdefault(key, []).append(i)
    left_out: list[int] = []
    right_out: list[int] = []
    unmatched_out: list[int] = []
    for i, key in enumerate(_key_rows(left_keys)):
        matches = table.get(key, []) if key is not None else []
        if matches:
            left_out.extend([i] * len(matches))
            right_out.extend(matches)
        elif want_unmatched:
            unmatched_out.append(i)
    return (
        np.array(left_out, dtype=np.int64),
        np.array(right_out, dtype=np.int64),
        np.array(unmatched_out, dtype=np.int64),
    )


def _key_rows(vectors: list[ColumnVector]) -> list[tuple | None]:
    """Row keys for hash joins; None where any component is NULL."""
    n = len(vectors[0]) if vectors else 0
    pylists = [v.to_pylist() for v in vectors]
    out: list[tuple | None] = []
    for i in range(n):
        key = tuple(p[i] for p in pylists)
        out.append(None if any(k is None for k in key) else key)
    return out


def _combine(
    left: Batch, right: Batch, left_idx: np.ndarray, right_idx: np.ndarray
) -> Batch:
    taken_left = left.take(left_idx)
    taken_right = right.take(right_idx)
    return Batch(
        taken_left.names + taken_right.names,
        taken_left.columns + taken_right.columns,
    )


def _left_padding(left: Batch, right: Batch, left_rows: np.ndarray) -> Batch:
    """Unmatched LEFT JOIN rows: left values, all-NULL right columns."""
    taken_left = left.take(left_rows)
    null_columns = [
        ColumnVector.constant(c.dtype, None, len(left_rows))
        for c in right.columns
    ]
    return Batch(taken_left.names + right.names, taken_left.columns + null_columns)


def _sort_codes(vector: ColumnVector, ascending: bool) -> np.ndarray:
    """Integer codes whose ascending order realizes the requested key order.

    NULLs sort last for ASC and first for DESC (the PostgreSQL default).

    Dictionary-encoded TEXT sorts on its int32 codes without decoding: the
    dictionary is sorted, so code order is value order, and lexsort only
    needs order-isomorphic codes per column — the dense re-ranking of the
    generic path is unnecessary for an identical permutation.
    """
    if isinstance(vector, DictionaryVector):
        codes = vector.codes.astype(np.int64)
        null_mask = codes < 0
        distinct = len(vector.dictionary)
        if not ascending:
            codes = distinct - 1 - codes
            codes[null_mask] = -1  # NULL first on DESC
        else:
            codes[null_mask] = distinct  # NULL last on ASC
        return codes
    present_mask = ~vector.nulls
    values = vector.values
    if vector.dtype.numpy_dtype == np.dtype(object):
        present = sorted(set(values[present_mask].tolist()))
        rank = {v: i for i, v in enumerate(present)}
        codes = np.zeros(len(vector), dtype=np.int64)
        for i in range(len(vector)):
            if present_mask[i]:
                codes[i] = rank[values[i]]
        distinct = len(present)
    else:
        present_values = values[present_mask]
        unique = np.unique(present_values)
        codes = np.zeros(len(vector), dtype=np.int64)
        codes[present_mask] = np.searchsorted(unique, present_values)
        distinct = len(unique)
    if not ascending:
        codes = distinct - 1 - codes
        codes[vector.nulls] = -1  # NULL first on DESC
    else:
        codes[vector.nulls] = distinct  # NULL last on ASC
    return codes
