"""Physical execution of logical plans."""

from flock.db.exec.executor import ExecutionContext, Executor
from flock.db.exec.parallel import ParallelConfig
from flock.db.exec.pool import WorkerPool, in_worker_thread

__all__ = [
    "ExecutionContext",
    "Executor",
    "ParallelConfig",
    "WorkerPool",
    "in_worker_thread",
]
