"""Physical execution of logical plans."""

from flock.db.exec.executor import ExecutionContext, Executor

__all__ = ["ExecutionContext", "Executor"]
