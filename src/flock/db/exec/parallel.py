"""Morsel-driven parallelism: segments, partial states, deterministic merges.

The executor splits the scan feeding a Filter/Project/Predict pipeline into
fixed-size row ranges ("morsels"), runs the pipeline over each morsel on the
shared :class:`~flock.db.exec.pool.WorkerPool`, and merges per-morsel partial
states here. numpy kernels release the GIL, so morsels genuinely overlap.

Every merge is **bit-identical to serial execution**, by construction rather
than by tolerance:

- *Pipelines* (filter/project/predict): expression evaluation and model
  scoring are elementwise over rows, so evaluating a slice equals slicing
  the full evaluation; concatenating morsel outputs in morsel order
  reproduces the serial batch exactly.
- *Aggregates*: a partial state gathers each group's argument **values**
  (not partial sums). Merging concatenates the per-morsel chunks in morsel
  order — rebuilding the exact array serial execution would reduce — and
  then applies the very same reduction. Summation order, DISTINCT dedup and
  NULL handling are therefore identical down to floating-point bits. Group
  output order is first-appearance order, preserved by merging morsels in
  order.
- *Top-k* (ORDER BY + LIMIT): each morsel sorts locally and keeps its first
  ``limit + offset`` rows (any row pruned locally is beaten by enough rows
  globally, so pruning is safe); the merge re-sorts the survivors with each
  row's global pre-sort position as the final tie-break key, which is
  exactly the order a serial stable sort would produce.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from flock.db import functions as fn
from flock.db.exec import grouping
from flock.db.expr import BoundExpr
from flock.db.plan import (
    AggregateNode,
    FilterNode,
    PlanNode,
    PredictNode,
    ProjectNode,
    ScanNode,
)
from flock.db.types import DataType
from flock.db.vector import Batch, ColumnVector


def _int_env(name: str) -> int | None:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else None


@dataclass
class ParallelConfig:
    """Engine-level parallel execution settings.

    ``workers`` is the pool size (1 = serial); ``morsel_rows`` the target
    morsel size; ``min_parallel_rows`` overrides the cost model's
    don't-bother floor (useful for tests that force tiny parallel runs).
    """

    workers: int = 1
    morsel_rows: int | None = None
    min_parallel_rows: int | None = None

    @classmethod
    def from_env(
        cls,
        workers: int | None = None,
        morsel_rows: int | None = None,
        min_parallel_rows: int | None = None,
    ) -> "ParallelConfig":
        """Explicit arguments win; FLOCK_* environment fills the gaps."""
        if workers is None:
            workers = _int_env("FLOCK_WORKERS") or 1
        if morsel_rows is None:
            morsel_rows = _int_env("FLOCK_MORSEL_ROWS")
        if min_parallel_rows is None:
            min_parallel_rows = _int_env("FLOCK_PARALLEL_MIN_ROWS")
        return cls(
            workers=max(1, int(workers)),
            morsel_rows=morsel_rows,
            min_parallel_rows=min_parallel_rows,
        )


# ----------------------------------------------------------------------
# Pipeline segments
# ----------------------------------------------------------------------
@dataclass
class PipelineSegment:
    """A Scan feeding a (possibly empty) chain of per-row stages."""

    scan: ScanNode
    stages: list[PlanNode]  # bottom-up: stages[0] consumes the scan
    has_predict: bool


def find_segment(node: PlanNode) -> PipelineSegment | None:
    """The parallelizable Scan→Filter/Project/Predict chain rooted at *node*.

    Returns None when the subtree contains anything that is not elementwise
    over rows (joins, nested aggregates, set operations, subplan scans).
    """
    stages: list[PlanNode] = []
    current = node
    while isinstance(current, (FilterNode, ProjectNode, PredictNode)):
        stages.append(current)
        current = current.child
    if not isinstance(current, ScanNode):
        return None
    stages.reverse()
    has_predict = any(isinstance(s, PredictNode) for s in stages)
    return PipelineSegment(current, stages, has_predict)


def morsel_bounds(n_rows: int, morsel_rows: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges covering ``n_rows``."""
    return [
        (start, min(start + morsel_rows, n_rows))
        for start in range(0, n_rows, morsel_rows)
    ]


def concat_columns(dtype: DataType, chunks: list[ColumnVector]) -> ColumnVector:
    """Concatenate chunks in order (bitwise equal to one big gather)."""
    if not chunks:
        return ColumnVector.empty(dtype)
    if len(chunks) == 1:
        return chunks[0]
    from flock.db.encoding import concat_encoded

    # Morsel chunks of one encoded column share a dictionary / frame and
    # merge on the encoded payload without decoding.
    encoded = concat_encoded(chunks)
    if encoded is not None:
        return encoded
    return ColumnVector(
        dtype,
        np.concatenate([c.values for c in chunks]),
        np.concatenate([c.nulls for c in chunks]),
    )


def concat_batches(batches: list[Batch]) -> Batch:
    """Concatenate morsel outputs in morsel order — the serial batch."""
    return Batch.concat_all(batches)


# ----------------------------------------------------------------------
# Aggregate partial states
# ----------------------------------------------------------------------
@dataclass
class GroupPartial:
    """One group's slice of one morsel: its key, row count and the gathered
    argument values of every aggregate (None for COUNT(*) slots)."""

    key: tuple
    count: int = 0
    chunks: list[ColumnVector | None] = field(default_factory=list)


def aggregate_partial(node: AggregateNode, batch: Batch) -> list[GroupPartial]:
    """Per-morsel aggregation state, in this morsel's first-appearance order."""
    arg_vectors: list[ColumnVector | None] = [
        None if spec.arg is None else spec.arg.evaluate(batch)
        for spec in node.aggregates
    ]
    if not node.group_exprs:
        return [
            GroupPartial(key=(), count=batch.num_rows, chunks=arg_vectors)
        ]
    group_vectors = [e.evaluate(batch) for e in node.group_exprs]
    fast = grouping.group_keys(group_vectors)
    if fast is not None:
        keys, index_arrays = fast
    else:
        pylists = [v.to_pylist() for v in group_vectors]
        groups: dict[tuple, list[int]] = {}
        order: list[tuple] = []
        for i, key in enumerate(zip(*pylists)):
            rows = groups.get(key)
            if rows is None:
                groups[key] = [i]
                order.append(key)
            else:
                rows.append(i)
        keys = order
        index_arrays = [
            np.array(groups[key], dtype=np.int64) for key in order
        ]
    partials: list[GroupPartial] = []
    for key, indexes in zip(keys, index_arrays):
        partials.append(
            GroupPartial(
                key=key,
                count=len(indexes),
                chunks=[
                    None if v is None else v.take(indexes)
                    for v in arg_vectors
                ],
            )
        )
    return partials


@dataclass
class _MergedGroup:
    key: tuple
    count: int
    chunk_lists: list[list[ColumnVector]]


def merge_aggregate_partials(
    node: AggregateNode, partials: list[list[GroupPartial]]
) -> Batch:
    """Merge morsel-order partials into the final aggregate batch.

    Group order is global first appearance (serial order, because morsels
    are merged in morsel order); each aggregate's argument chunks are
    concatenated in morsel order and reduced by the *same* reduction serial
    execution uses, so results match bit for bit.
    """
    n_specs = len(node.aggregates)
    merged: dict[tuple, _MergedGroup] = {}
    order: list[_MergedGroup] = []
    for morsel_groups in partials:
        for partial in morsel_groups:
            state = merged.get(partial.key)
            if state is None:
                # Keep the first-seen key tuple: for keys equal under
                # Python `==` but distinct as values (0.0 vs -0.0), serial
                # execution reports the first occurrence.
                state = _MergedGroup(
                    partial.key, 0, [[] for _ in range(n_specs)]
                )
                merged[partial.key] = state
                order.append(state)
            state.count += partial.count
            for j, chunk in enumerate(partial.chunks):
                if chunk is not None:
                    state.chunk_lists[j].append(chunk)
    if not node.group_exprs and not order:
        # Zero morsels (empty input): serial still emits one global group.
        order = [_MergedGroup((), 0, [[] for _ in range(n_specs)])]

    columns: list[ColumnVector] = []
    for k, expr in enumerate(node.group_exprs):
        columns.append(
            ColumnVector.from_values(
                expr.dtype, [state.key[k] for state in order]
            )
        )
    for j, spec in enumerate(node.aggregates):
        agg = fn.AGGREGATE_FUNCTIONS[spec.func_name]
        results = []
        for state in order:
            if spec.arg is None:  # COUNT(*): exact integer addition
                results.append(state.count)
            else:
                values = concat_columns(spec.arg.dtype, state.chunk_lists[j])
                results.append(agg.reduce(values, spec.distinct))
        columns.append(ColumnVector.from_values(spec.dtype, results))
    return Batch([f.name for f in node.fields], columns)


# ----------------------------------------------------------------------
# Top-k partial states (ORDER BY ... LIMIT)
# ----------------------------------------------------------------------
@dataclass
class TopKPartial:
    """A morsel's sorted survivors plus bookkeeping for the global merge."""

    batch: Batch  # first `keep` rows of the locally sorted morsel
    positions: np.ndarray  # their pre-sort positions within the morsel
    total_rows: int  # morsel output rows before pruning


def topk_partial(
    keys: list[tuple[BoundExpr, bool]], keep: int, batch: Batch
) -> TopKPartial:
    """Locally sort one morsel's output and keep its first *keep* rows."""
    from flock.db.exec.executor import _sort_codes

    total = batch.num_rows
    if total == 0:
        return TopKPartial(batch, np.empty(0, dtype=np.int64), 0)
    code_arrays = [
        _sort_codes(expr.evaluate(batch), ascending)
        for expr, ascending in keys
    ]
    order = np.lexsort(tuple(reversed(code_arrays)))
    pruned = order[:keep].astype(np.int64)
    return TopKPartial(batch.take(pruned), pruned, total)


def merge_topk(
    keys: list[tuple[BoundExpr, bool]],
    limit: int,
    offset: int,
    partials: list[TopKPartial],
) -> Batch:
    """Merge morsel top-k survivors into the exact serial LIMIT window.

    Re-sorting the survivors with each row's *global* pre-sort position as
    the least-significant key reproduces serial stable-sort tie order: a
    serial sort keeps equal-key rows in input order, and input order is
    precisely ascending global position.
    """
    from flock.db.exec.executor import _sort_codes

    batches = []
    positions = []
    base = 0
    for partial in partials:
        batches.append(partial.batch)
        positions.append(partial.positions + base)
        base += partial.total_rows
    merged = concat_batches(batches)
    global_pos = np.concatenate(positions) if positions else np.empty(0)
    if merged.num_rows > 1:
        code_arrays = [
            _sort_codes(expr.evaluate(merged), ascending)
            for expr, ascending in keys
        ]
        order = np.lexsort(tuple(reversed(code_arrays + [global_pos])))
        merged = merged.take(order)
    return merged.slice(offset, offset + limit)
