"""The database engine facade.

:class:`Database` wires the catalog, parser, binder, optimizer, executor,
transaction manager, security manager, audit log and (optionally) a model
store + scorer into one object. :class:`Connection` is a per-user session
with explicit transaction control.

The engine keeps a query log (every statement, with user and timestamp) —
the input to the *lazy* SQL provenance capture mode (§4.2).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Protocol, Sequence

import numpy as np

from flock.db.binder import Binder, ModelSignature, Scope, ScopeEntry, fold_constants
from flock.db.catalog import Catalog
from flock.db.encoding import EncodingSettings
from flock.db.exec.executor import Executor, render_analyzed_plan
from flock.db.exec.parallel import ParallelConfig
from flock.db.exec.pool import WorkerPool
from flock.db.expr import BoundLiteral, truthy_mask
from flock.db.optimizer.rules import Optimizer
from flock.db.plan import PlanNode, PredictNode, ScanNode
from flock.db.result import QueryResult, QueryStats
from flock.db.schema import Column, TableSchema
from flock.db.security import SecurityManager, model_object
from flock.db.sql import ast_nodes as ast
from flock.db.sql.parser import Parser, parse_statement
from flock.db.storage import TableVersion
from flock.db.txn import ReadWriteLock, Transaction, TransactionManager
from flock.db.types import SQL_TYPE_ALIASES, DataType
from flock.db.vector import Batch, ColumnVector
from flock.errors import (
    BindError,
    CatalogError,
    FlockError,
    InferenceError,
    SecurityError,
)


class ModelStore(Protocol):
    """What the engine needs from a model registry."""

    def has_model(self, name: str) -> bool: ...

    def signature(self, name: str) -> ModelSignature: ...

    def scoring_artifact(self, name: str) -> Any: ...


class Scorer(Protocol):
    """Executes PredictNode operators (provided by flock.inference)."""

    def score(
        self, node: PredictNode, inputs: Batch, store: ModelStore
    ) -> list[ColumnVector]: ...


@dataclass(frozen=True)
class QueryLogEntry:
    """One statement in the engine's query log (lazy provenance input).

    ``duration_ms`` defaults to 0.0 so entries restored from manifests
    persisted before the field existed keep loading.
    """

    sql: str
    user: str
    timestamp: float
    statement_type: str
    success: bool
    duration_ms: float = 0.0


def _memory_budget_from_env() -> int | None:
    """FLOCK_MEMORY_BUDGET in bytes; unset/empty/0 means unlimited."""
    raw = os.environ.get("FLOCK_MEMORY_BUDGET", "").strip()
    if not raw:
        return None
    try:
        budget = int(raw)
    except ValueError:
        return None
    return budget if budget > 0 else None


class Database:
    """An in-memory SQL engine with governance built in."""

    def __init__(
        self,
        model_store: ModelStore | None = None,
        scorer: Scorer | None = None,
        optimizer: Optimizer | None = None,
        workers: int | None = None,
        morsel_rows: int | None = None,
        min_parallel_rows: int | None = None,
        encodings: bool | None = None,
        memory_budget: int | None = None,
    ):
        # Columnar encodings (flock.db.encoding): the constructor argument
        # wins, then FLOCK_ENCODINGS (default on). The settings object is
        # shared with every table through the catalog, so SET
        # flock.encodings takes effect on the next staged version anywhere.
        self.catalog = Catalog(settings=EncodingSettings(encodings))
        self.transactions = TransactionManager(self.catalog)
        self.security = SecurityManager()
        self.audit = AuditLogProxy()
        self.optimizer = optimizer or Optimizer()
        self.model_store = model_store
        self._scorer = scorer
        # Statement-level concurrency control: SELECT/PREDICT take the read
        # side (concurrent, each on its own snapshot), DML/DDL the write
        # side (execution + commit under one exclusive section, so readers
        # never see a half-published multi-table commit).
        self.statement_lock = ReadWriteLock()
        # Monotonic counter bumped by DDL and by model (re-)deployment;
        # prepared-plan caches compare it to decide whether a cached plan
        # is still valid.
        self._invalidation_epoch = 0
        self._epoch_lock = threading.Lock()
        self.query_log: list[QueryLogEntry] = []
        # Span trees of the most recent traced statements (newest last).
        self.recent_traces: deque = deque(maxlen=32)
        # The SQL×ML cross-optimizer, when one is wired in (see
        # flock.create_database); declared here so it is part of the API
        # rather than an ad-hoc attribute.
        self.cross_optimizer = None
        # The write-ahead log, when this database is durable (attached by
        # flock.db.wal.open_database / Database.open). None means purely
        # in-memory: the whole durability path costs one None check.
        self.wal = None
        # Morsel-driven parallel execution: settings come from constructor
        # arguments, then FLOCK_WORKERS/FLOCK_MORSEL_ROWS/
        # FLOCK_PARALLEL_MIN_ROWS, then the serial default (workers=1).
        # The pool itself is built lazily on first parallel-eligible query
        # and is shared by every statement path (including serving).
        self.parallel = ParallelConfig.from_env(
            workers, morsel_rows, min_parallel_rows
        )
        self._worker_pool: WorkerPool | None = None
        self._pool_lock = threading.Lock()
        # Index-based access paths (hash indexes + zone maps). On by
        # default; FLOCK_INDEXES=0 or `SET flock.indexes = 0` forces every
        # query down the full-scan path — the live differential oracle the
        # index-off CI job and the twin fuzzer rely on.
        self._indexes_enabled = (
            os.environ.get("FLOCK_INDEXES", "").strip() != "0"
        )
        # Memory budget for blocking operators (bytes; None = unlimited).
        # When a hash aggregate / join input exceeds it, the executor
        # partitions and spills encoded chunks under spill_directory();
        # ORDER BY + LIMIT independently bounds memory via the top-k heap.
        self.memory_budget = (
            memory_budget
            if memory_budget is not None
            else _memory_budget_from_env()
        )
        self._spill_dir: str | None = None

    # ------------------------------------------------------------------
    # Durability (see flock.db.wal)
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path,
        *,
        model_store: ModelStore | None = None,
        scorer: "Scorer | None" = None,
        optimizer: Optimizer | None = None,
        sync_mode: str = "commit",
        group_window_ms: float = 1.0,
        checkpoint_bytes: int | None = None,
        encodings: bool | None = None,
        memory_budget: int | None = None,
    ) -> "Database":
        """Open (or create) a durable database directory with crash recovery.

        Loads the newest checkpoint, replays the committed WAL suffix and
        attaches a live log; the recovery details are on
        ``database.wal.last_recovery``. ``checkpoint_bytes`` sets the
        auto-checkpoint threshold (None keeps the WAL default, 0 disables
        auto-checkpointing).
        """
        from flock.db import wal as wal_module

        kwargs = dict(
            model_store=model_store,
            scorer=scorer,
            optimizer=optimizer,
            sync_mode=sync_mode,
            group_window_ms=group_window_ms,
            encodings=encodings,
            memory_budget=memory_budget,
        )
        if checkpoint_bytes is not None:
            kwargs["checkpoint_bytes"] = checkpoint_bytes
        return wal_module.open_database(path, **kwargs)

    def checkpoint(self) -> None:
        """Snapshot to disk and truncate the WAL (durable databases only)."""
        if self.wal is None:
            raise FlockError(
                "checkpoint() requires a durable database (Database.open)"
            )
        self.wal.checkpoint()

    def maybe_auto_checkpoint(self) -> None:
        """Checkpoint if the WAL outgrew its threshold; no-op in memory."""
        if self.wal is not None:
            self.wal.maybe_checkpoint()

    def close(self) -> None:
        """Detach and close the WAL (flushes; does not checkpoint)."""
        if self.wal is not None:
            self.wal.close()
            self.wal = None
            self.transactions.wal = None
        with self._pool_lock:
            if self._worker_pool is not None:
                self._worker_pool.shutdown()
                self._worker_pool = None
        if self._spill_dir is not None:
            import shutil

            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None

    # ------------------------------------------------------------------
    # Columnar encodings + memory budget (see flock.db.encoding / spill)
    # ------------------------------------------------------------------
    def encodings_enabled(self) -> bool:
        return self.catalog.settings.enabled

    def spill_directory(self) -> str:
        """Where blocking operators spill: under the database directory
        for durable databases, a private temp directory otherwise."""
        if self.wal is not None:
            path = self.wal.directory / "spill"
            path.mkdir(exist_ok=True)
            return str(path)
        if self._spill_dir is None:
            import tempfile

            self._spill_dir = tempfile.mkdtemp(prefix="flock-spill-")
        return self._spill_dir

    # ------------------------------------------------------------------
    # Morsel-parallel execution (see flock.db.exec.parallel)
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Current worker-pool size (1 = serial execution)."""
        return self.parallel.workers

    def set_workers(self, workers: int) -> None:
        """Resize the worker pool (``SET flock.workers = N``).

        Callers reach this through the exclusive side of the statement
        lock, so no reader is mid-fan-out while the old pool is retired;
        its threads finish any queued morsels and exit.
        """
        workers = int(workers)
        if workers < 1:
            raise BindError("flock.workers must be >= 1")
        with self._pool_lock:
            self.parallel.workers = workers
            if (
                self._worker_pool is not None
                and self._worker_pool.workers != workers
            ):
                self._worker_pool.shutdown()
                self._worker_pool = None

    def _acquire_pool(self) -> WorkerPool | None:
        """The shared pool, created lazily; None while workers <= 1."""
        if self.parallel.workers <= 1:
            return None
        with self._pool_lock:
            pool = self._worker_pool
            if pool is None or pool.workers != self.parallel.workers:
                if pool is not None:
                    pool.shutdown()
                pool = WorkerPool(self.parallel.workers)
                self._worker_pool = pool
            return pool

    def _executor(
        self, txn: Transaction, collect_stats: bool = False
    ) -> Executor:
        """An executor wired to this engine's snapshot context and pool."""
        return Executor(
            _EngineExecutionContext(self, txn),
            collect_stats=collect_stats,
            pool=self._acquire_pool(),
            parallel=self.parallel,
        )

    def _log_ddl(self, op: dict) -> None:
        """Log a catalog/security mutation that just became visible."""
        if self.wal is not None:
            self.wal.log_ddl(op)
        hub = self.transactions.replication
        if hub is not None:
            # DDL executes under the exclusive statement lock, so this
            # publish is ordered against every commit-path publish.
            hub.publish({"t": "ddl", "op": op})

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def connect(self, user: str = "admin") -> "Connection":
        if user != "admin" and not self.security.has_principal(user):
            raise SecurityError(f"unknown user {user!r}")
        return Connection(self, user)

    def execute(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        user: str = "admin",
    ) -> QueryResult:
        """One-shot execution with autocommit (admin by default).

        ``params`` binds ``?`` placeholders positionally, so callers never
        interpolate values into SQL text.
        """
        return self.connect(user).execute(sql, params)

    def explain(
        self,
        sql: str,
        user: str = "admin",
        analyze: bool = False,
        params: Sequence[Any] | None = None,
    ) -> str:
        """The optimized logical plan of a SELECT, as text.

        With ``analyze=True`` (or an ``EXPLAIN ANALYZE`` statement) the plan
        is also executed and every node is annotated with actual row counts
        and wall time.  Routed through the single statement entry point, so
        it is privilege-checked, audited and traced like any other
        statement.
        """
        text = sql.strip().rstrip(";")
        statement = parse_statement(text)
        if isinstance(statement, ast.Explain):
            statement = statement.query
        elif analyze:
            text = f"EXPLAIN ANALYZE {text}"
        else:
            text = f"EXPLAIN {text}"
        if not isinstance(statement, (ast.Select, ast.SetOperation)):
            raise BindError("EXPLAIN supports SELECT statements only")
        result = self.connect(user).execute(text, params)
        return "\n".join(row[0] for row in result.rows())

    def explain_analyze(
        self,
        sql: str,
        user: str = "admin",
        params: Sequence[Any] | None = None,
    ) -> str:
        """``EXPLAIN ANALYZE``: the plan annotated with measured execution."""
        return self.explain(sql, user=user, analyze=True, params=params)

    @property
    def last_trace(self):
        """Span tree of the most recently traced statement (or None)."""
        if not self.recent_traces:
            return None
        return self.recent_traces[-1]

    # ------------------------------------------------------------------
    # Plan-cache invalidation
    # ------------------------------------------------------------------
    @property
    def invalidation_epoch(self) -> int:
        """Changes whenever DDL runs or a model is (re-)deployed.

        Prepared-plan caches (:mod:`flock.serving`) stamp entries with this
        value and rebuild them when it moves — schema changes and model
        swaps invalidate cached plans without any callback plumbing.
        """
        return self._invalidation_epoch

    def bump_invalidation_epoch(self) -> None:
        with self._epoch_lock:
            self._invalidation_epoch += 1

    # ------------------------------------------------------------------
    # Binder context
    # ------------------------------------------------------------------
    def resolve_table(self, name: str) -> TableSchema:
        return self.catalog.schema(name)

    def resolve_view(self, name: str):
        if self.catalog.has_view(name):
            return self.catalog.view(name)
        return None

    def resolve_model(self, name: str) -> ModelSignature:
        if self.model_store is None or not self.model_store.has_model(name):
            raise BindError(f"unknown model {name!r}")
        return self.model_store.signature(name)

    # OptimizerContext
    def table_row_count(self, table_name: str) -> int:
        try:
            return self.catalog.table(table_name).row_count
        except CatalogError:
            return 1000

    def model_artifact(self, model_name: str) -> Any:
        if self.model_store is None:
            raise InferenceError("no model store attached to this database")
        return self.model_store.scoring_artifact(model_name)

    def table_stats(self, table_name: str):
        return self.catalog.table(table_name).stats()

    def indexes_enabled(self) -> bool:
        """Whether the optimizer may choose index/zone-map access paths."""
        return self._indexes_enabled

    def index_for(self, table_name: str, column_position: int) -> str | None:
        """Name of a hash index over ``table_name[column_position]``, if any."""
        try:
            table = self.catalog.table(table_name)
        except CatalogError:
            return None
        idx = table.index_on_column(column_position)
        return None if idx is None else idx.defn.name

    # ------------------------------------------------------------------
    # Scoring hookup
    # ------------------------------------------------------------------
    @property
    def scorer(self) -> Scorer:
        if self._scorer is None:
            from flock.inference.predict import DefaultScorer

            self._scorer = DefaultScorer()
        return self._scorer

    @scorer.setter
    def scorer(self, value: Scorer) -> None:
        self._scorer = value

    # ------------------------------------------------------------------
    # Statement execution (called by Connection)
    # ------------------------------------------------------------------
    def _run_statement(
        self,
        statement: ast.Statement,
        sql: str,
        user: str,
        txn: Transaction,
        params: list[Any] | None = None,
    ) -> QueryResult:
        """The single entry point every statement execution goes through.

        Query-log entries, audit records, metrics and the statement trace
        span are all emitted exactly once per statement here, whether the
        caller is ``Database.execute``, ``Connection.execute`` or
        ``Database.explain``.
        """
        statement_type = type(statement).__name__.upper()
        return self._observed_statement(
            sql,
            user,
            statement_type,
            lambda: self._dispatch(statement, user, txn, params),
        )

    def _observed_statement(
        self,
        sql: str,
        user: str,
        statement_type: str,
        runner: Callable[[], QueryResult],
    ) -> QueryResult:
        """Run *runner* with the per-statement trace/metrics/log envelope."""
        from flock import observability as obs

        started = time.time()
        start_ns = time.perf_counter_ns()
        trace = None
        try:
            with obs.get_tracer().span(
                "db.statement",
                {"statement": statement_type, "user": user},
            ) as span:
                if obs.enabled():
                    trace = span
                result = runner()
                span.set_attribute("rows", result.row_count)
        except FlockError:
            duration_ms = (time.perf_counter_ns() - start_ns) / 1e6
            self._record_statement(
                sql, user, started, statement_type, False, duration_ms, trace
            )
            raise
        duration_ms = (time.perf_counter_ns() - start_ns) / 1e6
        result.stats = QueryStats(
            statement_type, duration_ms, result.row_count, trace
        )
        self._record_statement(
            sql, user, started, statement_type, True, duration_ms, trace
        )
        return result

    # ------------------------------------------------------------------
    # Serving fast paths (see flock.serving)
    # ------------------------------------------------------------------
    def run_select_ast(
        self,
        statement: ast.Statement,
        sql: str,
        user: str = "admin",
        params: list[Any] | None = None,
    ) -> QueryResult:
        """Execute an already-parsed read-only statement under a snapshot.

        The serving layer's warm path: on a plan-cache hit the SQL text is
        never re-parsed, and coalesced micro-batches execute their combined
        statement here. Takes the shared side of the statement lock, so any
        number of these run concurrently with each other.
        """
        if not is_read_only(statement):
            raise BindError(
                "run_select_ast supports read-only statements only"
            )
        with self.statement_lock.read_locked():
            txn = self.transactions.begin(user)
            try:
                return self._run_statement(statement, sql, user, txn, params)
            finally:
                self.transactions.rollback(txn)

    def execute_plan(
        self,
        plan: PlanNode,
        *,
        sql: str,
        user: str = "admin",
        reads: tuple[list[str], list[str]] = ([], []),
        privileges: Sequence[tuple[str, str]] = (),
    ) -> QueryResult:
        """Execute an already-bound-and-optimized read-only plan.

        The prepared-statement hot path: parse/bind/optimize are skipped
        entirely, but privileges are re-checked and reads re-audited on
        every execution so plan reuse can never widen what a user sees.
        The caller (the plan cache) is responsible for invalidation; the
        plan itself must not be mutated here — execution is read-only over
        the plan tree, which is what makes one cached plan safe to share
        across threads.
        """

        def runner() -> QueryResult:
            for action, object_name in privileges:
                self.security.check(user, action, object_name)
            txn = self.transactions.begin(user)
            try:
                executor = self._executor(txn)
                batch = executor.run(plan)
            finally:
                self.transactions.rollback(txn)
            self._audit_reads(reads, user)
            return QueryResult("SELECT", batch=batch)

        with self.statement_lock.read_locked():
            return self._observed_statement(sql, user, "SELECT", runner)

    def executemany(
        self,
        sql: str,
        seq_of_params: Iterable[Sequence[Any]],
        user: str = "admin",
    ) -> QueryResult:
        """Bind once, re-bind parameters per row — the bulk-load fast path.

        For a single-row parameterized ``INSERT ... VALUES (?, ...)`` the
        statement is parsed once, every parameter row is materialized
        against that one template, and all rows are staged and committed as
        a single table version (one commit, one audit record) instead of
        one per row. Any other statement falls back to per-row execution.
        """
        parser = Parser(sql)
        statement = parser.parse()
        rows_params = [list(p) for p in seq_of_params]
        if not rows_params:
            return QueryResult("INSERT", affected_rows=0)
        if (
            isinstance(statement, ast.Insert)
            and statement.select is None
            and len(statement.rows) == 1
        ):
            with self.statement_lock.write_locked():
                return self._observed_statement(
                    sql,
                    user,
                    "INSERT",
                    lambda: self._executemany_insert(
                        parser, statement, rows_params, user
                    ),
                )
        connection = self.connect(user)
        total = 0
        last: QueryResult | None = None
        for params in rows_params:
            last = connection.execute(sql, params)
            total += last.affected_rows
        assert last is not None
        return QueryResult(last.statement_type, affected_rows=total)

    def _executemany_insert(
        self,
        parser: Parser,
        statement: ast.Insert,
        rows_params: list[list[Any]],
        user: str,
    ) -> QueryResult:
        from flock.errors import TransactionError

        self.security.check(user, "INSERT", statement.table)
        table = self.catalog.table(statement.table)
        schema = table.schema
        if statement.columns:
            positions = [schema.index_of(c) for c in statement.columns]
        else:
            positions = list(range(len(schema)))
        template = statement.rows[0]
        if len(template) != len(positions):
            raise BindError(
                f"INSERT row has {len(template)} values, expected "
                f"{len(positions)}"
            )
        # Bind the row template once: each slot is either a '?' parameter
        # (re-bound per row) or a constant (folded once).
        binder = Binder(self, None)
        empty_scope = Scope([])
        slots: list[tuple[bool, Any]] = []
        for expr in template:
            if isinstance(expr, ast.Parameter):
                slots.append((True, expr.index))
            else:
                bound = fold_constants(binder._bind_expr(expr, empty_scope))
                if not isinstance(bound, BoundLiteral):
                    raise BindError(
                        "INSERT VALUES must be constant expressions"
                    )
                slots.append((False, bound.value))

        full_rows = []
        for params in rows_params:
            if len(params) != parser.parameter_count:
                raise BindError(
                    f"statement has {parser.parameter_count} '?' "
                    f"placeholder(s) but {len(params)} parameter value(s) "
                    f"were supplied"
                )
            full = [None] * len(schema)
            for (is_param, slot), position in zip(slots, positions):
                value = params[slot] if is_param else slot
                full[position] = _coerce_insert_value(
                    schema.columns[position], value
                )
            full_rows.append(full)

        # Audit before the commit (like the per-statement INSERT path): the
        # record then rides inside the commit's WAL entry, so the trail and
        # the data are durable together.
        self.audit.log.record(
            user,
            "INSERT",
            statement.table,
            detail=f"{len(full_rows)} rows (executemany)",
        )
        attempts = 0
        while True:
            txn = self.transactions.begin(user)
            base = txn.visible_version(statement.table)
            txn.stage(
                statement.table, table.build_insert(full_rows, base=base)
            )
            try:
                self.transactions.commit(txn)
                break
            except TransactionError:
                attempts += 1
                if attempts >= 10:
                    raise
        self.maybe_auto_checkpoint()
        return QueryResult("INSERT", affected_rows=len(full_rows))

    def _record_statement(
        self,
        sql: str,
        user: str,
        started: float,
        statement_type: str,
        success: bool,
        duration_ms: float,
        trace,
    ) -> None:
        from flock import observability as obs

        self.query_log.append(
            QueryLogEntry(
                sql, user, started, statement_type, success, duration_ms
            )
        )
        if trace is not None:
            self.recent_traces.append(trace)
        registry = obs.metrics()
        registry.counter("db.statements").inc()
        registry.counter(f"db.statements.{statement_type.lower()}").inc()
        if not success:
            registry.counter("db.statement_errors").inc()
        registry.histogram("db.statement_ms").observe(duration_ms)

    def _dispatch(
        self,
        statement: ast.Statement,
        user: str,
        txn: Transaction,
        params: list[Any] | None = None,
    ) -> QueryResult:
        if isinstance(statement, (ast.Select, ast.SetOperation)):
            return self._execute_select(statement, user, txn, params)
        if isinstance(statement, ast.Explain):
            return self._execute_explain(statement, user, txn, params)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, user, txn, params)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement, user, txn, params)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement, user, txn, params)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement, user)
        if isinstance(statement, ast.DropTable):
            return self._execute_drop_table(statement, user)
        if isinstance(statement, ast.CreateView):
            return self._execute_create_view(statement, user)
        if isinstance(statement, ast.DropView):
            return self._execute_drop_view(statement, user)
        if isinstance(statement, ast.CreateIndex):
            return self._execute_create_index(statement, user)
        if isinstance(statement, ast.DropIndex):
            return self._execute_drop_index(statement, user)
        if isinstance(statement, ast.CreateUser):
            return self._execute_security(statement, user)
        if isinstance(statement, ast.CreateRole):
            return self._execute_security(statement, user)
        if isinstance(statement, (ast.Grant, ast.Revoke)):
            return self._execute_security(statement, user)
        if isinstance(statement, ast.SetOption):
            return self._execute_set_option(statement, user)
        raise BindError(
            f"statement {type(statement).__name__} must be executed through "
            f"a Connection (BEGIN/COMMIT/ROLLBACK)"
        )

    # -- SELECT -----------------------------------------------------------
    def _execute_explain(
        self, statement: ast.Explain, user: str, txn: Transaction,
        params: list[Any] | None = None,
    ) -> QueryResult:
        binder = Binder(self, params)
        bound = binder.bind_query(statement.query)
        self._check_plan_privileges(bound, user)
        # Capture the read set now: optimizer rewrites (e.g. UDF inlining)
        # mutate the bound tree and may erase PredictNodes.
        reads = _collect_reads(bound)
        plan = self.optimizer.optimize(bound, self)
        if statement.analyze:
            executor = self._executor(txn, collect_stats=True)
            start_ns = time.perf_counter_ns()
            batch = executor.run(plan)
            total_ms = (time.perf_counter_ns() - start_ns) / 1e6
            lines = render_analyzed_plan(plan, executor.node_stats).splitlines()
            lines.append(
                f"Execution: {total_ms:.3f} ms, {batch.num_rows} row(s)"
            )
            # ANALYZE reads real data, so it leaves the same audit trail a
            # SELECT would.
            self._audit_reads(reads, user)
        else:
            lines = plan.explain().splitlines()
        batch = Batch(
            ["plan"],
            [ColumnVector.from_values(DataType.TEXT, lines)],
        )
        return QueryResult("EXPLAIN", batch=batch)

    def _execute_select(
        self, statement: ast.Statement, user: str, txn: Transaction,
        params: list[Any] | None = None,
    ) -> QueryResult:
        from flock import observability as obs

        tracer = obs.get_tracer()
        with tracer.span("db.bind"):
            binder = Binder(self, params)
            bound = binder.bind_query(statement)
        # Privileges (and the audit trail) are decided on the *bound* plan:
        # optimizations such as UDF inlining may erase PredictNodes, and an
        # optimizer rewrite must never widen what a user can do.
        self._check_plan_privileges(bound, user)
        reads = _collect_reads(bound)
        with tracer.span("db.optimize"):
            plan = self.optimizer.optimize(bound, self)
        executor = self._executor(txn)
        batch = executor.run(plan)
        self._audit_reads(reads, user)
        return QueryResult("SELECT", batch=batch)

    def _audit_reads(self, reads: tuple[list[str], list[str]], user: str) -> None:
        tables, models = reads
        for table_name in tables:
            self.audit.log.record(user, "SELECT", table_name)
        for model_name in models:
            self.audit.log.record(user, "PREDICT", model_object(model_name))

    def _check_plan_privileges(self, plan: PlanNode, user: str) -> None:
        for node in plan.walk():
            if isinstance(node, ScanNode):
                if node.via_view is not None:
                    # Definer semantics: the view is the grant boundary.
                    self.security.check(user, "SELECT", node.via_view)
                else:
                    self.security.check(user, "SELECT", node.table_name)
            elif isinstance(node, PredictNode):
                self.security.check(user, "PREDICT", model_object(node.model_name))

    # -- INSERT -----------------------------------------------------------
    def _execute_insert(
        self, statement: ast.Insert, user: str, txn: Transaction,
        params: list[Any] | None = None,
    ) -> QueryResult:
        self.security.check(user, "INSERT", statement.table)
        table = self.catalog.table(statement.table)
        schema = table.schema

        if statement.columns:
            positions = [schema.index_of(c) for c in statement.columns]
        else:
            positions = list(range(len(schema)))

        if statement.select is not None:
            select_result = self._execute_select(
                statement.select, user, txn, params
            )
            source = select_result.batch
            assert source is not None
            if source.num_columns != len(positions):
                raise BindError(
                    f"INSERT column count {len(positions)} does not match "
                    f"SELECT column count {source.num_columns}"
                )
            incoming_rows = list(source.rows())
        else:
            incoming_rows = []
            binder = Binder(self, params)
            empty_scope = Scope([])
            for row in statement.rows:
                if len(row) != len(positions):
                    raise BindError(
                        f"INSERT row has {len(row)} values, expected "
                        f"{len(positions)}"
                    )
                values = []
                for expr in row:
                    bound = fold_constants(binder._bind_expr(expr, empty_scope))
                    if not isinstance(bound, BoundLiteral):
                        raise BindError(
                            "INSERT VALUES must be constant expressions"
                        )
                    values.append(bound.value)
                incoming_rows.append(tuple(values))

        full_rows = []
        for row in incoming_rows:
            full = [None] * len(schema)
            for position, value in zip(positions, row):
                full[position] = _coerce_insert_value(
                    schema.columns[position], value
                )
            full_rows.append(full)

        base = txn.visible_version(statement.table)
        staged = table.build_insert(full_rows, base=base)
        txn.stage(statement.table, staged)
        self.audit.log.record(
            user, "INSERT", statement.table, detail=f"{len(full_rows)} rows"
        )
        return QueryResult("INSERT", affected_rows=len(full_rows))

    # -- UPDATE -----------------------------------------------------------
    def _execute_update(
        self, statement: ast.Update, user: str, txn: Transaction,
        params: list[Any] | None = None,
    ) -> QueryResult:
        self.security.check(user, "UPDATE", statement.table)
        table = self.catalog.table(statement.table)
        schema = table.schema
        version = txn.visible_version(statement.table)
        batch = version.batch()
        scope = Scope(
            [
                ScopeEntry(schema.name, c.name, c.dtype)
                for c in schema.columns
            ]
        )
        binder = Binder(self, params)
        if statement.where is not None:
            predicate = binder._bind_boolean(statement.where, scope)
            mask = truthy_mask(predicate.evaluate(batch))
        else:
            mask = np.ones(batch.num_rows, dtype=bool)

        assignments: dict[int, ColumnVector] = {}
        for column_name, expr in statement.assignments:
            position = schema.index_of(column_name)
            bound = binder._bind_expr(expr, scope)
            target_dtype = schema.columns[position].dtype
            if bound.dtype is not target_dtype:
                from flock.db.expr import BoundCast

                bound = BoundCast(bound, target_dtype)
            values = bound.evaluate(batch)
            assignments[position] = values.filter(mask)

        staged = table.build_update(mask, assignments, base=version)
        txn.stage(statement.table, staged)
        affected = int(mask.sum())
        self.audit.log.record(
            user, "UPDATE", statement.table, detail=f"{affected} rows"
        )
        return QueryResult("UPDATE", affected_rows=affected)

    # -- DELETE -----------------------------------------------------------
    def _execute_delete(
        self, statement: ast.Delete, user: str, txn: Transaction,
        params: list[Any] | None = None,
    ) -> QueryResult:
        self.security.check(user, "DELETE", statement.table)
        table = self.catalog.table(statement.table)
        schema = table.schema
        version = txn.visible_version(statement.table)
        batch = version.batch()
        if statement.where is not None:
            scope = Scope(
                [
                    ScopeEntry(schema.name, c.name, c.dtype)
                    for c in schema.columns
                ]
            )
            binder = Binder(self, params)
            predicate = binder._bind_boolean(statement.where, scope)
            drop = truthy_mask(predicate.evaluate(batch))
        else:
            drop = np.ones(batch.num_rows, dtype=bool)
        staged = table.build_delete(~drop, base=version)
        txn.stage(statement.table, staged)
        affected = int(drop.sum())
        self.audit.log.record(
            user, "DELETE", statement.table, detail=f"{affected} rows"
        )
        return QueryResult("DELETE", affected_rows=affected)

    # -- DDL ---------------------------------------------------------------
    def _execute_create_table(
        self, statement: ast.CreateTable, user: str
    ) -> QueryResult:
        columns = []
        for definition in statement.columns:
            try:
                dtype = SQL_TYPE_ALIASES[definition.type_name.upper()]
            except KeyError:
                raise BindError(
                    f"unknown column type {definition.type_name!r}"
                ) from None
            columns.append(
                Column(
                    definition.name,
                    dtype,
                    nullable=definition.nullable,
                    primary_key=definition.primary_key,
                    hidden=definition.hidden,
                )
            )
        schema = TableSchema.of(statement.name, columns)
        created = self.catalog.create_table(
            schema, if_not_exists=statement.if_not_exists
        )
        if created.schema is schema and user != "admin":
            # The creator owns the table.
            self.security.grant("ALL", statement.name, user)
        self.audit.log.record(user, "CREATE_TABLE", statement.name)
        if created.schema is schema:
            self._log_ddl(
                {
                    "kind": "create_table",
                    "name": statement.name,
                    "columns": [
                        {
                            "name": c.name,
                            "dtype": c.dtype.value,
                            "nullable": c.nullable,
                            "primary_key": c.primary_key,
                            "hidden": c.hidden,
                        }
                        for c in schema.columns
                    ],
                    "owner": user if user != "admin" else None,
                }
            )
        self.bump_invalidation_epoch()
        return QueryResult("CREATE_TABLE", detail=statement.name)

    def _execute_drop_table(
        self, statement: ast.DropTable, user: str
    ) -> QueryResult:
        if user != "admin":
            self.security.check(user, "ALL", statement.name)
        dropped = self.catalog.drop_table(
            statement.name, if_exists=statement.if_exists
        )
        self.audit.log.record(
            user, "DROP_TABLE", statement.name, success=dropped
        )
        if dropped:
            self._log_ddl({"kind": "drop_table", "name": statement.name})
            self.bump_invalidation_epoch()
        return QueryResult("DROP_TABLE", affected_rows=int(dropped))

    def _execute_create_view(
        self, statement: ast.CreateView, user: str
    ) -> QueryResult:
        # Validate the definition now (names, types, and the *creator's*
        # privileges on everything underneath — definer semantics).
        binder = Binder(self)
        bound = binder.bind_query(statement.query)
        self._check_plan_privileges(bound, user)
        self.catalog.create_view(statement.name, statement.query)
        if user != "admin":
            self.security.grant("ALL", statement.name, user)
        self.audit.log.record(user, "CREATE_VIEW", statement.name)
        self._log_ddl(
            {
                "kind": "create_view",
                "name": statement.name,
                "sql": str(statement.query),
                "owner": user if user != "admin" else None,
            }
        )
        self.bump_invalidation_epoch()
        return QueryResult("CREATE_VIEW", detail=statement.name)

    def _execute_drop_view(
        self, statement: ast.DropView, user: str
    ) -> QueryResult:
        if user != "admin":
            self.security.check(user, "ALL", statement.name)
        dropped = self.catalog.drop_view(
            statement.name, if_exists=statement.if_exists
        )
        self.audit.log.record(
            user, "DROP_VIEW", statement.name, success=dropped
        )
        if dropped:
            self._log_ddl({"kind": "drop_view", "name": statement.name})
            self.bump_invalidation_epoch()
        return QueryResult("DROP_VIEW", affected_rows=int(dropped))

    def _execute_create_index(
        self, statement: ast.CreateIndex, user: str
    ) -> QueryResult:
        # Creating an index changes access paths for everyone reading the
        # table, so it is gated on table ownership like DROP TABLE.
        if user != "admin":
            self.security.check(user, "ALL", statement.table)
        self.catalog.create_index(
            statement.name, statement.table, statement.column
        )
        self.audit.log.record(
            user,
            "CREATE_INDEX",
            statement.name,
            detail=f"{statement.table}({statement.column})",
        )
        self._log_ddl(
            {
                "kind": "create_index",
                "name": statement.name,
                "table": statement.table,
                "column": statement.column,
            }
        )
        self.bump_invalidation_epoch()
        return QueryResult("CREATE_INDEX", detail=statement.name)

    def _execute_drop_index(
        self, statement: ast.DropIndex, user: str
    ) -> QueryResult:
        if user != "admin":
            raise SecurityError("only admin may drop indexes")
        dropped = self.catalog.drop_index(
            statement.name, if_exists=statement.if_exists
        )
        self.audit.log.record(
            user, "DROP_INDEX", statement.name, success=dropped
        )
        if dropped:
            self._log_ddl({"kind": "drop_index", "name": statement.name})
            self.bump_invalidation_epoch()
        return QueryResult("DROP_INDEX", affected_rows=int(dropped))

    # -- engine settings ----------------------------------------------------
    def _execute_set_option(
        self, statement: ast.SetOption, user: str
    ) -> QueryResult:
        """``SET flock.workers = 4`` and friends — engine-wide knobs.

        Settings affect every session, so only admin may change them. The
        statement runs under the exclusive statement lock (it is classed
        with DDL in ``_mutates_shared_state``), which is what makes the
        worker-pool swap in :meth:`set_workers` safe against in-flight
        parallel readers.
        """
        if user != "admin":
            raise SecurityError("only admin may change engine settings")
        name = statement.name.lower()
        value = statement.value
        if not isinstance(value, int) or isinstance(value, bool):
            raise BindError(f"SET {name} expects an integer value")
        if name == "flock.workers":
            self.set_workers(value)
        elif name == "flock.morsel_rows":
            if value < 1:
                raise BindError("flock.morsel_rows must be >= 1")
            self.parallel.morsel_rows = value
        elif name == "flock.parallel_min_rows":
            if value < 0:
                raise BindError("flock.parallel_min_rows must be >= 0")
            self.parallel.min_parallel_rows = value
        elif name == "flock.indexes":
            if value not in (0, 1):
                raise BindError("flock.indexes must be 0 or 1")
            self._indexes_enabled = bool(value)
            # Cached serving plans may embed IndexLookup/zone-map access
            # paths chosen under the old setting.
            self.bump_invalidation_epoch()
        elif name == "flock.encodings":
            if value not in (0, 1):
                raise BindError("flock.encodings must be 0 or 1")
            self.catalog.settings.enabled = bool(value)
            self.bump_invalidation_epoch()
        elif name == "flock.memory_budget":
            if value < 0:
                raise BindError("flock.memory_budget must be >= 0 bytes")
            self.memory_budget = value or None
        else:
            raise BindError(f"unknown setting {name!r}")
        self.audit.log.record(user, "SET", name, detail=str(value))
        return QueryResult("SET", detail=f"{name} = {value}")

    # -- security statements ------------------------------------------------
    def _execute_security(
        self, statement: ast.Statement, user: str
    ) -> QueryResult:
        if user != "admin":
            raise SecurityError("only admin may manage principals and grants")
        if isinstance(statement, ast.CreateUser):
            self.security.create_user(statement.name)
            self.audit.log.record(user, "CREATE_USER", statement.name)
            self._log_ddl({"kind": "create_user", "name": statement.name})
            return QueryResult("CREATE_USER", detail=statement.name)
        if isinstance(statement, ast.CreateRole):
            self.security.create_role(statement.name)
            self.audit.log.record(user, "CREATE_ROLE", statement.name)
            self._log_ddl({"kind": "create_role", "name": statement.name})
            return QueryResult("CREATE_ROLE", detail=statement.name)
        if isinstance(statement, ast.Grant):
            self.security.grant(
                statement.privilege, statement.object_name, statement.principal
            )
            self.audit.log.record(
                user,
                "GRANT",
                statement.object_name or statement.privilege,
                detail=f"{statement.privilege} to {statement.principal}",
            )
            self._log_ddl(
                {
                    "kind": "grant",
                    "privilege": statement.privilege,
                    "object": statement.object_name,
                    "principal": statement.principal,
                }
            )
            return QueryResult("GRANT")
        assert isinstance(statement, ast.Revoke)
        self.security.revoke(
            statement.privilege, statement.object_name, statement.principal
        )
        self.audit.log.record(
            user,
            "REVOKE",
            statement.object_name or statement.privilege,
            detail=f"{statement.privilege} from {statement.principal}",
        )
        self._log_ddl(
            {
                "kind": "revoke",
                "privilege": statement.privilege,
                "object": statement.object_name,
                "principal": statement.principal,
            }
        )
        return QueryResult("REVOKE")


def _coerce_insert_value(column: Column, value: Any) -> Any:
    if column.dtype is DataType.DATE and isinstance(value, str):
        from flock.db.types import date_to_days

        return date_to_days(value)
    return value


def _collect_reads(bound: PlanNode) -> tuple[list[str], list[str]]:
    """(table names, model names) a bound plan reads, for audit records."""
    tables = sorted(
        {n.table_name for n in bound.walk() if isinstance(n, ScanNode)}
    )
    models = sorted(
        {n.model_name for n in bound.walk() if isinstance(n, PredictNode)}
    )
    return tables, models


#: Statement types that never stage a write: they run under the shared side
#: of the statement lock against an MVCC snapshot. The cluster router uses
#: this classification to fan such statements out to follower replicas.
READ_ONLY_STATEMENTS = (ast.Select, ast.SetOperation, ast.Explain)


def is_read_only(statement: ast.Statement) -> bool:
    """Whether *statement* can safely execute on a follower replica."""
    return isinstance(statement, READ_ONLY_STATEMENTS)


_SHARED_STATE_STATEMENTS = (
    ast.CreateTable,
    ast.DropTable,
    ast.CreateView,
    ast.DropView,
    ast.CreateIndex,
    ast.DropIndex,
    ast.CreateUser,
    ast.CreateRole,
    ast.Grant,
    ast.Revoke,
    ast.SetOption,
)


def _mutates_shared_state(statement: ast.Statement) -> bool:
    """DDL/security mutate engine-shared structures at execution time."""
    return isinstance(statement, _SHARED_STATE_STATEMENTS)


class AuditLogProxy:
    """Holds the audit log; kept separate so engines can share one."""

    def __init__(self) -> None:
        from flock.db.audit import AuditLog

        self.log = AuditLog()


class Connection:
    """A per-user session: statement execution + transaction control."""

    def __init__(self, database: Database, user: str):
        self.database = database
        self.user = user
        self._txn: Transaction | None = None

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None and self._txn.active

    def execute(
        self, sql: str, params: Sequence[Any] | None = None
    ) -> QueryResult:
        """Execute one statement; ``params`` bind ``?`` placeholders.

        Statements run under the engine's readers-writer statement lock:
        read-only statements share it (concurrent SELECT/PREDICT, each on
        its own snapshot), write statements hold it exclusively across
        execution *and* commit so no reader ever observes a half-published
        multi-table commit.
        """
        parser = Parser(sql)
        statement = parser.parse()
        bound_params = None if params is None else list(params)
        if bound_params is not None and (
            parser.parameter_count != len(bound_params)
        ):
            raise BindError(
                f"statement has {parser.parameter_count} '?' placeholder(s) "
                f"but {len(bound_params)} parameter value(s) were supplied"
            )
        if bound_params is None and parser.parameter_count:
            raise BindError(
                "statement contains '?' placeholders but no parameters "
                "were supplied"
            )
        lock = self.database.statement_lock
        if isinstance(statement, ast.Begin):
            return self._begin()
        if isinstance(statement, ast.Commit):
            # Commit publishes staged versions: exclusive.
            with lock.write_locked():
                return self._commit()
        if isinstance(statement, ast.Rollback):
            return self._rollback()

        if self.in_transaction:
            assert self._txn is not None
            # DML inside an explicit transaction only stages versions
            # private to this transaction, so it can share the lock with
            # readers; DDL and security statements mutate shared engine
            # structures immediately and need exclusivity.
            guard = (
                lock.write_locked()
                if _mutates_shared_state(statement)
                else lock.read_locked()
            )
            with guard:
                return self.database._run_statement(
                    statement, sql, self.user, self._txn, bound_params
                )

        if is_read_only(statement):
            # Read-only autocommit: snapshot, run, release — never commits.
            with lock.read_locked():
                txn = self.database.transactions.begin(self.user)
                try:
                    return self.database._run_statement(
                        statement, sql, self.user, txn, bound_params
                    )
                finally:
                    self.database.transactions.rollback(txn)

        # Autocommit write: implicit transaction per statement, executed and
        # committed under the exclusive lock. Write conflicts (a commit from
        # an explicit transaction landed first) retry against the new head —
        # single statements are trivially serializable.
        from flock.errors import TransactionError

        with lock.write_locked():
            attempts = 0
            while True:
                txn = self.database.transactions.begin(self.user)
                try:
                    result = self.database._run_statement(
                        statement, sql, self.user, txn, bound_params
                    )
                except FlockError:
                    self.database.transactions.rollback(txn)
                    raise
                if not txn.has_writes:
                    self.database.transactions.rollback(txn)
                    return result
                try:
                    self.database.transactions.commit(txn)
                    self.database.maybe_auto_checkpoint()
                    return result
                except TransactionError:
                    attempts += 1
                    if attempts >= 10:
                        raise

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Execute a ';'-separated script, returning per-statement results."""
        from flock.db.sql.parser import split_statements

        return [self.execute(text) for text in split_statements(sql)]

    # -- explicit transactions ----------------------------------------------
    def _begin(self) -> QueryResult:
        if self.in_transaction:
            raise BindError("already in a transaction")
        self._txn = self.database.transactions.begin(self.user)
        return QueryResult("BEGIN")

    def _commit(self) -> QueryResult:
        if not self.in_transaction:
            raise BindError("no transaction in progress")
        assert self._txn is not None
        self.database.transactions.commit(self._txn)
        self._txn = None
        self.database.maybe_auto_checkpoint()
        return QueryResult("COMMIT")

    def _rollback(self) -> QueryResult:
        if not self.in_transaction:
            raise BindError("no transaction in progress")
        assert self._txn is not None
        self.database.transactions.rollback(self._txn)
        self._txn = None
        return QueryResult("ROLLBACK")


class _EngineExecutionContext:
    """ExecutionContext backed by an engine + transaction snapshot."""

    def __init__(self, database: Database, txn: Transaction):
        self.database = database
        self.txn = txn

    @property
    def memory_budget(self) -> int | None:
        return self.database.memory_budget

    def spill_directory(self) -> str:
        return self.database.spill_directory()

    def table_batch(self, table_name: str) -> Batch:
        version: TableVersion = self.txn.visible_version(table_name)
        return version.batch()

    def table_version(self, table_name: str) -> TableVersion:
        """The snapshot version zone-map pruning should run against."""
        return self.txn.visible_version(table_name)

    def index_lookup(
        self, table_name: str, index_name: str, key_values
    ) -> np.ndarray | None:
        """Row ids matching *key_values* via a hash index, or None.

        Returns None (caller falls back to a full scan; the Filter above
        still applies the predicate) when the index was dropped after the
        plan was cached, or when this transaction reads its own staged
        version — indexes only ever reflect published table heads.
        """
        try:
            table = self.database.catalog.table(table_name)
        except CatalogError:
            return None
        idx = table.index(index_name)
        if idx is None:
            return None
        version = self.txn.visible_version(table_name)
        if version is not table.head_version:
            return None
        return idx.lookup(version, key_values)

    def score(self, node: PredictNode, inputs: Batch) -> list[ColumnVector]:
        if self.database.model_store is None:
            raise InferenceError("no model store attached to this database")
        return self.database.scorer.score(
            node, inputs, self.database.model_store
        )
