"""Columnar value containers.

:class:`ColumnVector` is the unit of data flow inside the engine: a typed
numpy array of physical values plus an explicit boolean null mask. All
expression evaluation and all physical operators consume and produce
ColumnVectors, which is what makes the "vectorized batch" execution regime of
the Figure 4 experiment real rather than simulated.

:class:`Batch` bundles named ColumnVectors of equal length — the engine's
analogue of a record batch.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from flock.db.types import DataType, coerce_value, python_value
from flock.errors import ExecutionError


class ColumnVector:
    """A typed column of values with an explicit null mask.

    ``values`` holds physical values (undefined where ``nulls`` is True) and
    ``nulls`` marks NULL positions. Both arrays always have the same length.
    """

    __slots__ = ("dtype", "values", "nulls")

    def __init__(self, dtype: DataType, values: np.ndarray, nulls: np.ndarray):
        if len(values) != len(nulls):
            raise ExecutionError(
                f"values ({len(values)}) and nulls ({len(nulls)}) length mismatch"
            )
        self.dtype = dtype
        self.values = values
        self.nulls = nulls

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, dtype: DataType, items: Sequence[Any]) -> "ColumnVector":
        """Build a vector from Python values, coercing each to *dtype*."""
        n = len(items)
        nulls = np.zeros(n, dtype=bool)
        storage = np.empty(n, dtype=dtype.numpy_dtype)
        if dtype.numpy_dtype != np.dtype(object):
            storage[:] = _zero_of(dtype)
        for i, item in enumerate(items):
            coerced = coerce_value(item, dtype)
            if coerced is None:
                nulls[i] = True
            else:
                storage[i] = coerced
        return cls(dtype, storage, nulls)

    @classmethod
    def constant(cls, dtype: DataType, value: Any, length: int) -> "ColumnVector":
        """A vector repeating one (possibly NULL) value *length* times.

        Implemented as zero-copy broadcast views: literals in expressions
        cost O(1) regardless of batch size. Consumers treat vectors as
        read-only (mutating operators copy first), so the read-only views
        are safe.
        """
        coerced = coerce_value(value, dtype)
        if coerced is None:
            values = np.broadcast_to(
                np.asarray(_zero_of(dtype), dtype=dtype.numpy_dtype), (length,)
            )
            return cls(dtype, values, np.broadcast_to(True, (length,)))
        values = np.broadcast_to(
            np.asarray(coerced, dtype=dtype.numpy_dtype), (length,)
        )
        return cls(dtype, values, np.broadcast_to(False, (length,)))

    @classmethod
    def empty(cls, dtype: DataType) -> "ColumnVector":
        return cls(
            dtype,
            np.empty(0, dtype=dtype.numpy_dtype),
            np.empty(0, dtype=bool),
        )

    @classmethod
    def from_numpy(
        cls, dtype: DataType, values: np.ndarray, nulls: np.ndarray | None = None
    ) -> "ColumnVector":
        """Wrap an existing numpy array (no copy) as a ColumnVector."""
        values = np.asarray(values, dtype=dtype.numpy_dtype)
        if nulls is None:
            nulls = np.zeros(len(values), dtype=bool)
        return cls(dtype, values, np.asarray(nulls, dtype=bool))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> Any:
        """The user-facing Python value at *index* (None when NULL)."""
        if self.nulls[index]:
            return None
        return python_value(self.values[index], self.dtype)

    def to_pylist(self) -> list[Any]:
        """All values as user-facing Python objects."""
        return [self[i] for i in range(len(self))]

    def has_nulls(self) -> bool:
        return bool(self.nulls.any())

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "ColumnVector":
        """Gather rows by position."""
        return ColumnVector(self.dtype, self.values[indices], self.nulls[indices])

    def filter(self, mask: np.ndarray) -> "ColumnVector":
        """Keep rows where *mask* is True."""
        return ColumnVector(self.dtype, self.values[mask], self.nulls[mask])

    def slice(self, start: int, stop: int) -> "ColumnVector":
        return ColumnVector(self.dtype, self.values[start:stop], self.nulls[start:stop])

    def concat(self, other: "ColumnVector") -> "ColumnVector":
        if other.dtype is not self.dtype:
            raise ExecutionError(
                f"cannot concat {self.dtype} column with {other.dtype} column"
            )
        return ColumnVector(
            self.dtype,
            np.concatenate([self.values, other.values]),
            np.concatenate([self.nulls, other.nulls]),
        )

    def copy(self) -> "ColumnVector":
        return ColumnVector(self.dtype, self.values.copy(), self.nulls.copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.to_pylist()[:8]
        return f"ColumnVector({self.dtype}, n={len(self)}, {preview}...)"


def _zero_of(dtype: DataType) -> Any:
    """A placeholder physical value for NULL slots of *dtype*."""
    if dtype.numpy_dtype == np.dtype(object):
        return None
    if dtype is DataType.BOOLEAN:
        return False
    if dtype is DataType.FLOAT:
        return 0.0
    return 0


class Batch:
    """An ordered set of equally long named columns — one execution quantum."""

    __slots__ = ("columns", "names")

    def __init__(self, names: Sequence[str], columns: Sequence[ColumnVector]):
        if len(names) != len(columns):
            raise ExecutionError("column name/vector count mismatch")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged batch: column lengths {sorted(lengths)}")
        self.names = list(names)
        self.columns = list(columns)

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> ColumnVector:
        try:
            return self.columns[self.names.index(name)]
        except ValueError:
            raise ExecutionError(f"batch has no column named {name!r}") from None

    def with_columns(
        self, names: Iterable[str], columns: Iterable[ColumnVector]
    ) -> "Batch":
        """A new batch with extra columns appended."""
        return Batch(self.names + list(names), self.columns + list(columns))

    def select(self, indices: Sequence[int]) -> "Batch":
        """Project columns by position."""
        return Batch(
            [self.names[i] for i in indices], [self.columns[i] for i in indices]
        )

    def take(self, indices: np.ndarray) -> "Batch":
        return Batch(self.names, [c.take(indices) for c in self.columns])

    def filter(self, mask: np.ndarray) -> "Batch":
        return Batch(self.names, [c.filter(mask) for c in self.columns])

    def slice(self, start: int, stop: int) -> "Batch":
        return Batch(self.names, [c.slice(start, stop) for c in self.columns])

    def concat(self, other: "Batch") -> "Batch":
        if other.names != self.names:
            raise ExecutionError("cannot concat batches with different schemas")
        return Batch(
            self.names,
            [a.concat(b) for a, b in zip(self.columns, other.columns)],
        )

    def morsels(self, morsel_rows: int) -> Iterator["Batch"]:
        """Iterate zero-copy slices of at most *morsel_rows* rows, in order.

        The unit of the morsel-driven parallel executor: each slice shares
        the underlying numpy buffers, so splitting a snapshot across worker
        threads costs O(columns) per morsel, not O(rows).
        """
        if morsel_rows < 1:
            raise ExecutionError("morsel_rows must be >= 1")
        for start in range(0, self.num_rows, morsel_rows):
            yield self.slice(start, min(start + morsel_rows, self.num_rows))

    @staticmethod
    def concat_all(batches: Sequence["Batch"]) -> "Batch":
        """Concatenate *batches* in order with one allocation per column.

        Equivalent to repeated :meth:`concat` (bitwise — concatenation only
        moves values) but linear instead of quadratic in total rows, which
        is what the parallel merge path needs.
        """
        if not batches:
            raise ExecutionError("concat_all needs at least one batch")
        first = batches[0]
        if len(batches) == 1:
            return first
        for other in batches[1:]:
            if other.names != first.names:
                raise ExecutionError(
                    "cannot concat batches with different schemas"
                )
        from flock.db.encoding import concat_encoded

        columns = []
        for i, column in enumerate(first.columns):
            chunks = [b.columns[i] for b in batches]
            # Morsel outputs are often slices of one encoded column (same
            # dictionary / frame); those merge on the encoded payload.
            encoded = concat_encoded(chunks)
            if encoded is not None:
                columns.append(encoded)
                continue
            columns.append(
                ColumnVector(
                    column.dtype,
                    np.concatenate([c.values for c in chunks]),
                    np.concatenate([c.nulls for c in chunks]),
                )
            )
        return Batch(first.names, columns)

    def rows(self) -> Iterator[tuple]:
        """Iterate user-facing Python row tuples (slow path, for results)."""
        pylists = [c.to_pylist() for c in self.columns]
        return iter(zip(*pylists)) if pylists else iter(())

    def row(self, index: int) -> tuple:
        return tuple(c[index] for c in self.columns)

    @classmethod
    def empty(cls, names: Sequence[str], dtypes: Sequence[DataType]) -> "Batch":
        return cls(list(names), [ColumnVector.empty(d) for d in dtypes])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch({self.num_rows}x{self.num_columns}: {self.names})"
