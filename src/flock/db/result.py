"""Query results returned to callers."""

from __future__ import annotations

from typing import Any, Iterator

from flock.db.vector import Batch


class QueryResult:
    """The outcome of one statement.

    For SELECTs, carries the result batch; for DML, the affected row count;
    for DDL and control statements, just a status tag.
    """

    def __init__(
        self,
        statement_type: str,
        batch: Batch | None = None,
        affected_rows: int = 0,
        detail: str = "",
    ):
        self.statement_type = statement_type
        self.batch = batch
        self.affected_rows = affected_rows
        self.detail = detail

    @property
    def column_names(self) -> list[str]:
        return list(self.batch.names) if self.batch is not None else []

    @property
    def row_count(self) -> int:
        if self.batch is not None:
            return self.batch.num_rows
        return self.affected_rows

    def rows(self) -> list[tuple]:
        """All result rows as Python tuples."""
        if self.batch is None:
            return []
        return list(self.batch.rows())

    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.column_names
        return [dict(zip(names, row)) for row in self.rows()]

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        rows = self.rows()
        if len(rows) != 1 or len(rows[0]) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{len(rows)}x{len(rows[0]) if rows else 0}"
            )
        return rows[0][0]

    def column(self, name: str) -> list[Any]:
        """One column of the result as a Python list."""
        if self.batch is None:
            return []
        return self.batch.column(name).to_pylist()

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.batch is not None:
            return f"QueryResult({self.statement_type}, {self.row_count} rows)"
        return f"QueryResult({self.statement_type}, affected={self.affected_rows})"
