"""Query results returned to callers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from flock.db.vector import Batch


@dataclass
class QueryStats:
    """Per-query timing summary attached to a :class:`QueryResult`.

    ``trace`` is the statement's :class:`flock.observability.Span` tree (or
    None when tracing is disabled); render it with
    :func:`flock.observability.render_span_tree`.
    """

    statement_type: str = ""
    wall_ms: float = 0.0
    rows: int = 0
    trace: Any = None

    def __str__(self) -> str:
        return (
            f"{self.statement_type or '?'}: {self.rows} rows "
            f"in {self.wall_ms:.3f}ms"
        )


class QueryResult:
    """The outcome of one statement.

    For SELECTs, carries the result batch; for DML, the affected row count;
    for DDL and control statements, just a status tag. The stable consumer
    surface is ``rows()``, ``scalar()``, ``to_dict()``/``to_dicts()``,
    ``len(result)``, and ``result.stats`` (set by the engine for statements
    executed through a :class:`~flock.db.engine.Connection`).
    """

    def __init__(
        self,
        statement_type: str,
        batch: Batch | None = None,
        affected_rows: int = 0,
        detail: str = "",
    ):
        self.statement_type = statement_type
        self.batch = batch
        self.affected_rows = affected_rows
        self.detail = detail
        self.stats: Optional[QueryStats] = None

    @property
    def column_names(self) -> list[str]:
        return list(self.batch.names) if self.batch is not None else []

    @property
    def row_count(self) -> int:
        if self.batch is not None:
            return self.batch.num_rows
        return self.affected_rows

    def rows(self) -> list[tuple]:
        """All result rows as Python tuples."""
        if self.batch is None:
            return []
        return list(self.batch.rows())

    def to_dict(self) -> dict[str, list[Any]]:
        """Columnar view: column name → list of values."""
        if self.batch is None:
            return {}
        return {
            name: self.batch.column(name).to_pylist()
            for name in self.column_names
        }

    def to_dicts(self) -> list[dict[str, Any]]:
        """Row view: one dict per result row."""
        names = self.column_names
        return [dict(zip(names, row)) for row in self.rows()]

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        rows = self.rows()
        if len(rows) != 1 or len(rows[0]) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{len(rows)}x{len(rows[0]) if rows else 0}"
            )
        return rows[0][0]

    def column(self, name: str) -> list[Any]:
        """One column of the result as a Python list."""
        if self.batch is None:
            return []
        return self.batch.column(name).to_pylist()

    def __len__(self) -> int:
        return self.row_count

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.batch is not None:
            return f"QueryResult({self.statement_type}, {self.row_count} rows)"
        return f"QueryResult({self.statement_type}, affected={self.affected_rows})"
