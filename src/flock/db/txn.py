"""Transactions: atomic multi-table commits with rollback.

Writes build *staged* table versions that only this transaction sees; commit
publishes every staged version atomically under a global commit lock, with
first-updater-wins conflict detection against the base version each table was
read at. This is what lets multiple deployed models be "updated
transactionally" (§4.1: models are first-class data, so a model rollout is
just a multi-table transaction).
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable

from flock.db.catalog import Catalog
from flock.db.storage import TableVersion
from flock.errors import TransactionError

_txn_ids = itertools.count(1)


class Transaction:
    """One transaction's private view: staged versions over base snapshots."""

    def __init__(self, manager: "TransactionManager", user: str):
        self.txn_id = next(_txn_ids)
        self.user = user
        self.active = True
        self._manager = manager
        self._staged: dict[str, TableVersion] = {}
        self._base_version_ids: dict[str, int] = {}
        self._on_commit: list[Callable[[], None]] = []
        self._on_rollback: list[Callable[[], None]] = []

    # -- reads ----------------------------------------------------------
    def visible_version(self, table_name: str) -> TableVersion:
        """The version this transaction sees (its own writes, else head)."""
        self._check_active()
        key = table_name.lower()
        if key in self._staged:
            return self._staged[key]
        return self._manager.catalog.table(table_name).head_version

    # -- writes ---------------------------------------------------------
    def stage(self, table_name: str, version: TableVersion) -> None:
        """Record a staged version for *table_name* (visible only to us)."""
        self._check_active()
        key = table_name.lower()
        if key not in self._base_version_ids:
            head = self._manager.catalog.table(table_name).head_version
            self._base_version_ids[key] = head.version_id
        self._staged[key] = version

    def on_commit(self, callback: Callable[[], None]) -> None:
        """Run *callback* after a successful commit (used by the policy
        engine and the provenance catalog to piggyback on atomicity)."""
        self._on_commit.append(callback)

    def on_rollback(self, callback: Callable[[], None]) -> None:
        self._on_rollback.append(callback)

    # -- lifecycle --------------------------------------------------------
    def commit(self) -> None:
        self._manager.commit(self)

    def rollback(self) -> None:
        self._manager.rollback(self)

    @property
    def has_writes(self) -> bool:
        return bool(self._staged)

    def _check_active(self) -> None:
        if not self.active:
            raise TransactionError(
                f"transaction {self.txn_id} is no longer active"
            )


class TransactionManager:
    """Begins, commits and rolls back transactions against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._commit_lock = threading.Lock()
        self.committed_count = 0
        self.aborted_count = 0

    def begin(self, user: str = "admin") -> Transaction:
        return Transaction(self, user)

    def commit(self, txn: Transaction) -> None:
        txn._check_active()
        with self._commit_lock:
            # Validate: no table we wrote moved under us since we based on it.
            for key, base_id in txn._base_version_ids.items():
                head = self.catalog.table(key).head_version
                if head.version_id != base_id:
                    txn.active = False
                    self.aborted_count += 1
                    for callback in txn._on_rollback:
                        callback()
                    raise TransactionError(
                        f"write conflict on table {key!r}: head moved from "
                        f"version {base_id} to {head.version_id}"
                    )
            for key, staged in txn._staged.items():
                self.catalog.table(key).publish(staged)
            txn.active = False
            self.committed_count += 1
        for callback in txn._on_commit:
            callback()

    def rollback(self, txn: Transaction) -> None:
        if not txn.active:
            return
        txn.active = False
        self.aborted_count += 1
        for callback in txn._on_rollback:
            callback()
