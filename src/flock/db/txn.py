"""Transactions: atomic multi-table commits with rollback.

Writes build *staged* table versions that only this transaction sees; commit
publishes every staged version atomically under a global commit lock, with
first-updater-wins conflict detection against the base version each table was
read at. This is what lets multiple deployed models be "updated
transactionally" (§4.1: models are first-class data, so a model rollout is
just a multi-table transaction).
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Callable

from flock.db.catalog import Catalog
from flock.db.storage import TableVersion
from flock.errors import TransactionError

_txn_ids = itertools.count(1)


class ReadWriteLock:
    """A writer-preference readers-writer lock with same-thread reentrancy.

    The engine takes the *read* side for SELECT/PREDICT statements (many can
    run concurrently, each against its own MVCC snapshot) and the *write*
    side for DML/DDL (execution and commit happen under one exclusive
    section, so a reader can never observe a half-published multi-table
    commit). Writer preference keeps a steady stream of point queries from
    starving deployments and loads.

    Reentrancy rules: a thread holding the write lock may re-acquire either
    side (statement handlers and commit hooks nest); a thread holding only a
    read lock may re-acquire the read side but must not upgrade to write —
    upgrades deadlock under concurrency, so they raise immediately.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None
        self._write_depth = 0
        self._waiting_writers = 0
        self._local = threading.local()

    def _read_depth(self) -> int:
        return getattr(self._local, "read_depth", 0)

    def acquire_read(self) -> None:
        me = threading.get_ident()
        if self._writer == me or self._read_depth() > 0:
            # Nested under our own write or read section: already safe.
            self._local.read_depth = self._read_depth() + 1
            return
        with self._cond:
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._readers += 1
        self._local.read_depth = 1
        self._local.counted = True

    def release_read(self) -> None:
        depth = self._read_depth()
        if depth <= 0:
            raise RuntimeError("release_read without a matching acquire_read")
        self._local.read_depth = depth - 1
        if depth == 1 and getattr(self._local, "counted", False):
            self._local.counted = False
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    def acquire_write(self) -> None:
        me = threading.get_ident()
        if self._writer == me:
            self._write_depth += 1
            return
        if self._read_depth() > 0:
            raise RuntimeError(
                "cannot upgrade a read lock to a write lock"
            )
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
                self._writer = me
                self._write_depth = 1
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError(
                    "release_write by a thread that does not hold the lock"
                )
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class Transaction:
    """One transaction's private view: staged versions over base snapshots."""

    def __init__(self, manager: "TransactionManager", user: str):
        self.txn_id = next(_txn_ids)
        self.user = user
        self.active = True
        self._manager = manager
        self._staged: dict[str, TableVersion] = {}
        self._base_version_ids: dict[str, int] = {}
        # Ordered log of every staged version, including intermediate ones a
        # later statement in the same transaction superseded in _staged.
        # The WAL records these, so replay re-applies the same sequence of
        # logical deltas instead of one opaque final state per table.
        self._effects: list[tuple[str, TableVersion]] = []
        self._on_commit: list[Callable[[], None]] = []
        self._on_rollback: list[Callable[[], None]] = []

    # -- reads ----------------------------------------------------------
    def visible_version(self, table_name: str) -> TableVersion:
        """The version this transaction sees (its own writes, else head)."""
        self._check_active()
        key = table_name.lower()
        if key in self._staged:
            return self._staged[key]
        return self._manager.catalog.table(table_name).head_version

    # -- writes ---------------------------------------------------------
    def stage(self, table_name: str, version: TableVersion) -> None:
        """Record a staged version for *table_name* (visible only to us)."""
        self._check_active()
        key = table_name.lower()
        if key not in self._base_version_ids:
            head = self._manager.catalog.table(table_name).head_version
            self._base_version_ids[key] = head.version_id
        self._staged[key] = version
        self._effects.append((key, version))

    def on_commit(self, callback: Callable[[], None]) -> None:
        """Run *callback* after a successful commit (used by the policy
        engine and the provenance catalog to piggyback on atomicity)."""
        self._on_commit.append(callback)

    def on_rollback(self, callback: Callable[[], None]) -> None:
        self._on_rollback.append(callback)

    # -- lifecycle --------------------------------------------------------
    def commit(self) -> None:
        self._manager.commit(self)

    def rollback(self) -> None:
        self._manager.rollback(self)

    @property
    def has_writes(self) -> bool:
        return bool(self._staged)

    def _check_active(self) -> None:
        if not self.active:
            raise TransactionError(
                f"transaction {self.txn_id} is no longer active"
            )


class TransactionManager:
    """Begins, commits and rolls back transactions against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._commit_lock = threading.Lock()
        self.committed_count = 0
        self.aborted_count = 0
        # Set by flock.db.wal when the database is durable; None keeps the
        # engine purely in-memory with zero overhead on this path.
        self.wal = None
        # Set by flock.cluster when follower replicas are attached: every
        # committed record is streamed to the hub *after* it publishes, so
        # a follower can never apply a commit the primary rolled back.
        self.replication = None

    def begin(self, user: str = "admin") -> Transaction:
        return Transaction(self, user)

    def commit(self, txn: Transaction) -> None:
        txn._check_active()
        wal = self.wal
        hub = self.replication
        lsn = None
        record = None
        with self._commit_lock:
            # Validate: no table we wrote moved under us since we based on it.
            for key, base_id in txn._base_version_ids.items():
                head = self.catalog.table(key).head_version
                if head.version_id != base_id:
                    txn.active = False
                    self.aborted_count += 1
                    for callback in txn._on_rollback:
                        callback()
                    raise TransactionError(
                        f"write conflict on table {key!r}: head moved from "
                        f"version {base_id} to {head.version_id}"
                    )
            if wal is not None and txn._effects:
                # Log before publish: in "commit" mode this appends *and*
                # fsyncs, so the record is durable before anything becomes
                # visible; in "group" mode it only appends, and the fsync
                # happens in wait_durable below before the commit call
                # returns (acknowledgement), which the log's prefix-flush
                # property makes safe.
                try:
                    lsn, record = wal.log_commit(txn)
                except Exception:
                    txn.active = False
                    self.aborted_count += 1
                    for callback in txn._on_rollback:
                        callback()
                    raise
            elif hub is not None and txn._effects:
                # Replication without a WAL (in-memory primary): encode the
                # identical record the log would have carried.
                from flock.db.wal import encode_commit_record

                record = encode_commit_record(txn)
            for key, staged in txn._staged.items():
                table = self.catalog.table(key)
                prev_head_id = table.head_version.version_id
                table.publish(staged)
                # Keep hash indexes current across the commit when the
                # transaction's ordered per-table effect chain is pure
                # INSERTs; otherwise indexes go stale and rebuild lazily
                # on their next lookup.
                table.maintain_indexes(
                    prev_head_id,
                    [v for k, v in txn._effects if k == key],
                )
            txn.active = False
            self.committed_count += 1
            if hub is not None and record is not None:
                # Ship the record only after every staged version published:
                # if the append/fsync above had failed, the transaction
                # rolled back and no follower ever saw it. Publishing under
                # the commit lock preserves commit order on the stream.
                hub.publish(record)
        if wal is not None and lsn is not None:
            wal.wait_durable(lsn)
        for callback in txn._on_commit:
            callback()

    def rollback(self, txn: Transaction) -> None:
        if not txn.active:
            return
        txn.active = False
        self.aborted_count += 1
        for callback in txn._on_rollback:
            callback()
