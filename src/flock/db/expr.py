"""Bound (typed, resolved) expressions with vectorized evaluation.

The binder converts parser AST expressions into this representation: column
references become batch positions, functions are resolved against the
registry in :mod:`flock.db.functions`, and every node knows its result
:class:`~flock.db.types.DataType`.

Evaluation is columnar: ``evaluate(batch)`` returns a
:class:`~flock.db.vector.ColumnVector` of the batch's row count. SQL
three-valued logic is implemented with explicit null masks (comparisons
propagate nulls; AND/OR use Kleene semantics).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Sequence

import numpy as np

from flock.db.encoding import DictionaryVector, RunLengthVector
from flock.db.types import DataType, coerce_value
from flock.db.vector import Batch, ColumnVector
from flock.errors import ExecutionError

#: Sentinel distinguishing "not a constant vector" from a NULL constant.
_NO_CONST = object()


def _const_scalar(vector: ColumnVector) -> Any:
    """The scalar behind a broadcast literal vector, else ``_NO_CONST``.

    Literal operands evaluate to zero-copy ``np.broadcast_to`` vectors
    (stride 0), which is what the late-decode fast paths key on: a
    predicate against a constant evaluates once per dictionary entry or
    run instead of once per row.
    """
    if type(vector) is not ColumnVector or len(vector) == 0:
        return _NO_CONST
    values = vector.values
    if values.strides != (0,):
        return _NO_CONST
    if vector.nulls[0]:
        return None
    value = values[0]
    return value.item() if isinstance(value, np.generic) else value


class BoundExpr:
    """Base class for bound expressions."""

    dtype: DataType

    def evaluate(self, batch: Batch) -> ColumnVector:
        raise NotImplementedError

    def children(self) -> list["BoundExpr"]:
        return []

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()

    def referenced_columns(self) -> set[int]:
        """Positions of all input columns this expression reads."""
        return {
            node.index for node in self.walk() if isinstance(node, BoundColumn)
        }

    def rewrite_columns(self, mapping: dict[int, int]) -> "BoundExpr":
        """A copy with column positions remapped (used when plans move).

        Subexpressions may be shared within one tree (deepcopy preserves
        sharing), so each node is remapped exactly once.
        """
        import copy

        clone = copy.deepcopy(self)
        seen: set[int] = set()
        for node in clone.walk():
            if isinstance(node, BoundColumn) and id(node) not in seen:
                seen.add(id(node))
                node.index = mapping[node.index]
        return clone


class BoundLiteral(BoundExpr):
    def __init__(self, dtype: DataType, value: Any):
        self.dtype = dtype
        self.value = coerce_value(value, dtype)

    def evaluate(self, batch: Batch) -> ColumnVector:
        return ColumnVector.constant(self.dtype, self.value, batch.num_rows)

    def __repr__(self) -> str:
        return f"Lit({self.value!r}:{self.dtype})"


class BoundColumn(BoundExpr):
    def __init__(self, index: int, dtype: DataType, name: str):
        self.index = index
        self.dtype = dtype
        self.name = name

    def evaluate(self, batch: Batch) -> ColumnVector:
        return batch.columns[self.index]

    def __repr__(self) -> str:
        return f"Col(#{self.index} {self.name}:{self.dtype})"


class BoundUnary(BoundExpr):
    """Numeric negation or logical NOT."""

    def __init__(self, op: str, operand: BoundExpr):
        self.op = op
        self.operand = operand
        self.dtype = (
            DataType.BOOLEAN if op == "NOT" else operand.dtype
        )

    def children(self) -> list[BoundExpr]:
        return [self.operand]

    def evaluate(self, batch: Batch) -> ColumnVector:
        inner = self.operand.evaluate(batch)
        if self.op == "-":
            return ColumnVector(self.dtype, -inner.values, inner.nulls.copy())
        if self.op == "NOT":
            return ColumnVector(
                DataType.BOOLEAN, ~inner.values.astype(bool), inner.nulls.copy()
            )
        raise ExecutionError(f"unknown unary operator {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.op} {self.operand!r})"


_ARITH = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
}
_COMPARE: dict[str, Callable] = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


class BoundBinary(BoundExpr):
    """Arithmetic, comparison, string concat and Kleene AND/OR."""

    def __init__(self, op: str, left: BoundExpr, right: BoundExpr, dtype: DataType):
        self.op = op
        self.left = left
        self.right = right
        self.dtype = dtype

    def children(self) -> list[BoundExpr]:
        return [self.left, self.right]

    def evaluate(self, batch: Batch) -> ColumnVector:
        op = self.op
        if op == "AND":
            return self._kleene_and(batch)
        if op == "OR":
            return self._kleene_or(batch)
        lhs = self.left.evaluate(batch)
        rhs = self.right.evaluate(batch)
        nulls = lhs.nulls | rhs.nulls
        if op in _ARITH:
            values = _ARITH[op](
                lhs.values.astype(self.dtype.numpy_dtype),
                rhs.values.astype(self.dtype.numpy_dtype),
            )
            return ColumnVector(self.dtype, values, nulls)
        if op == "/":
            return self._divide(lhs, rhs, nulls)
        if op == "%":
            return self._modulo(lhs, rhs, nulls)
        if op in _COMPARE:
            return self._compare(lhs, rhs, nulls)
        if op == "||":
            return self._concat(lhs, rhs, nulls)
        raise ExecutionError(f"unknown binary operator {op!r}")

    def _divide(
        self, lhs: ColumnVector, rhs: ColumnVector, nulls: np.ndarray
    ) -> ColumnVector:
        denom = rhs.values.astype(np.float64)
        zero = (denom == 0) & ~nulls
        if zero.any():
            raise ExecutionError("division by zero")
        with np.errstate(divide="ignore", invalid="ignore"):
            values = lhs.values.astype(np.float64) / np.where(denom == 0, 1.0, denom)
        if self.dtype is DataType.INTEGER:
            values = values.astype(np.int64)
        return ColumnVector(self.dtype, values, nulls)

    def _modulo(
        self, lhs: ColumnVector, rhs: ColumnVector, nulls: np.ndarray
    ) -> ColumnVector:
        denom = rhs.values
        zero = (denom == 0) & ~nulls
        if zero.any():
            raise ExecutionError("modulo by zero")
        safe = np.where(denom == 0, 1, denom)
        values = np.mod(lhs.values, safe).astype(self.dtype.numpy_dtype)
        return ColumnVector(self.dtype, values, nulls)

    def _compare(
        self, lhs: ColumnVector, rhs: ColumnVector, nulls: np.ndarray
    ) -> ColumnVector:
        fast = _encoded_compare(self.op, lhs, rhs, nulls)
        if fast is not None:
            return fast
        if lhs.dtype.numpy_dtype == np.dtype(object) or (
            rhs.dtype.numpy_dtype == np.dtype(object)
        ):
            lv, rv = lhs.values, rhs.values
            out = np.zeros(len(lv), dtype=bool)
            comparator = _PY_COMPARE[self.op]
            for i in range(len(lv)):
                if not nulls[i]:
                    out[i] = comparator(lv[i], rv[i])
            return ColumnVector(DataType.BOOLEAN, out, nulls)
        left_values = lhs.values
        right_values = rhs.values
        if left_values.dtype != right_values.dtype:
            left_values = left_values.astype(np.float64)
            right_values = right_values.astype(np.float64)
        values = _COMPARE[self.op](left_values, right_values)
        return ColumnVector(DataType.BOOLEAN, values, nulls)

    def _concat(
        self, lhs: ColumnVector, rhs: ColumnVector, nulls: np.ndarray
    ) -> ColumnVector:
        out = np.empty(len(lhs), dtype=object)
        lv, rv = lhs.values, rhs.values
        for i in range(len(lhs)):
            if not nulls[i]:
                out[i] = str(lv[i]) + str(rv[i])
        return ColumnVector(DataType.TEXT, out, nulls)

    def _kleene_and(self, batch: Batch) -> ColumnVector:
        lhs = self.left.evaluate(batch)
        rhs = self.right.evaluate(batch)
        lv = lhs.values.astype(bool)
        rv = rhs.values.astype(bool)
        values = lv & rv & ~lhs.nulls & ~rhs.nulls
        # NULL unless either side is a definite FALSE.
        false_left = ~lv & ~lhs.nulls
        false_right = ~rv & ~rhs.nulls
        nulls = (lhs.nulls | rhs.nulls) & ~false_left & ~false_right
        return ColumnVector(DataType.BOOLEAN, values, nulls)

    def _kleene_or(self, batch: Batch) -> ColumnVector:
        lhs = self.left.evaluate(batch)
        rhs = self.right.evaluate(batch)
        lv = lhs.values.astype(bool)
        rv = rhs.values.astype(bool)
        true_left = lv & ~lhs.nulls
        true_right = rv & ~rhs.nulls
        values = true_left | true_right
        nulls = (lhs.nulls | rhs.nulls) & ~true_left & ~true_right
        return ColumnVector(DataType.BOOLEAN, values, nulls)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


_PY_COMPARE = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _encoded_compare(
    op: str, lhs: ColumnVector, rhs: ColumnVector, nulls: np.ndarray
) -> ColumnVector | None:
    """Late-decode comparison against a constant, or None for the slow path.

    Dictionary operands compare once per dictionary entry and gather
    through the codes; run-length operands compare once per run and
    expand. Both reproduce exactly what the generic paths compute at
    non-null rows (null rows are masked by *nulls* either way).
    """
    if isinstance(lhs, DictionaryVector):
        const = _const_scalar(rhs)
        if const is not _NO_CONST:
            return _dict_compare(op, lhs, const, nulls, flipped=False)
    if isinstance(rhs, DictionaryVector):
        const = _const_scalar(lhs)
        if const is not _NO_CONST:
            return _dict_compare(op, rhs, const, nulls, flipped=True)
    if isinstance(lhs, RunLengthVector):
        const = _const_scalar(rhs)
        if const is not _NO_CONST:
            return _rle_compare(op, lhs, rhs, nulls, flipped=False)
    if isinstance(rhs, RunLengthVector):
        const = _const_scalar(lhs)
        if const is not _NO_CONST:
            return _rle_compare(op, rhs, lhs, nulls, flipped=True)
    return None


def _dict_compare(
    op: str,
    operand: DictionaryVector,
    const: Any,
    nulls: np.ndarray,
    flipped: bool,
) -> ColumnVector:
    comparator = _PY_COMPARE[op]
    k = len(operand.dictionary)
    if const is None:
        dict_mask = np.zeros(k, dtype=bool)
    elif flipped:
        dict_mask = np.fromiter(
            (comparator(const, d) for d in operand.dictionary.tolist()),
            dtype=bool,
            count=k,
        )
    else:
        dict_mask = np.fromiter(
            (comparator(d, const) for d in operand.dictionary.tolist()),
            dtype=bool,
            count=k,
        )
    return ColumnVector(
        DataType.BOOLEAN, operand.predicate_mask(dict_mask), nulls
    )


def _rle_compare(
    op: str,
    operand: RunLengthVector,
    other: ColumnVector,
    nulls: np.ndarray,
    flipped: bool,
) -> ColumnVector:
    # Per-run replica of the generic comparison (object loop or numpy
    # ufunc, matching the generic path's dtype handling), expanded back.
    run_values = operand.run_values
    other_run = np.broadcast_to(other.values[:1], run_values.shape)
    if flipped:
        left_values, right_values = other_run, run_values
        left_nulls = np.broadcast_to(other.nulls[:1], run_values.shape)
        right_nulls = operand.run_nulls
    else:
        left_values, right_values = run_values, other_run
        left_nulls = operand.run_nulls
        right_nulls = np.broadcast_to(other.nulls[:1], run_values.shape)
    if operand.dtype.numpy_dtype == np.dtype(object) or (
        other.dtype.numpy_dtype == np.dtype(object)
    ):
        run_nulls = left_nulls | right_nulls
        comparator = _PY_COMPARE[op]
        out = np.zeros(len(run_values), dtype=bool)
        for i in range(len(run_values)):
            if not run_nulls[i]:
                out[i] = comparator(left_values[i], right_values[i])
        return ColumnVector(DataType.BOOLEAN, operand.expand(out), nulls)
    if left_values.dtype != right_values.dtype:
        left_values = left_values.astype(np.float64)
        right_values = right_values.astype(np.float64)
    per_run = _COMPARE[op](left_values, right_values)
    return ColumnVector(DataType.BOOLEAN, operand.expand(per_run), nulls)


class BoundIsNull(BoundExpr):
    def __init__(self, operand: BoundExpr, negated: bool):
        self.operand = operand
        self.negated = negated
        self.dtype = DataType.BOOLEAN

    def children(self) -> list[BoundExpr]:
        return [self.operand]

    def evaluate(self, batch: Batch) -> ColumnVector:
        inner = self.operand.evaluate(batch)
        values = ~inner.nulls if self.negated else inner.nulls.copy()
        return ColumnVector(
            DataType.BOOLEAN, values, np.zeros(len(inner), dtype=bool)
        )

    def __repr__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand!r} {suffix})"


class BoundInList(BoundExpr):
    """``x IN (literal, ...)`` — vectorized membership against constants."""

    def __init__(self, operand: BoundExpr, values: Sequence[Any], negated: bool):
        self.operand = operand
        self.items = list(values)
        self.negated = negated
        self.dtype = DataType.BOOLEAN

    def children(self) -> list[BoundExpr]:
        return [self.operand]

    def evaluate(self, batch: Batch) -> ColumnVector:
        inner = self.operand.evaluate(batch)
        if isinstance(inner, DictionaryVector):
            # Membership once per dictionary entry, gathered through codes.
            allowed = set(self.items)
            dict_mask = np.fromiter(
                (v in allowed for v in inner.dictionary.tolist()),
                dtype=bool,
                count=len(inner.dictionary),
            )
            values = inner.predicate_mask(dict_mask)
            nulls = inner.codes < 0
        elif isinstance(inner, RunLengthVector):
            # Membership once per run, expanded back to rows.
            if inner.dtype.numpy_dtype == np.dtype(object):
                allowed = set(self.items)
                per_run = np.fromiter(
                    (v in allowed for v in inner.run_values),
                    dtype=bool,
                    count=len(inner.run_values),
                )
            else:
                per_run = np.isin(inner.run_values, np.array(self.items))
            values = inner.expand(per_run)
            nulls = inner.expand(inner.run_nulls)
        elif inner.dtype.numpy_dtype == np.dtype(object):
            allowed = set(self.items)
            values = np.fromiter(
                (v in allowed for v in inner.values), dtype=bool, count=len(inner)
            )
            nulls = inner.nulls.copy()
        else:
            values = np.isin(inner.values, np.array(self.items))
            nulls = inner.nulls.copy()
        if self.negated:
            values = ~values
        return ColumnVector(DataType.BOOLEAN, values, nulls)

    def __repr__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"({self.operand!r} {neg}IN {self.items!r})"


class BoundLike(BoundExpr):
    """SQL LIKE with ``%`` and ``_`` wildcards (compiled to a regex once)."""

    def __init__(self, operand: BoundExpr, pattern: str, negated: bool):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self.dtype = DataType.BOOLEAN
        self._regex = re.compile(_like_to_regex(pattern), re.DOTALL)

    def children(self) -> list[BoundExpr]:
        return [self.operand]

    def evaluate(self, batch: Batch) -> ColumnVector:
        inner = self.operand.evaluate(batch)
        match = self._regex.match
        if isinstance(inner, DictionaryVector):
            # One regex match per dictionary entry instead of per row.
            dict_mask = np.fromiter(
                (
                    bool(match(v)) if isinstance(v, str) else False
                    for v in inner.dictionary.tolist()
                ),
                dtype=bool,
                count=len(inner.dictionary),
            )
            values = inner.predicate_mask(dict_mask)
            nulls = inner.codes < 0
        elif isinstance(inner, RunLengthVector):
            per_run = np.fromiter(
                (
                    bool(match(v)) if isinstance(v, str) else False
                    for v in inner.run_values
                ),
                dtype=bool,
                count=len(inner.run_values),
            )
            values = inner.expand(per_run)
            nulls = inner.expand(inner.run_nulls)
        else:
            values = np.fromiter(
                (
                    bool(match(v)) if isinstance(v, str) else False
                    for v in inner.values
                ),
                dtype=bool,
                count=len(inner),
            )
            nulls = inner.nulls.copy()
        if self.negated:
            values = ~values
        return ColumnVector(DataType.BOOLEAN, values, nulls)

    def __repr__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"({self.operand!r} {neg}LIKE {self.pattern!r})"


def _like_to_regex(pattern: str) -> str:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return "".join(out) + r"\Z"


class BoundCase(BoundExpr):
    def __init__(
        self,
        branches: list[tuple[BoundExpr, BoundExpr]],
        default: BoundExpr | None,
        dtype: DataType,
    ):
        self.branches = branches
        self.default = default
        self.dtype = dtype

    def children(self) -> list[BoundExpr]:
        out: list[BoundExpr] = []
        for cond, value in self.branches:
            out.extend((cond, value))
        if self.default is not None:
            out.append(self.default)
        return out

    def evaluate(self, batch: Batch) -> ColumnVector:
        n = batch.num_rows
        values = np.empty(n, dtype=self.dtype.numpy_dtype)
        if self.dtype.numpy_dtype != np.dtype(object):
            values[:] = 0
        nulls = np.ones(n, dtype=bool)
        decided = np.zeros(n, dtype=bool)
        for cond, branch_value in self.branches:
            cond_vec = cond.evaluate(batch)
            hits = cond_vec.values.astype(bool) & ~cond_vec.nulls & ~decided
            if hits.any():
                branch_vec = branch_value.evaluate(batch)
                values[hits] = branch_vec.values[hits]
                nulls[hits] = branch_vec.nulls[hits]
            decided |= hits
        rest = ~decided
        if self.default is not None and rest.any():
            default_vec = self.default.evaluate(batch)
            values[rest] = default_vec.values[rest]
            nulls[rest] = default_vec.nulls[rest]
        return ColumnVector(self.dtype, values, nulls)

    def __repr__(self) -> str:
        return f"Case({len(self.branches)} branches)"


class BoundCast(BoundExpr):
    def __init__(self, operand: BoundExpr, dtype: DataType):
        self.operand = operand
        self.dtype = dtype

    def children(self) -> list[BoundExpr]:
        return [self.operand]

    def evaluate(self, batch: Batch) -> ColumnVector:
        inner = self.operand.evaluate(batch)
        if inner.dtype is self.dtype:
            return inner
        source, target = inner.dtype, self.dtype
        if target is DataType.TEXT:
            out = np.empty(len(inner), dtype=object)
            nulls = inner.nulls.copy()
            for i in range(len(inner)):
                if not nulls[i]:
                    out[i] = str(inner[i])
            return ColumnVector(target, out, nulls)
        if target.is_numeric and source.is_numeric:
            return ColumnVector(
                target,
                inner.values.astype(target.numpy_dtype),
                inner.nulls.copy(),
            )
        if target.is_numeric and source is DataType.TEXT:
            out = np.zeros(len(inner), dtype=target.numpy_dtype)
            nulls = inner.nulls.copy()
            source_values = inner.values
            caster = int if target is DataType.INTEGER else float
            for i in range(len(inner)):
                if not nulls[i]:
                    try:
                        out[i] = caster(source_values[i])
                    except (TypeError, ValueError):
                        raise ExecutionError(
                            f"cannot cast {source_values[i]!r} to {target}"
                        ) from None
            return ColumnVector(target, out, nulls)
        if target is DataType.DATE and source is DataType.TEXT:
            from flock.db.types import date_to_days

            out = np.zeros(len(inner), dtype=np.int64)
            nulls = inner.nulls.copy()
            source_values = inner.values
            for i in range(len(inner)):
                if not nulls[i]:
                    try:
                        out[i] = date_to_days(source_values[i])
                    except (TypeError, ValueError):
                        raise ExecutionError(
                            f"cannot cast {source_values[i]!r} to DATE"
                        ) from None
            return ColumnVector(target, out, nulls)
        if target is DataType.BOOLEAN and source.is_numeric:
            return ColumnVector(
                target, inner.values.astype(bool), inner.nulls.copy()
            )
        if target.is_numeric and source is DataType.BOOLEAN:
            return ColumnVector(
                target,
                inner.values.astype(target.numpy_dtype),
                inner.nulls.copy(),
            )
        raise ExecutionError(f"unsupported cast from {source} to {target}")

    def __repr__(self) -> str:
        return f"Cast({self.operand!r} AS {self.dtype})"


class BoundFunction(BoundExpr):
    """A resolved scalar function call."""

    def __init__(
        self,
        name: str,
        args: list[BoundExpr],
        dtype: DataType,
        impl: Callable[[list[ColumnVector], int], ColumnVector],
    ):
        self.name = name
        self.args = args
        self.dtype = dtype
        self.impl = impl

    def children(self) -> list[BoundExpr]:
        return list(self.args)

    def evaluate(self, batch: Batch) -> ColumnVector:
        arg_vectors = [a.evaluate(batch) for a in self.args]
        return self.impl(arg_vectors, batch.num_rows)

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(repr(a) for a in self.args)})"


def truthy_mask(vector: ColumnVector) -> np.ndarray:
    """Rows where a BOOLEAN vector is definitively TRUE (NULL is not true)."""
    return vector.values.astype(bool) & ~vector.nulls
