"""Versioned, in-memory columnar table storage.

Every write (INSERT/UPDATE/DELETE) produces a new immutable
:class:`TableVersion`, and the full version chain is retained. This matches
the paper's temporal provenance model (§4.2 C1: "an INSERT to a table results
in a new version of the table in the provenance data model") and is what the
SQL provenance module records against.

Statistics (:class:`ColumnStats`, :class:`TableStats`) are computed per
version and feed both the cost-based optimizer and the inference layer's
"model compression exploiting input data statistics" (§4.1).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from flock.db.encoding import (
    BitPackedVector,
    DictionaryVector,
    EncodedVector,
    EncodingSettings,
    encode_vector,
)
from flock.db.index import HashIndex, IndexDef
from flock.db.schema import TableSchema
from flock.db.types import DataType
from flock.db.vector import Batch, ColumnVector
from flock.errors import ConstraintError, ExecutionError


def _pow2_crossed(before: int, after: int) -> bool:
    """True when the row count crossed a power-of-two boundary."""
    floor_before = 1 << (before.bit_length() - 1) if before else 0
    floor_after = 1 << (after.bit_length() - 1) if after else 0
    return floor_before != floor_after


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for one column of one table version."""

    null_count: int
    distinct_count: int
    min_value: Any = None
    max_value: Any = None

    @classmethod
    def from_vector(cls, vector: ColumnVector) -> "ColumnStats":
        # Encoded fast paths: the dictionary / packed payload already *is*
        # the distinct/min/max summary (modulo codes orphaned by deletes,
        # hence the np.unique over used codes, not the dictionary length).
        if isinstance(vector, DictionaryVector):
            codes = vector.codes
            null_count = int((codes < 0).sum())
            used = np.unique(codes[codes >= 0])
            if len(used) == 0:
                return cls(null_count=null_count, distinct_count=0)
            return cls(
                null_count,
                len(used),
                vector.dictionary[used[0]],
                vector.dictionary[used[-1]],
            )
        if isinstance(vector, BitPackedVector):
            null_mask = vector.null_mask
            null_count = int(null_mask.sum())
            present = vector.packed[~null_mask]
            if len(present) == 0:
                return cls(null_count=null_count, distinct_count=0)
            uniq = np.unique(present)
            return cls(
                null_count,
                len(uniq),
                int(uniq[0]) + vector.offset,
                int(uniq[-1]) + vector.offset,
            )
        if isinstance(vector, EncodedVector):
            vector = vector.materialize()
        null_count = int(vector.nulls.sum())
        present = vector.values[~vector.nulls]
        if len(present) == 0:
            return cls(null_count=null_count, distinct_count=0)
        if vector.dtype.numpy_dtype == np.dtype(object):
            try:
                distinct = len(set(present.tolist()))
            except TypeError:
                # Unhashable payloads (MODEL columns hold dict artifacts):
                # treat every present value as distinct.
                distinct = len(present)
            if vector.dtype is DataType.TEXT:
                ordered = sorted(present.tolist())
                return cls(null_count, distinct, ordered[0], ordered[-1])
            return cls(null_count, distinct)
        distinct = len(np.unique(present))
        return cls(
            null_count,
            distinct,
            present.min().item(),
            present.max().item(),
        )


@dataclass(frozen=True)
class TableStats:
    """Row count plus per-column statistics for one table version."""

    row_count: int
    columns: dict[str, ColumnStats]

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())


class TableVersion:
    """An immutable snapshot of a table's contents."""

    __slots__ = (
        "version_id", "columns", "operation", "_stats", "schema", "delta",
        "zone_cache", "zone_base",
    )

    def __init__(
        self,
        version_id: int,
        schema: TableSchema,
        columns: Sequence[ColumnVector],
        operation: str,
    ):
        self.version_id = version_id
        self.schema = schema
        self.columns = tuple(columns)
        self.operation = operation
        self._stats: TableStats | None = None
        # Logical change relative to the base version, set by the build_*
        # methods and consumed by the write-ahead log; None for versions
        # built outside the normal write path (restore, replay seeds).
        self.delta: tuple | None = None
        # Lazily built per-column zone maps (flock.db.index.zones_for) and,
        # for INSERT versions, the base version whose zone prefix can be
        # reused (the first base.row_count rows are the same arrays).
        self.zone_cache: dict | None = None
        self.zone_base: "TableVersion | None" = None

    @property
    def row_count(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def batch(self) -> Batch:
        return Batch(self.schema.column_names, list(self.columns))

    def morsels(self, morsel_rows: int):
        """Zero-copy fixed-size row slices of this snapshot, in row order.

        Because a version is immutable, the slices stay valid for as long
        as any worker holds them — morsel-parallel scans need no latching.
        """
        return self.batch().morsels(morsel_rows)

    def stats(self) -> TableStats:
        """Per-version statistics, computed lazily and cached."""
        if self._stats is None:
            per_column = {
                col.name.lower(): ColumnStats.from_vector(vec)
                for col, vec in zip(self.schema.columns, self.columns)
            }
            self._stats = TableStats(self.row_count, per_column)
        return self._stats


class Table:
    """A named table with a full version history.

    All mutation methods return the new :class:`TableVersion`; the caller
    (the transaction manager) decides when a version becomes the visible
    head, enabling atomic multi-table commits and rollback.
    """

    def __init__(
        self, schema: TableSchema, settings: EncodingSettings | None = None
    ):
        self.schema = schema
        # Shared with the owning catalog so SET flock.encodings takes
        # effect on the next staged version of every table at once.
        self.settings = settings if settings is not None else EncodingSettings()
        self._lock = threading.RLock()
        empty = [ColumnVector.empty(c.dtype) for c in schema.columns]
        self._versions: list[TableVersion] = [
            TableVersion(0, schema, empty, "CREATE")
        ]
        self._head = 0
        # Hash indexes over single columns, keyed by lower-cased index name.
        # A single-column primary key gets an automatic index (auto=True)
        # that lives outside the CREATE/DROP INDEX namespace.
        self._indexes: dict[str, "HashIndex"] = {}
        pk = schema.primary_key_indexes
        if len(pk) == 1:
            column = schema.columns[pk[0]]
            defn = IndexDef(
                name=f"{schema.name.lower()}_pkey",
                table=schema.name.lower(),
                column=column.name,
                auto=True,
            )
            self._indexes[defn.name] = HashIndex(defn, pk[0], column.dtype)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def head_version(self) -> TableVersion:
        with self._lock:
            return self._versions[self._head]

    @property
    def version_count(self) -> int:
        with self._lock:
            return len(self._versions)

    def version(self, version_id: int) -> TableVersion:
        with self._lock:
            for v in self._versions:
                if v.version_id == version_id:
                    return v
        raise ExecutionError(
            f"table {self.name!r} has no version {version_id}"
        )

    def versions(self) -> list[TableVersion]:
        with self._lock:
            return list(self._versions)

    @property
    def row_count(self) -> int:
        return self.head_version.row_count

    def scan(self, version_id: int | None = None) -> Batch:
        """The table contents as one Batch (head or a historical version)."""
        version = (
            self.head_version if version_id is None else self.version(version_id)
        )
        return version.batch()

    def stats(self) -> TableStats:
        return self.head_version.stats()

    # ------------------------------------------------------------------
    # Write side — builds staged versions; `publish` makes one visible.
    # ------------------------------------------------------------------
    def build_insert(
        self, rows: Iterable[Sequence[Any]], base: TableVersion | None = None
    ) -> TableVersion:
        """A staged new version with *rows* appended to *base* (default head)."""
        base = base or self.head_version
        rows = list(rows)
        width = len(self.schema)
        for row in rows:
            if len(row) != width:
                raise ExecutionError(
                    f"INSERT row has {len(row)} values, table {self.name!r} "
                    f"has {width} columns"
                )
        fresh = [
            ColumnVector.from_values(col.dtype, [row[i] for row in rows])
            for i, col in enumerate(self.schema.columns)
        ]
        return self.build_append(fresh, base)

    def build_append(
        self,
        fresh: Sequence[ColumnVector],
        base: TableVersion | None = None,
    ) -> TableVersion:
        """A staged INSERT version appending pre-built column vectors.

        Split out of :meth:`build_insert` so WAL replay — which logs the
        appended vectors, not the source rows — re-enters the same
        constraint checks the original execution ran.
        """
        base = base or self.head_version
        new_columns = []
        for i, col in enumerate(self.schema.columns):
            if not col.nullable and fresh[i].has_nulls():
                raise ConstraintError(
                    f"NULL in NOT NULL column {col.name!r} of {self.name!r}"
                )
            new_columns.append(base.columns[i].concat(fresh[i]))
        self._check_primary_key(new_columns)
        staged = self._staged(new_columns, "INSERT", base)
        staged.delta = ("INSERT", tuple(fresh))
        staged.zone_base = base
        return staged

    def build_delete(
        self, keep_mask: np.ndarray, base: TableVersion | None = None
    ) -> TableVersion:
        """A staged version keeping only rows where *keep_mask* is True."""
        base = base or self.head_version
        new_columns = [c.filter(keep_mask) for c in base.columns]
        staged = self._staged(new_columns, "DELETE", base)
        staged.delta = ("DELETE", keep_mask)
        return staged

    def build_update(
        self,
        row_mask: np.ndarray,
        assignments: dict[int, ColumnVector],
        base: TableVersion | None = None,
    ) -> TableVersion:
        """A staged version with columns replaced where *row_mask* is True.

        ``assignments`` maps column index to a vector of *len(row_mask.sum())*
        replacement values.
        """
        base = base or self.head_version
        new_columns = []
        for i, (col, vec) in enumerate(zip(self.schema.columns, base.columns)):
            if i not in assignments:
                new_columns.append(vec)
                continue
            replacement = assignments[i]
            values = vec.values.copy()
            nulls = vec.nulls.copy()
            values[row_mask] = replacement.values
            nulls[row_mask] = replacement.nulls
            updated = ColumnVector(col.dtype, values, nulls)
            if not col.nullable and updated.has_nulls():
                raise ConstraintError(
                    f"NULL in NOT NULL column {col.name!r} of {self.name!r}"
                )
            new_columns.append(updated)
        self._check_primary_key(new_columns)
        staged = self._staged(new_columns, "UPDATE", base)
        staged.delta = ("UPDATE", row_mask, assignments)
        return staged

    def build_truncate(self, base: TableVersion | None = None) -> TableVersion:
        base = base or self.head_version
        empty = [ColumnVector.empty(c.dtype) for c in self.schema.columns]
        staged = self._staged(empty, "TRUNCATE", base)
        staged.delta = ("TRUNCATE",)
        return staged

    def publish(self, staged: TableVersion) -> None:
        """Make a staged version the visible head (called at commit)."""
        with self._lock:
            self._versions.append(staged)
            self._head = len(self._versions) - 1

    # ------------------------------------------------------------------
    # Hash indexes
    # ------------------------------------------------------------------
    def create_index(self, defn: "IndexDef") -> "HashIndex":
        """Attach a hash index over one column (validated by the catalog)."""
        position = self.schema.index_of(defn.column)
        dtype = self.schema.columns[position].dtype
        with self._lock:
            idx = HashIndex(defn, position, dtype)
            self._indexes[defn.name.lower()] = idx
            return idx

    def drop_index(self, name: str) -> None:
        with self._lock:
            self._indexes.pop(name.lower(), None)

    def index(self, name: str) -> "HashIndex | None":
        with self._lock:
            return self._indexes.get(name.lower())

    def indexes(self) -> list["HashIndex"]:
        with self._lock:
            return list(self._indexes.values())

    def index_on_column(self, column_position: int) -> "HashIndex | None":
        """The first index over *column_position*, if any (for planning)."""
        with self._lock:
            for idx in self._indexes.values():
                if idx.column_position == column_position:
                    return idx
        return None

    def maintain_indexes(
        self, prev_head_id: int, effects: Sequence[TableVersion]
    ) -> None:
        """Advance indexes across a just-published commit when possible.

        *effects* is the ordered chain of staged versions this table saw in
        the committing transaction (not just the final one — intermediate
        versions of a multi-statement transaction carry the per-statement
        deltas). Indexes that cannot advance are left stale; the next
        lookup rebuilds them against the new head.
        """
        for idx in self.indexes():
            idx.advance(prev_head_id, effects)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _staged(
        self,
        columns: Sequence[ColumnVector],
        operation: str,
        base: TableVersion,
    ) -> TableVersion:
        with self._lock:
            next_id = self._versions[-1].version_id + 1
        columns = self._encode_staged(columns, base)
        return TableVersion(next_id, self.schema, columns, operation)

    def _encode_staged(
        self, columns: Sequence[ColumnVector], base: TableVersion
    ) -> list[ColumnVector]:
        """Apply (or strip) column encodings for a staged version.

        Probing a plain column for encodability costs O(n log n), so plain
        columns are only re-probed when the row count crosses a power-of-two
        boundary — amortized O(log n) probes over a table's life. Columns
        that are already encoded (the concat fast paths keep appends
        encoded) or whose base was encoded (UPDATE decodes to mutate) are
        always re-encoded. With encodings off, every new version is forced
        back to plain vectors.
        """
        if not self.settings.enabled:
            return [
                c.materialize() if isinstance(c, EncodedVector) else c
                for c in columns
            ]
        base_columns = base.columns if base is not None else ()
        out: list[ColumnVector] = []
        for i, column in enumerate(columns):
            if isinstance(column, EncodedVector):
                out.append(column)
                continue
            base_vec = base_columns[i] if i < len(base_columns) else None
            if isinstance(base_vec, EncodedVector) or _pow2_crossed(
                0 if base_vec is None else len(base_vec), len(column)
            ):
                out.append(encode_vector(column))
            else:
                out.append(column)
        return out

    def _check_primary_key(self, columns: Sequence[ColumnVector]) -> None:
        pk = self.schema.primary_key_indexes
        if not pk:
            return
        key_lists = [columns[i].to_pylist() for i in pk]
        seen: set[tuple] = set()
        for key in zip(*key_lists):
            if None in key:
                raise ConstraintError(
                    f"NULL in primary key of table {self.name!r}"
                )
            if key in seen:
                raise ConstraintError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
            seen.add(key)
