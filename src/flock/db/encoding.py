"""Compressed column encodings with late-decode execution.

Three encodings live behind the :class:`~flock.db.vector.ColumnVector`
interface, so every operator keeps working unchanged while storage shrinks
and the hot paths skip decoding entirely:

- :class:`DictionaryVector` — low-cardinality TEXT columns as ``int32``
  codes into a sorted dictionary. Equality/IN/LIKE/range predicates are
  evaluated once per *dictionary entry* and gathered through the codes;
  GROUP BY groups by code (see :mod:`flock.db.exec.grouping`); PREDICT
  featurization scores one row per distinct code and gathers.
- :class:`RunLengthVector` — runs of repeated values (clustered or mostly
  constant columns). Predicates evaluate per *run* and expand.
- :class:`BitPackedVector` — frame-of-reference integers: ``value - min``
  stored in the narrowest unsigned width that fits the range (INTEGER and
  DATE columns shrink 2–8x). ``take``/``filter``/``slice``/``concat`` all
  operate on the packed array directly.

Encoded execution is **bit-identical** to plain execution by construction:
decoding an encoded vector reproduces the exact physical arrays a plain
vector would hold (NULL slots hold the same placeholder), every fast path
computes the same per-row result the generic path would, and group /
sort orderings map through strictly monotone code spaces. The
encoded-vs-plain twin fuzzer (tests/test_db_fuzz.py) holds this contract
under churn; ``FLOCK_ENCODINGS=0`` / ``SET flock.encodings = 0`` is the
kill switch that forces every new table version back to plain vectors.

Encoding selection happens once per staged :class:`TableVersion` (see
:meth:`flock.db.storage.Table._staged`) from the same per-column facts
:class:`~flock.db.storage.ColumnStats` summarizes; appends re-use an
existing dictionary when the fresh values are covered by it, so steady
inserts never re-encode the whole column.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Sequence

import numpy as np

from flock.db.types import DataType, python_value
from flock.db.vector import ColumnVector, _zero_of
from flock.errors import ExecutionError

#: Columns shorter than this stay plain: the per-vector bookkeeping would
#: cost more than the bytes saved, and tiny tables are not scan-bound.
MIN_ENCODE_ROWS = 32

#: Dictionary encoding applies while the cardinality stays below both an
#: absolute cap and half the row count (codes must actually deduplicate).
DICT_MAX_CARDINALITY = 4096

#: Run-length encoding applies when the average run covers >= 4 rows.
RLE_MAX_RUN_FRACTION = 4


def _env_enabled() -> bool:
    return os.environ.get("FLOCK_ENCODINGS", "").strip() != "0"


class EncodingSettings:
    """The mutable encodings switch shared by a catalog and its tables.

    One instance per :class:`~flock.db.catalog.Catalog`; the owning
    :class:`~flock.db.engine.Database` flips ``enabled`` on
    ``SET flock.encodings`` so every table sees the change on its next
    staged version.
    """

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool | None = None):
        self.enabled = _env_enabled() if enabled is None else bool(enabled)


#: Fallback settings for tables constructed outside a catalog (tests).
DEFAULT_SETTINGS = EncodingSettings()


# ----------------------------------------------------------------------
# Encoded vector classes
# ----------------------------------------------------------------------
class EncodedVector(ColumnVector):
    """Base of all encoded vectors.

    Shadows the base class's ``values``/``nulls`` slots with decoding
    properties, so any consumer that was not taught about the encoding
    transparently sees the plain physical arrays (decoded fresh per
    access — nothing is cached, which is what keeps resident memory at
    the encoded size). Hot paths type-check for the concrete classes and
    work on the encoded payload instead.
    """

    __slots__ = ()
    encoding = "?"

    # Subclasses implement these over their payload.
    def _decode_values(self) -> np.ndarray:
        raise NotImplementedError

    def _decode_nulls(self) -> np.ndarray:
        raise NotImplementedError

    @property
    def values(self) -> np.ndarray:  # type: ignore[override]
        return self._decode_values()

    @property
    def nulls(self) -> np.ndarray:  # type: ignore[override]
        return self._decode_nulls()

    def materialize(self) -> ColumnVector:
        """The equivalent plain vector (one decode, no caching)."""
        return ColumnVector(self.dtype, self._decode_values(), self._decode_nulls())

    def to_pylist(self) -> list[Any]:
        return self.materialize().to_pylist()

    def storage_nbytes(self) -> int:
        """Resident bytes of the encoded payload."""
        raise NotImplementedError


class DictionaryVector(EncodedVector):
    """TEXT column as int32 codes into a sorted dictionary.

    ``codes[i]`` is -1 for NULL, else an index into ``dictionary`` (an
    object array sorted ascending, so code order == value order and sort
    keys come straight from the codes). Slices/filters/takes share the
    dictionary array — only the codes move.
    """

    __slots__ = ("codes", "dictionary")
    encoding = "dict"

    def __init__(self, dtype: DataType, codes: np.ndarray, dictionary: np.ndarray):
        self.dtype = dtype
        self.codes = codes
        self.dictionary = dictionary

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, index: int) -> Any:
        code = int(self.codes[index])
        if code < 0:
            return None
        return python_value(self.dictionary[code], self.dtype)

    def has_nulls(self) -> bool:
        return bool((self.codes < 0).any())

    def _decode_values(self) -> np.ndarray:
        out = np.empty(len(self.codes), dtype=object)
        present = self.codes >= 0
        out[present] = self.dictionary[self.codes[present]]
        return out

    def _decode_nulls(self) -> np.ndarray:
        return self.codes < 0

    def to_pylist(self) -> list[Any]:
        dictionary = self.dictionary
        dtype = self.dtype
        return [
            None if c < 0 else python_value(dictionary[c], dtype)
            for c in self.codes.tolist()
        ]

    def take(self, indices: np.ndarray) -> "DictionaryVector":
        return DictionaryVector(self.dtype, self.codes[indices], self.dictionary)

    def filter(self, mask: np.ndarray) -> "DictionaryVector":
        return DictionaryVector(self.dtype, self.codes[mask], self.dictionary)

    def slice(self, start: int, stop: int) -> "DictionaryVector":
        return DictionaryVector(self.dtype, self.codes[start:stop], self.dictionary)

    def concat(self, other: ColumnVector) -> ColumnVector:
        if other.dtype is not self.dtype:
            raise ExecutionError(
                f"cannot concat {self.dtype} column with {other.dtype} column"
            )
        if isinstance(other, DictionaryVector) and (
            other.dictionary is self.dictionary
            or (
                len(other.dictionary) == len(self.dictionary)
                and all(
                    a == b
                    for a, b in zip(
                        other.dictionary.tolist(), self.dictionary.tolist()
                    )
                )
            )
        ):
            return DictionaryVector(
                self.dtype,
                np.concatenate([self.codes, other.codes]),
                self.dictionary,
            )
        if not isinstance(other, EncodedVector):
            fresh_codes = _codes_against(self.dictionary, other)
            if fresh_codes is not None:
                return DictionaryVector(
                    self.dtype,
                    np.concatenate([self.codes, fresh_codes]),
                    self.dictionary,
                )
        return self.materialize().concat(
            other.materialize() if isinstance(other, EncodedVector) else other
        )

    def predicate_mask(self, dict_mask: np.ndarray) -> np.ndarray:
        """Expand a per-dictionary-entry boolean mask through the codes.

        NULL rows come out False (every consumer masks them via ``nulls``
        anyway, matching the generic object comparison path).
        """
        codes = self.codes
        values = dict_mask[np.clip(codes, 0, None)]
        values = values & (codes >= 0)
        return values

    def storage_nbytes(self) -> int:
        return self.codes.nbytes + _object_payload_bytes(self.dictionary)

    def __reduce__(self):
        return (DictionaryVector, (self.dtype, self.codes, self.dictionary))


class RunLengthVector(EncodedVector):
    """Runs of repeated values: one (value, null, length) triple per run.

    NULL runs store the dtype's placeholder value, so decoding reproduces
    the exact arrays a freshly built plain vector would hold.
    """

    __slots__ = ("run_values", "run_nulls", "run_lengths", "length")
    encoding = "rle"

    def __init__(
        self,
        dtype: DataType,
        run_values: np.ndarray,
        run_nulls: np.ndarray,
        run_lengths: np.ndarray,
    ):
        self.dtype = dtype
        self.run_values = run_values
        self.run_nulls = run_nulls
        self.run_lengths = run_lengths
        self.length = int(run_lengths.sum())

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, index: int) -> Any:
        run = int(np.searchsorted(self._starts(), index, side="right")) - 1
        if self.run_nulls[run]:
            return None
        return python_value(self.run_values[run], self.dtype)

    def _starts(self) -> np.ndarray:
        stops = np.cumsum(self.run_lengths)
        return stops - self.run_lengths

    def has_nulls(self) -> bool:
        return bool(self.run_nulls.any())

    def _decode_values(self) -> np.ndarray:
        return np.repeat(self.run_values, self.run_lengths)

    def _decode_nulls(self) -> np.ndarray:
        return np.repeat(self.run_nulls, self.run_lengths)

    def expand(self, per_run: np.ndarray) -> np.ndarray:
        """Expand a per-run result array back to row granularity."""
        return np.repeat(per_run, self.run_lengths)

    def take(self, indices: np.ndarray) -> ColumnVector:
        return self.materialize().take(indices)

    def filter(self, mask: np.ndarray) -> ColumnVector:
        return self.materialize().filter(mask)

    def slice(self, start: int, stop: int) -> ColumnVector:
        start = max(0, start)
        stop = min(self.length, stop)
        if stop <= start:
            return ColumnVector.empty(self.dtype)
        starts = self._starts()
        first = int(np.searchsorted(starts, start, side="right")) - 1
        last = int(np.searchsorted(starts, stop, side="left"))  # exclusive
        values = self.run_values[first:last].copy()
        nulls = self.run_nulls[first:last].copy()
        lengths = self.run_lengths[first:last].copy()
        lengths[0] -= start - starts[first]
        overshoot = int(starts[last - 1] + self.run_lengths[last - 1]) - stop
        lengths[-1] -= overshoot
        return RunLengthVector(self.dtype, values, nulls, lengths)

    def concat(self, other: ColumnVector) -> ColumnVector:
        if other.dtype is not self.dtype:
            raise ExecutionError(
                f"cannot concat {self.dtype} column with {other.dtype} column"
            )
        return self.materialize().concat(
            other.materialize() if isinstance(other, EncodedVector) else other
        )

    def storage_nbytes(self) -> int:
        if self.run_values.dtype == np.dtype(object):
            payload = _object_payload_bytes(self.run_values)
        else:
            payload = self.run_values.nbytes
        return payload + self.run_nulls.nbytes + self.run_lengths.nbytes

    def __reduce__(self):
        return (
            RunLengthVector,
            (self.dtype, self.run_values, self.run_nulls, self.run_lengths),
        )


class BitPackedVector(EncodedVector):
    """Frame-of-reference integers: ``packed + offset`` in a narrow width.

    ``packed`` is uint8/uint16/uint32 holding ``value - offset`` (0 at
    NULL slots); decoding restores exact int64 values. All positional
    transforms stay packed.
    """

    __slots__ = ("packed", "offset", "null_mask")
    encoding = "bp"

    def __init__(
        self,
        dtype: DataType,
        packed: np.ndarray,
        offset: int,
        null_mask: np.ndarray,
    ):
        self.dtype = dtype
        self.packed = packed
        self.offset = offset
        self.null_mask = null_mask

    def __len__(self) -> int:
        return len(self.packed)

    def __getitem__(self, index: int) -> Any:
        if self.null_mask[index]:
            return None
        return python_value(
            np.int64(int(self.packed[index]) + self.offset), self.dtype
        )

    def has_nulls(self) -> bool:
        return bool(self.null_mask.any())

    def _decode_values(self) -> np.ndarray:
        out = self.packed.astype(np.int64) + self.offset
        if self.null_mask.any():
            # Plain storage vectors keep 0 under NULL slots; reproduce it
            # so decode is byte-for-byte the array a plain table would hold.
            out[self.null_mask] = 0
        return out

    def _decode_nulls(self) -> np.ndarray:
        return self.null_mask.copy()

    def take(self, indices: np.ndarray) -> "BitPackedVector":
        return BitPackedVector(
            self.dtype, self.packed[indices], self.offset, self.null_mask[indices]
        )

    def filter(self, mask: np.ndarray) -> "BitPackedVector":
        return BitPackedVector(
            self.dtype, self.packed[mask], self.offset, self.null_mask[mask]
        )

    def slice(self, start: int, stop: int) -> "BitPackedVector":
        return BitPackedVector(
            self.dtype,
            self.packed[start:stop],
            self.offset,
            self.null_mask[start:stop],
        )

    def concat(self, other: ColumnVector) -> ColumnVector:
        if other.dtype is not self.dtype:
            raise ExecutionError(
                f"cannot concat {self.dtype} column with {other.dtype} column"
            )
        if (
            isinstance(other, BitPackedVector)
            and other.offset == self.offset
            and other.packed.dtype == self.packed.dtype
        ):
            return BitPackedVector(
                self.dtype,
                np.concatenate([self.packed, other.packed]),
                self.offset,
                np.concatenate([self.null_mask, other.null_mask]),
            )
        if not isinstance(other, EncodedVector):
            packed = _pack_against(self.offset, self.packed.dtype, other)
            if packed is not None:
                return BitPackedVector(
                    self.dtype,
                    np.concatenate([self.packed, packed]),
                    self.offset,
                    np.concatenate(
                        [self.null_mask, np.asarray(other.nulls, dtype=bool)]
                    ),
                )
        return self.materialize().concat(
            other.materialize() if isinstance(other, EncodedVector) else other
        )

    def storage_nbytes(self) -> int:
        return self.packed.nbytes + self.null_mask.nbytes

    def __reduce__(self):
        return (
            BitPackedVector,
            (self.dtype, self.packed, self.offset, self.null_mask),
        )


# ----------------------------------------------------------------------
# Encoders + selection
# ----------------------------------------------------------------------
def encode_dictionary(vector: ColumnVector) -> DictionaryVector | None:
    """Dictionary-encode a TEXT vector, or None when not worthwhile."""
    values = vector.values
    nulls = vector.nulls
    present = values[~nulls]
    if len(present) == 0:
        return None
    try:
        dictionary = np.unique(present)
    except TypeError:  # unorderable payloads — leave plain
        return None
    k = len(dictionary)
    if k > DICT_MAX_CARDINALITY or k > len(vector) // 2:
        return None
    index = {v: i for i, v in enumerate(dictionary.tolist())}
    codes = np.full(len(vector), -1, dtype=np.int32)
    present_pos = np.nonzero(~nulls)[0]
    codes[present_pos] = np.fromiter(
        (index[v] for v in present.tolist()),
        dtype=np.int32,
        count=len(present_pos),
    )
    return DictionaryVector(vector.dtype, codes, dictionary)


def _codes_against(dictionary: np.ndarray, vector: ColumnVector) -> np.ndarray | None:
    """Codes of *vector* against an existing dictionary, or None if any
    present value is missing from it (caller re-encodes from scratch)."""
    index = {v: i for i, v in enumerate(dictionary.tolist())}
    values = vector.values
    nulls = vector.nulls
    codes = np.full(len(vector), -1, dtype=np.int32)
    for i, value in enumerate(values.tolist()):
        if nulls[i]:
            continue
        code = index.get(value)
        if code is None:
            return None
        codes[i] = code
    return codes


def _pack_against(
    offset: int, packed_dtype: np.dtype, vector: ColumnVector
) -> np.ndarray | None:
    """Pack a plain integer vector into an existing frame, or None when any
    present value falls outside it (caller re-encodes from scratch)."""
    values = vector.values
    nulls = vector.nulls
    present = values[~nulls]
    if len(present):
        cap = int(np.iinfo(packed_dtype).max)
        if int(present.min()) < offset or int(present.max()) - offset > cap:
            return None
    return (np.where(nulls, offset, values) - offset).astype(packed_dtype)


def encode_rle(vector: ColumnVector) -> RunLengthVector | None:
    """Run-length encode a vector, or None when runs are too short."""
    n = len(vector)
    if n == 0:
        return None
    values = vector.values
    nulls = vector.nulls
    change = np.empty(n, dtype=bool)
    change[0] = True
    if n > 1:
        null_flip = nulls[1:] != nulls[:-1]
        both_present = ~(nulls[1:] | nulls[:-1])
        value_change = np.asarray(values[1:] != values[:-1], dtype=bool)
        change[1:] = null_flip | (both_present & value_change)
    starts = np.nonzero(change)[0]
    if len(starts) > n // RLE_MAX_RUN_FRACTION:
        return None
    stops = np.concatenate([starts[1:], [n]])
    lengths = (stops - starts).astype(np.int64)
    run_nulls = nulls[starts].copy()
    run_values = values[starts].copy()
    if run_nulls.any():
        run_values[run_nulls] = _zero_of(vector.dtype)
    return RunLengthVector(vector.dtype, run_values, run_nulls, lengths)


_PACK_WIDTHS = (
    (np.uint8, (1 << 8) - 1),
    (np.uint16, (1 << 16) - 1),
    (np.uint32, (1 << 32) - 1),
)


def encode_bitpacked(vector: ColumnVector) -> BitPackedVector | None:
    """Frame-of-reference pack an INTEGER/DATE vector, or None."""
    values = vector.values
    nulls = vector.nulls
    present = values[~nulls]
    if len(present) == 0:
        return None
    lo = int(present.min())
    hi = int(present.max())
    span = hi - lo
    for width, cap in _PACK_WIDTHS:
        if span <= cap:
            shifted = np.where(nulls, lo, values) - lo
            return BitPackedVector(
                vector.dtype,
                shifted.astype(width),
                lo,
                np.asarray(nulls, dtype=bool).copy(),
            )
    return None


def encode_vector(vector: ColumnVector) -> ColumnVector:
    """The best encoding of *vector* per the selection rules, else itself.

    Selection mirrors what :class:`~flock.db.storage.ColumnStats` measures:
    TEXT goes dictionary while cardinality stays low; INTEGER/DATE prefer
    runs, then frame-of-reference packing; FLOAT/BOOLEAN only ever pay for
    run-length (packing floats would change bit patterns).
    """
    if isinstance(vector, EncodedVector):
        return vector
    if len(vector) < MIN_ENCODE_ROWS:
        return vector
    dtype = vector.dtype
    if dtype is DataType.TEXT:
        encoded = encode_dictionary(vector)
        return vector if encoded is None else encoded
    if dtype in (DataType.INTEGER, DataType.DATE):
        encoded = encode_rle(vector) or encode_bitpacked(vector)
        return vector if encoded is None else encoded
    if dtype in (DataType.FLOAT, DataType.BOOLEAN):
        encoded = encode_rle(vector)
        return vector if encoded is None else encoded
    return vector


def encode_columns(
    columns: Sequence[ColumnVector], enabled: bool
) -> list[ColumnVector]:
    """Per-column encoding for a staged table version.

    With encodings disabled, already-encoded inputs (a dictionary append
    over a pre-toggle base, say) are decoded so the kill switch really
    yields plain storage for every new version.
    """
    if enabled:
        return [encode_vector(c) for c in columns]
    return [
        c.materialize() if isinstance(c, EncodedVector) else c for c in columns
    ]


# ----------------------------------------------------------------------
# Concatenation + memory accounting helpers
# ----------------------------------------------------------------------
def concat_encoded(chunks: Sequence[ColumnVector]) -> ColumnVector | None:
    """One-shot concat of same-encoding chunks, or None for the plain path.

    The parallel merge and scatter-gather paths concatenate many morsel
    outputs; when those are slices of one dictionary/bit-packed column the
    merge moves codes, not decoded values.
    """
    first = chunks[0]
    if isinstance(first, DictionaryVector):
        dictionary = first.dictionary
        for c in chunks[1:]:
            if not isinstance(c, DictionaryVector) or c.dictionary is not dictionary:
                return None
        return DictionaryVector(
            first.dtype,
            np.concatenate([c.codes for c in chunks]),
            dictionary,
        )
    if isinstance(first, BitPackedVector):
        for c in chunks[1:]:
            if (
                not isinstance(c, BitPackedVector)
                or c.offset != first.offset
                or c.packed.dtype != first.packed.dtype
            ):
                return None
        return BitPackedVector(
            first.dtype,
            np.concatenate([c.packed for c in chunks]),
            first.offset,
            np.concatenate([c.null_mask for c in chunks]),
        )
    return None


def _object_payload_bytes(array: np.ndarray) -> int:
    """Pointer + (id-deduplicated) payload bytes of an object array."""
    total = 8 * len(array)
    seen: set[int] = set()
    for value in array.tolist():
        if value is None:
            continue
        key = id(value)
        if key in seen:
            continue
        seen.add(key)
        total += sys.getsizeof(value)
    return total


def vector_nbytes(vector: ColumnVector) -> int:
    """Resident bytes of one vector (encoded payload or plain arrays)."""
    if isinstance(vector, EncodedVector):
        return vector.storage_nbytes()
    if vector.values.dtype == np.dtype(object):
        return _object_payload_bytes(vector.values) + vector.nulls.nbytes
    return vector.values.nbytes + vector.nulls.nbytes


def batch_nbytes(batch) -> int:
    """Estimated resident bytes of a batch (drives the spill decision)."""
    return sum(vector_nbytes(c) for c in batch.columns)


def encoding_of(vector: ColumnVector) -> str | None:
    """Short encoding tag for EXPLAIN annotations (None when plain)."""
    return vector.encoding if isinstance(vector, EncodedVector) else None
