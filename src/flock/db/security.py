"""Access control: users, roles and privileges.

Models deployed in the DBMS are governed exactly like tables ("Access to a
deployed model must be controlled, similar to how access to data or a view is
controlled in a DBMS", §2): model objects live in the ``model:`` namespace
and scoring requires the PREDICT privilege.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from flock.errors import SecurityError

PRIVILEGES = frozenset(
    {"SELECT", "INSERT", "UPDATE", "DELETE", "PREDICT", "ALL"}
)

ADMIN_USER = "admin"


def model_object(model_name: str) -> str:
    """The governed object name for a deployed model."""
    return f"model:{model_name.lower()}"


@dataclass
class Principal:
    name: str
    is_role: bool = False
    roles: set[str] = field(default_factory=set)
    # object name (lowercase) → set of privileges
    grants: dict[str, set[str]] = field(default_factory=dict)


class SecurityManager:
    """Grants, revokes and checks privileges for users and roles."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._principals: dict[str, Principal] = {
            ADMIN_USER: Principal(ADMIN_USER)
        }

    # -- principals -------------------------------------------------------
    def create_user(self, name: str) -> None:
        self._create_principal(name, is_role=False)

    def create_role(self, name: str) -> None:
        self._create_principal(name, is_role=True)

    def _create_principal(self, name: str, is_role: bool) -> None:
        key = name.lower()
        with self._lock:
            if key in self._principals:
                raise SecurityError(f"principal {name!r} already exists")
            self._principals[key] = Principal(key, is_role=is_role)

    def has_principal(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._principals

    def principal(self, name: str) -> Principal:
        key = name.lower()
        with self._lock:
            try:
                return self._principals[key]
            except KeyError:
                raise SecurityError(f"unknown principal {name!r}") from None

    # -- grants -----------------------------------------------------------
    def grant(self, privilege: str, object_name: str | None, principal: str) -> None:
        """GRANT priv ON object TO principal, or GRANT role TO principal."""
        target = self.principal(principal)
        with self._lock:
            if object_name is None:
                role = self.principal(privilege)
                if not role.is_role:
                    raise SecurityError(
                        f"{privilege!r} is not a role; role grants need no ON clause"
                    )
                target.roles.add(role.name)
                return
            privilege = privilege.upper()
            if privilege not in PRIVILEGES:
                raise SecurityError(f"unknown privilege {privilege!r}")
            target.grants.setdefault(object_name.lower(), set()).add(privilege)

    def revoke(self, privilege: str, object_name: str | None, principal: str) -> None:
        target = self.principal(principal)
        with self._lock:
            if object_name is None:
                target.roles.discard(privilege.lower())
                return
            grants = target.grants.get(object_name.lower(), set())
            grants.discard(privilege.upper())

    # -- checks -----------------------------------------------------------
    def check(self, user: str, privilege: str, object_name: str) -> None:
        """Raise :class:`SecurityError` unless *user* may act on the object."""
        if not self.is_allowed(user, privilege, object_name):
            raise SecurityError(
                f"user {user!r} lacks {privilege} on {object_name!r}"
            )

    def is_allowed(self, user: str, privilege: str, object_name: str) -> bool:
        key = user.lower()
        if key == ADMIN_USER:
            return True
        with self._lock:
            if key not in self._principals:
                return False
            privilege = privilege.upper()
            object_key = object_name.lower()
            seen: set[str] = set()
            queue = [key]
            while queue:
                name = queue.pop()
                if name in seen:
                    continue
                seen.add(name)
                principal = self._principals.get(name)
                if principal is None:
                    continue
                grants = principal.grants.get(object_key, set())
                if privilege in grants or "ALL" in grants:
                    return True
                queue.extend(principal.roles)
        return False

    def grants_for(self, principal: str) -> dict[str, set[str]]:
        """A copy of the direct grants of *principal* (for auditing)."""
        target = self.principal(principal)
        with self._lock:
            return {k: set(v) for k, v in target.grants.items()}
