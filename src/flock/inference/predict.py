"""Executing PredictNode operators.

:class:`DefaultScorer` is the bridge between the relational executor and the
:mod:`flock.mlgraph` runtime. It honours the physical strategy chosen by the
cross-optimizer ('batch' vectorized vs 'row_udf' tuple-at-a-time) and the
prepared artifact (pruned inputs, compressed graph) attached to the node.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from flock.db.encoding import DictionaryVector
from flock.db.plan import PredictNode
from flock.db.types import DataType
from flock.db.vector import Batch, ColumnVector
from flock.errors import InferenceError
from flock.mlgraph.graph import Graph
from flock.mlgraph.runtime import GraphRuntime
from flock.observability import get_tracer, metrics


@dataclass
class PreparedModel:
    """The scoring artifact the cross-optimizer attaches to a PredictNode.

    ``active_inputs`` are graph input names fed from DB columns, in the same
    order as the node's ``input_indexes``; ``constant_fill`` maps pruned
    graph inputs to the constant used in their place (their value provably
    cannot affect the outputs).
    """

    graph: Graph
    active_inputs: list[str]
    constant_fill: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)


class DefaultScorer:
    """Scores PredictNodes via the mlgraph runtime.

    When ``monitor_hub`` is set (see :mod:`flock.monitoring`), every scoring
    call reports its input feeds and output scores there — model monitoring
    happens inside the engine, invisible to application queries.
    """

    def __init__(self, monitor_hub=None) -> None:
        self.runtime = GraphRuntime()
        self.monitor_hub = monitor_hub
        # Concurrent morsels (and concurrent serving statements) score
        # through one shared scorer; monitor hubs keep windowed state that
        # is not guaranteed re-entrant, so reports are serialized.
        self._monitor_lock = threading.Lock()

    def score(
        self, node: PredictNode, inputs: Batch, store
    ) -> list[ColumnVector]:
        with get_tracer().span(
            "predict.score",
            {
                "model": node.model_name,
                "strategy": node.strategy or "batch",
            },
        ) as span:
            start_ns = time.perf_counter_ns()
            result = self._score(node, inputs, store)
            elapsed_ms = (time.perf_counter_ns() - start_ns) / 1e6
            span.set_attribute("rows", inputs.num_rows)
        registry = metrics()
        registry.counter("predict.batches").inc()
        registry.histogram("predict.batch_rows").observe(inputs.num_rows)
        registry.histogram("predict.score_ms").observe(elapsed_ms)
        return result

    def _score(
        self, node: PredictNode, inputs: Batch, store
    ) -> list[ColumnVector]:
        distinct = self._score_distinct_codes(node, inputs, store)
        if distinct is not None:
            return distinct
        prepared = node.compiled
        if not isinstance(prepared, PreparedModel):
            graph = store.scoring_artifact(node.model_name)
            prepared = PreparedModel(graph, list(graph.input_names))
        graph = prepared.graph

        if len(prepared.active_inputs) != inputs.num_columns:
            raise InferenceError(
                f"model {node.model_name!r} prepared for "
                f"{len(prepared.active_inputs)} input columns, got "
                f"{inputs.num_columns}"
            )

        n_rows = inputs.num_rows
        feeds: dict[str, np.ndarray] = {}
        dtype_by_input = {s.name: s.dtype for s in graph.inputs}
        for input_name, column in zip(prepared.active_inputs, inputs.columns):
            feeds[input_name] = _column_to_feed(
                column, dtype_by_input[input_name], node.model_name
            )
        for input_name, value in prepared.constant_fill.items():
            if dtype_by_input[input_name] == "text":
                feeds[input_name] = np.full(n_rows, str(value), dtype=object)
            else:
                feeds[input_name] = np.full(n_rows, float(value))

        mode = "per_row" if node.strategy == "row_udf" else "batch"
        outputs = self.runtime.run(graph, feeds, mode=mode)

        tensor_by_field = dict(graph.output_field_names())
        if self.monitor_hub is not None:
            score_tensor = tensor_by_field.get(
                "probability", tensor_by_field.get("score")
            )
            try:
                with self._monitor_lock:
                    self.monitor_hub.on_score(
                        node.model_name, feeds, outputs, score_tensor
                    )
            except Exception:
                # Observability must never break scoring: a broken monitor
                # loses telemetry, not queries.
                pass
        result: list[ColumnVector] = []
        for plan_field in node.output_fields:
            field_name = _strip_prefix(plan_field.name)
            tensor = tensor_by_field.get(field_name, field_name)
            if tensor not in outputs:
                raise InferenceError(
                    f"model {node.model_name!r} produced no output "
                    f"{field_name!r}"
                )
            result.append(_feed_to_column(outputs[tensor], plan_field.dtype))
        return result

    def _score_distinct_codes(
        self, node: PredictNode, inputs: Batch, store
    ) -> list[ColumnVector] | None:
        """Late-decode PREDICT: score once per distinct code combination.

        When every input column is dictionary-encoded, the model sees only
        as many distinct feature rows as there are code combinations, so
        scoring the distinct combinations and gathering by row is a pure
        row permutation/selection of the full batch — bit-identical,
        because every mlgraph op is elementwise or row-wise over the batch
        axis. Skipped when a monitor hub is attached (it must observe the
        actual per-row feeds) and in per-row UDF mode (whose cost model is
        the point of the comparison).
        """
        if (
            node.strategy == "row_udf"
            or self.monitor_hub is not None
            or inputs.num_columns == 0
            or inputs.num_rows < 2
            or not all(
                isinstance(c, DictionaryVector) for c in inputs.columns
            )
        ):
            return None
        code_matrix = np.stack([c.codes for c in inputs.columns], axis=1)
        uniq, inverse = np.unique(code_matrix, axis=0, return_inverse=True)
        if len(uniq) >= inputs.num_rows:
            return None
        distinct_inputs = Batch(
            inputs.names,
            [
                DictionaryVector(
                    c.dtype,
                    np.ascontiguousarray(uniq[:, j], dtype=np.int32),
                    c.dictionary,
                )
                for j, c in enumerate(inputs.columns)
            ],
        )
        # Recursion terminates: the distinct batch has no duplicate rows,
        # so its own unique pass falls through to the real scoring body.
        distinct_outputs = self._score(node, distinct_inputs, store)
        registry = metrics()
        registry.counter("predict.code_batches").inc()
        registry.counter("predict.code_rows_saved").inc(
            inputs.num_rows - len(uniq)
        )
        gather = inverse.reshape(-1).astype(np.int64)
        return [column.take(gather) for column in distinct_outputs]


def _strip_prefix(field_name: str) -> str:
    """``__predict3_probability`` → ``probability``."""
    match = re.match(r"__predict\d+_(.+)", field_name)
    return match.group(1) if match else field_name


def _column_to_feed(
    column: ColumnVector, graph_dtype: str, model_name: str
) -> np.ndarray:
    if graph_dtype in ("float", "int"):
        if column.dtype is DataType.TEXT:
            raise InferenceError(
                f"model {model_name!r} expects a numeric input, got TEXT"
            )
        # Hoist: on encoded vectors each property access decodes the column.
        nulls = column.nulls
        values = column.values.astype(np.float64)
        if nulls.any():
            values = values.copy()
            values[nulls] = np.nan  # imputers downstream handle NaN
        return values
    if isinstance(column, DictionaryVector):
        # Gather the feed straight from the dictionary; object slots start
        # as None, which is exactly the NULL representation feeds use.
        codes = column.codes
        out = np.empty(len(codes), dtype=object)
        present = codes >= 0
        out[present] = column.dictionary[codes[present]]
        return out
    values = column.values
    nulls = column.nulls
    out = np.empty(len(column), dtype=object)
    for i in range(len(column)):
        out[i] = None if nulls[i] else values[i]
    return out


def _feed_to_column(values: np.ndarray, dtype: DataType) -> ColumnVector:
    values = np.asarray(values)
    if values.ndim != 1:
        raise InferenceError(
            f"model output must be one column per output field, got shape "
            f"{values.shape}"
        )
    if dtype is DataType.FLOAT:
        floats = values.astype(np.float64)
        nulls = np.isnan(floats)
        safe = np.where(nulls, 0.0, floats)
        return ColumnVector(dtype, safe, nulls)
    if dtype is DataType.INTEGER:
        return ColumnVector.from_numpy(dtype, values.astype(np.int64))
    if dtype is DataType.TEXT:
        out = np.empty(len(values), dtype=object)
        nulls = np.zeros(len(values), dtype=bool)
        for i, v in enumerate(values.tolist()):
            if v is None:
                nulls[i] = True
            else:
                out[i] = str(v)
        return ColumnVector(dtype, out, nulls)
    if dtype is DataType.BOOLEAN:
        return ColumnVector.from_numpy(dtype, values.astype(bool))
    raise InferenceError(f"unsupported prediction output type {dtype}")
