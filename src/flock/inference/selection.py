"""Physical operator selection for inference (§4.1).

Chooses how a PredictNode executes, "based on statistics, available runtime
and hardware": vectorized batch scoring amortizes dispatch over the whole
column but pays a fixed vectorization setup cost; per-row UDF scoring has no
setup but pays Python dispatch per tuple. The cost model crosses over at a
small row count, mirroring the batch-vs-tuple trade-off the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from flock.mlgraph.analysis import graph_size
from flock.mlgraph.graph import Graph

# Fitted constants: relative cost units per unit of work.
BATCH_SETUP_COST = 50.0  # per-query vectorization overhead
BATCH_PER_ROW_COST = 0.02  # amortized vectorized work per row
ROW_DISPATCH_COST = 12.0  # Python dispatch per tuple
PER_NODE_FACTOR = 0.01  # extra work per graph operator


@dataclass(frozen=True)
class StrategyEstimate:
    strategy: str
    batch_cost: float
    row_udf_cost: float


def estimate_costs(estimated_rows: float, graph: Graph) -> StrategyEstimate:
    size = graph_size(graph)
    complexity = 1.0 + PER_NODE_FACTOR * (
        size["operators"] + 0.01 * size["tree_nodes"]
    )
    batch = BATCH_SETUP_COST + BATCH_PER_ROW_COST * estimated_rows * complexity
    row_udf = ROW_DISPATCH_COST * estimated_rows * complexity
    strategy = "batch" if batch <= row_udf else "row_udf"
    return StrategyEstimate(strategy, batch, row_udf)


def choose_strategy(estimated_rows: float, graph: Graph) -> str:
    """'batch' or 'row_udf' for the given cardinality and model."""
    return estimate_costs(estimated_rows, graph).strategy
