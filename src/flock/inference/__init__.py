"""flock.inference — in-DBMS model scoring and the SQL×ML cross-optimizer.

The paper's core proposal (§4.1): inference is an extension of relational
query processing. ``PREDICT`` binds to a plan operator
(:class:`~flock.db.plan.PredictNode`), executed by :class:`DefaultScorer`
over the :mod:`flock.mlgraph` runtime, and optimized by
:class:`CrossOptimizer`, which implements the paper's optimization list:

- predicate push-down below the model (relational side, in flock.db) and
  push-up of predicates over predictions via UDF inlining;
- automatic pruning of unused input feature-columns from model sparsity;
- model compression exploiting input data statistics;
- physical operator selection (vectorized batch vs per-row UDF) based on
  statistics.
"""

from flock.inference.compression import compress_graph
from flock.inference.optimizer import CrossOptimizer
from flock.inference.predict import DefaultScorer, PreparedModel
from flock.inference.pruning import prune_predict_inputs
from flock.inference.selection import choose_strategy
from flock.inference.udf import inline_graph

__all__ = [
    "CrossOptimizer",
    "DefaultScorer",
    "PreparedModel",
    "choose_strategy",
    "compress_graph",
    "inline_graph",
    "prune_predict_inputs",
]
