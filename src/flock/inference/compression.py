"""Model compression exploiting input data statistics (§4.1).

Given observed [min, max] ranges of the columns feeding a model (from the
DBMS statistics the scans maintain), tree branches that no stored row can
reach are folded away and linear weights below a tolerance are zeroed.
Ranges are propagated forward through the featurizer operators so the tree /
linear ops see ranges in *their own* input space (e.g. post-scaling).
"""

from __future__ import annotations

import copy
import math

import numpy as np

from flock.errors import GraphError
from flock.mlgraph.graph import Graph, Node

Interval = tuple[float, float]
_FULL: Interval = (-math.inf, math.inf)


def compress_graph(
    graph: Graph,
    input_ranges: dict[str, Interval],
    weight_tolerance: float = 0.0,
) -> tuple[Graph, dict[str, int]]:
    """A compressed copy of *graph* plus a stats dict.

    ``input_ranges`` maps graph input names to observed (min, max); inputs
    without statistics are treated as unbounded. Returns the new graph and
    ``{"tree_nodes_before", "tree_nodes_after", "weights_zeroed"}``.
    """
    from flock.mlgraph.ops.trees import tree_dict_nodes

    ranges: dict[str, list[Interval]] = {}
    for spec in graph.inputs:
        ranges[spec.name] = [input_ranges.get(spec.name, _FULL)]

    new_nodes: list[Node] = []
    stats = {"tree_nodes_before": 0, "tree_nodes_after": 0, "weights_zeroed": 0}
    for node in graph.toposorted():
        node = copy.deepcopy(node)
        in_ranges = [ranges[name] for name in node.inputs]
        if node.op_type == "tree_ensemble":
            before = sum(tree_dict_nodes(t) for t in node.attrs["trees"])
            node.attrs["trees"] = [
                _fold_tree(t, list(in_ranges[0])) for t in node.attrs["trees"]
            ]
            after = sum(tree_dict_nodes(t) for t in node.attrs["trees"])
            stats["tree_nodes_before"] += before
            stats["tree_nodes_after"] += after
        elif node.op_type == "linear" and weight_tolerance > 0.0:
            weights = np.asarray(node.attrs["weights"], dtype=np.float64).copy()
            small = (np.abs(weights) <= weight_tolerance) & (weights != 0.0)
            stats["weights_zeroed"] += int(small.sum())
            weights[small] = 0.0
            node.attrs["weights"] = weights
        out_ranges = _propagate_ranges(node, in_ranges)
        for name, r in zip(node.outputs, out_ranges):
            ranges[name] = r
        new_nodes.append(node)

    compressed = Graph(
        name=graph.name,
        inputs=list(graph.inputs),
        outputs=list(graph.outputs),
        nodes=new_nodes,
        output_kinds=dict(graph.output_kinds),
        metadata={**graph.metadata, "compressed": True},
    )
    return compressed, stats


# ----------------------------------------------------------------------
# Tree folding
# ----------------------------------------------------------------------
def _fold_tree(tree: dict, column_ranges: list[Interval]) -> dict:
    """Fold branches unreachable under the observed column ranges."""
    if tree.get("left") is None:
        return tree
    feature = int(tree["feature"])
    threshold = float(tree["threshold"])
    lo, hi = (
        column_ranges[feature] if feature < len(column_ranges) else _FULL
    )
    if hi <= threshold:
        # Every stored value goes left.
        return _fold_tree(tree["left"], column_ranges)
    if lo > threshold:
        return _fold_tree(tree["right"], column_ranges)
    left_ranges = list(column_ranges)
    right_ranges = list(column_ranges)
    if feature < len(column_ranges):
        left_ranges[feature] = (lo, min(hi, threshold))
        right_ranges[feature] = (max(lo, np.nextafter(threshold, math.inf)), hi)
    return {
        "feature": feature,
        "threshold": threshold,
        "left": _fold_tree(tree["left"], left_ranges),
        "right": _fold_tree(tree["right"], right_ranges),
    }


# ----------------------------------------------------------------------
# Interval propagation through featurizers
# ----------------------------------------------------------------------
def _propagate_ranges(
    node: Node, inputs: list[list[Interval]]
) -> list[list[Interval]]:
    op = node.op_type
    if op == "pack":
        return [[r[0] for r in inputs]]
    if op == "concat":
        return [[interval for block in inputs for interval in block]]
    if op == "slice_columns":
        (matrix,) = inputs
        return [[matrix[i] for i in node.attrs["indices"]]]
    if op == "pick_column":
        (matrix,) = inputs
        return [[matrix[int(node.attrs["index"])]]]
    if op == "scale":
        (matrix,) = inputs
        offset = np.asarray(node.attrs["offset"], dtype=np.float64)
        divisor = np.asarray(node.attrs["divisor"], dtype=np.float64)
        out: list[Interval] = []
        for j, (lo, hi) in enumerate(matrix):
            o = float(offset[j]) if offset.ndim else float(offset)
            d = float(divisor[j]) if divisor.ndim else float(divisor)
            a, b = (lo - o) / d, (hi - o) / d
            out.append((min(a, b), max(a, b)))
        return [out]
    if op == "impute":
        (matrix,) = inputs
        statistics = np.asarray(node.attrs["statistics"], dtype=np.float64)
        out = []
        for j, (lo, hi) in enumerate(matrix):
            s = float(statistics[j])
            out.append((min(lo, s), max(hi, s)))
        return [out]
    if op == "onehot":
        width = len(node.attrs["categories"])
        return [[(0.0, 1.0)] * width]
    if op == "text_hash":
        width = int(node.attrs["n_buckets"])
        return [[(0.0, math.inf)] * width]
    if op == "sigmoid":
        (operand,) = inputs
        return [[(0.0, 1.0)] * len(operand)]
    if op in ("linear", "tree_ensemble", "add", "mul", "softmax", "relu",
              "clip", "argmax", "threshold", "label_map"):
        # Downstream of the model ops, ranges no longer matter for folding.
        width = _output_width(node, inputs)
        return [[_FULL] * width]
    raise GraphError(f"no range rule for operator {op!r}")


def _output_width(node: Node, inputs: list[list[Interval]]) -> int:
    if node.op_type == "linear":
        weights = np.asarray(node.attrs["weights"])
        return 1 if weights.ndim == 1 else int(weights.shape[1])
    if node.op_type == "tree_ensemble":
        cursor = node.attrs["trees"][0]
        while cursor.get("left") is not None:
            cursor = cursor["left"]
        return len(cursor["value"]) if len(cursor["value"]) > 1 else 1
    return len(inputs[0]) if inputs else 1
