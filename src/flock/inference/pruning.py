"""Automatic pruning of unused input feature-columns (§4.1).

Model sparsity (zero linear weights, never-split-on tree features) means
some of a model's declared inputs provably cannot influence its outputs.
This pass drops those columns from the PredictNode's reads; the relational
projection-pruning pass then stops the scan from materializing them at all.
"""

from __future__ import annotations

from flock.db.plan import PredictNode
from flock.inference.predict import PreparedModel
from flock.mlgraph.analysis import used_inputs
from flock.mlgraph.graph import Graph


def prune_predict_inputs(
    node: PredictNode,
    graph: Graph,
    weight_tolerance: float = 0.0,
) -> PreparedModel:
    """A PreparedModel for *node* reading only the inputs the model uses.

    Pruned inputs are fed a constant 0.0 at scoring time — safe because the
    sparsity analysis proved the outputs do not depend on them. The node's
    ``input_indexes`` are narrowed in place.
    """
    used = used_inputs(graph, weight_tolerance)
    active_inputs: list[str] = []
    kept_indexes: list[int] = []
    constant_fill: dict[str, float] = {}
    for input_name, column_index in zip(graph.input_names, node.input_indexes):
        if input_name in used:
            active_inputs.append(input_name)
            kept_indexes.append(column_index)
        else:
            constant_fill[input_name] = 0.0
    node.input_indexes = kept_indexes
    notes = []
    if constant_fill:
        notes.append(
            f"pruned {len(constant_fill)} unused input column(s): "
            f"{sorted(constant_fill)}"
        )
    return PreparedModel(graph, active_inputs, constant_fill, notes)
