"""UDF inlining: compiling small model graphs into SQL expressions.

The Froid-style optimization the paper combines with predicate push-up
(Figure 4's "SONNX-ext"): a linear model (or small tree ensemble) becomes an
ordinary arithmetic/CASE expression over the scan's columns, so the
relational optimizer can move predicates over predictions all the way into
the scan and the executor evaluates everything in one vectorized pass with
no model-runtime dispatch at all.
"""

from __future__ import annotations

import numpy as np

from flock.db.expr import (
    BoundBinary,
    BoundCase,
    BoundColumn,
    BoundExpr,
    BoundFunction,
    BoundLiteral,
)
from flock.db.functions import lookup_scalar
from flock.db.types import DataType
from flock.mlgraph.graph import Graph

DEFAULT_MAX_EXPR_NODES = 600


class _TooBig(Exception):
    """Internal: the inlined expression would exceed the node budget."""


class _InlineBuilder:
    """Builds BoundExprs from graph operators under a size budget."""

    def __init__(self, max_nodes: int):
        self.max_nodes = max_nodes
        self.count = 0

    def _charge(self, amount: int = 1) -> None:
        self.count += amount
        if self.count > self.max_nodes:
            raise _TooBig()

    # -- primitive constructors -----------------------------------------
    def lit(self, value: float) -> BoundLiteral:
        self._charge()
        return BoundLiteral(DataType.FLOAT, float(value))

    def int_lit(self, value: int) -> BoundLiteral:
        self._charge()
        return BoundLiteral(DataType.INTEGER, int(value))

    def binary(
        self, op: str, left: BoundExpr, right: BoundExpr, dtype: DataType
    ) -> BoundExpr:
        self._charge()
        return BoundBinary(op, left, right, dtype)

    def add(self, left: BoundExpr, right: BoundExpr) -> BoundExpr:
        return self.binary("+", left, right, DataType.FLOAT)

    def sub(self, left: BoundExpr, right: BoundExpr) -> BoundExpr:
        return self.binary("-", left, right, DataType.FLOAT)

    def mul(self, left: BoundExpr, right: BoundExpr) -> BoundExpr:
        return self.binary("*", left, right, DataType.FLOAT)

    def div(self, left: BoundExpr, right: BoundExpr) -> BoundExpr:
        return self.binary("/", left, right, DataType.FLOAT)

    def compare(self, op: str, left: BoundExpr, right: BoundExpr) -> BoundExpr:
        return self.binary(op, left, right, DataType.BOOLEAN)

    def call(self, name: str, args: list[BoundExpr]) -> BoundExpr:
        self._charge()
        scalar = lookup_scalar(name)
        dtype = scalar.return_type([a.dtype for a in args])
        return BoundFunction(scalar.name, args, dtype, scalar.impl)

    def case(
        self,
        branches: list[tuple[BoundExpr, BoundExpr]],
        default: BoundExpr,
        dtype: DataType,
    ) -> BoundExpr:
        self._charge()
        return BoundCase(branches, default, dtype)


def inline_graph(
    graph: Graph,
    input_exprs: dict[str, BoundExpr],
    max_nodes: int = DEFAULT_MAX_EXPR_NODES,
) -> dict[str, BoundExpr] | None:
    """Compile *graph* into one BoundExpr per output field.

    ``input_exprs`` maps graph input names to expressions over the child
    plan's columns (usually BoundColumns; pruned inputs get literals).
    Returns ``{field_name: expr}`` keyed like
    :meth:`Graph.output_field_names`, or None when the graph contains
    non-inlinable operators or would exceed *max_nodes* expression nodes.
    """
    builder = _InlineBuilder(max_nodes)
    tensors: dict[str, list[BoundExpr]] = {}
    try:
        for spec in graph.inputs:
            expr = input_exprs[spec.name]
            tensors[spec.name] = [expr]
        for node in graph.toposorted():
            result = _inline_node(builder, node, [tensors[n] for n in node.inputs])
            if result is None:
                return None
            for name, columns in zip(node.outputs, result):
                tensors[name] = columns
        out: dict[str, BoundExpr] = {}
        for field_name, tensor in graph.output_field_names():
            columns = tensors[tensor]
            if len(columns) != 1:
                return None  # matrix-valued outputs are not inlinable
            out[field_name] = columns[0]
        return out
    except _TooBig:
        return None
    except KeyError:
        return None


def _inline_node(
    builder: _InlineBuilder, node, inputs: list[list[BoundExpr]]
) -> list[list[BoundExpr]] | None:
    op = node.op_type
    attrs = node.attrs

    if op == "pack" or op == "concat":
        return [[e for columns in inputs for e in columns]]
    if op == "slice_columns":
        (matrix,) = inputs
        return [[matrix[i] for i in attrs["indices"]]]
    if op == "pick_column":
        (matrix,) = inputs
        return [[matrix[int(attrs["index"])]]]

    if op == "scale":
        (matrix,) = inputs
        offset = np.asarray(attrs["offset"], dtype=np.float64)
        divisor = np.asarray(attrs["divisor"], dtype=np.float64)
        out = []
        for j, column in enumerate(matrix):
            shifted = builder.sub(column, builder.lit(offset[j]))
            out.append(builder.div(shifted, builder.lit(divisor[j])))
        return [out]

    if op == "impute":
        (matrix,) = inputs
        statistics = np.asarray(attrs["statistics"], dtype=np.float64)
        out = []
        for j, column in enumerate(matrix):
            out.append(
                builder.call("COALESCE", [column, builder.lit(statistics[j])])
            )
        return [out]

    if op == "onehot":
        (column_list,) = inputs
        column = column_list[0]
        categories = list(attrs["categories"])
        out = []
        for category in categories:
            builder._charge(2)
            literal = BoundLiteral(
                DataType.TEXT if isinstance(category, str) else DataType.FLOAT,
                category,
            )
            condition = BoundBinary("=", column, literal, DataType.BOOLEAN)
            out.append(
                builder.case(
                    [(condition, builder.lit(1.0))],
                    builder.lit(0.0),
                    DataType.FLOAT,
                )
            )
        return [out]

    if op == "linear":
        (matrix,) = inputs
        weights = np.asarray(attrs["weights"], dtype=np.float64)
        bias = np.asarray(attrs["bias"], dtype=np.float64)
        if weights.ndim == 1:
            weights = weights.reshape(-1, 1)
            bias = bias.reshape(-1) if bias.ndim else np.array([float(bias)])
        out = []
        for k in range(weights.shape[1]):
            expr: BoundExpr = builder.lit(float(bias[k]) if bias.ndim else float(bias))
            for j, column in enumerate(matrix):
                w = weights[j, k]
                if w == 0.0:
                    continue  # inlining skips zero weights: pruning for free
                expr = builder.add(expr, builder.mul(builder.lit(w), column))
            out.append(expr)
        return [out]

    if op == "sigmoid":
        (operand,) = inputs
        out = []
        for z in operand:
            neg = builder.sub(builder.lit(0.0), z)
            denominator = builder.add(builder.lit(1.0), builder.call("EXP", [neg]))
            out.append(builder.div(builder.lit(1.0), denominator))
        return [out]

    if op == "threshold":
        (operand,) = inputs
        cutoff = float(attrs.get("cutoff", 0.5))
        out = []
        for z in operand:
            condition = builder.compare(">=", z, builder.lit(cutoff))
            out.append(
                builder.case(
                    [(condition, builder.int_lit(1))],
                    builder.int_lit(0),
                    DataType.INTEGER,
                )
            )
        return [out]

    if op == "label_map":
        (operand,) = inputs
        labels = list(attrs["labels"])
        index_expr = operand[0]
        dtype = (
            DataType.INTEGER
            if all(isinstance(label, int) for label in labels)
            else DataType.TEXT
        )
        branches = []
        for i, label in enumerate(labels[:-1]):
            condition = builder.compare("=", index_expr, builder.int_lit(i))
            builder._charge()
            branches.append((condition, BoundLiteral(dtype, label)))
        builder._charge()
        default = BoundLiteral(dtype, labels[-1])
        return [[builder.case(branches, default, dtype)]]

    if op == "tree_ensemble":
        (matrix,) = inputs
        trees = attrs["trees"]
        aggregation = attrs.get("aggregation", "sum")
        tree_exprs = []
        for tree in trees:
            expr = _inline_tree(builder, tree, matrix)
            if expr is None:
                return None
            tree_exprs.append(expr)
        combined = tree_exprs[0]
        for t in tree_exprs[1:]:
            combined = builder.add(combined, t)
        if aggregation == "sum":
            scale = float(attrs.get("scale", 1.0))
            init = float(attrs.get("init", 0.0))
            combined = builder.add(
                builder.lit(init), builder.mul(builder.lit(scale), combined)
            )
        elif aggregation == "average":
            combined = builder.div(combined, builder.lit(float(len(tree_exprs))))
        else:
            return None
        return [[combined]]

    if op == "relu":
        (operand,) = inputs
        out = []
        for z in operand:
            condition = builder.compare(">", z, builder.lit(0.0))
            out.append(
                builder.case([(condition, z)], builder.lit(0.0), DataType.FLOAT)
            )
        return [out]

    if op == "add" or op == "mul":
        left, right = inputs
        width = max(len(left), len(right))
        combine = builder.add if op == "add" else builder.mul
        out = []
        for i in range(width):
            a = left[i] if i < len(left) else left[-1]
            b = right[i] if i < len(right) else right[-1]
            out.append(combine(a, b))
        return [out]

    # text_hash, softmax, argmax, clip: not inlinable.
    return None


def _inline_tree(
    builder: _InlineBuilder, tree: dict, matrix: list[BoundExpr]
) -> BoundExpr | None:
    """One serialized tree → nested CASE (single-output trees only)."""
    if tree.get("left") is None:
        value = tree["value"]
        if len(value) != 1:
            return None  # probability-vector leaves are not inlinable
        return builder.lit(float(value[0]))
    feature = int(tree["feature"])
    if feature >= len(matrix):
        return None
    left = _inline_tree(builder, tree["left"], matrix)
    right = _inline_tree(builder, tree["right"], matrix)
    if left is None or right is None:
        return None
    condition = builder.compare(
        "<=", matrix[feature], builder.lit(float(tree["threshold"]))
    )
    return builder.case([(condition, left)], right, DataType.FLOAT)
