"""The hybrid relational×ML intermediate representation.

The paper derives "an intermediate representation amenable to optimization"
from end-to-end prediction pipelines (§4.1). In this codebase that IR *is*
the logical plan: relational operators (:mod:`flock.db.plan`) and the
:class:`~flock.db.plan.PredictNode` ML operator live in one tree, so one
optimizer moves work across the SQL/ML boundary. This module provides
introspection helpers over that hybrid IR.
"""

from __future__ import annotations

from dataclasses import dataclass

from flock.db.plan import PlanNode, PredictNode, ScanNode


def predict_nodes(plan: PlanNode) -> list[PredictNode]:
    """All ML operators in the plan, in walk order."""
    return [n for n in plan.walk() if isinstance(n, PredictNode)]


def scan_nodes(plan: PlanNode) -> list[ScanNode]:
    return [n for n in plan.walk() if isinstance(n, ScanNode)]


@dataclass(frozen=True)
class HybridPlanSummary:
    """Shape metrics of a hybrid plan (used by tests and ablation benches)."""

    relational_operators: int
    ml_operators: int
    scanned_columns: int
    strategies: tuple[str, ...]

    @property
    def total_operators(self) -> int:
        return self.relational_operators + self.ml_operators


def summarize(plan: PlanNode) -> HybridPlanSummary:
    predicts = predict_nodes(plan)
    scans = scan_nodes(plan)
    total = sum(1 for _ in plan.walk())
    return HybridPlanSummary(
        relational_operators=total - len(predicts),
        ml_operators=len(predicts),
        scanned_columns=sum(len(s.column_indexes) for s in scans),
        strategies=tuple(p.strategy for p in predicts),
    )


def column_origin(
    plan: PlanNode, column_index: int
) -> tuple[str, str] | None:
    """Trace an output column back to a base-table column, if it maps 1:1.

    Returns ``(table_name, column_name)`` or None when the column is
    computed. Used to look up stored statistics for model compression.
    """
    from flock.db.expr import BoundColumn
    from flock.db.plan import (
        FilterNode,
        JoinNode,
        LimitNode,
        ProjectNode,
        SortNode,
    )

    if isinstance(plan, ScanNode):
        if column_index < len(plan.fields):
            return plan.table_name, plan.fields[column_index].name
        return None
    if isinstance(plan, (FilterNode, SortNode, LimitNode)):
        return column_origin(plan.children()[0], column_index)
    if isinstance(plan, ProjectNode):
        expr = plan.exprs[column_index]
        if isinstance(expr, BoundColumn):
            return column_origin(plan.child, expr.index)
        return None
    if isinstance(plan, PredictNode):
        if column_index < len(plan.child.fields):
            return column_origin(plan.child, column_index)
        return None
    if isinstance(plan, JoinNode):
        left_width = len(plan.left.fields)
        if column_index < left_width:
            return column_origin(plan.left, column_index)
        return column_origin(plan.right, column_index - left_width)
    return None
