"""The SQL×ML cross-optimizer (§4.1).

Plugs into the relational optimizer as an extra rule pass and applies, per
PredictNode:

1. **model compression** from stored data statistics (tree-branch folding,
   weight thresholding);
2. **input-column pruning** from model sparsity (narrows the node's reads so
   the later projection-pruning pass shrinks the scans);
3. **UDF inlining + predicate push-up**: small models become SQL expressions
   and the node disappears; a pushdown re-run then moves predicates over
   predictions into the scans;
4. **physical strategy selection**: vectorized batch vs per-row UDF scoring
   by estimated cardinality.

Every decision is recorded in :attr:`CrossOptimizer.last_report` so tests,
examples and the ablation benchmarks can observe what fired.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field as dataclass_field

from flock.db.expr import BoundColumn, BoundLiteral
from flock.db.optimizer.cost import estimate_rows
from flock.db.optimizer.rules import apply_pushdown
from flock.db.plan import JoinNode, PlanNode, PredictNode, ProjectNode
from flock.db.types import DataType
from flock.inference.compression import compress_graph
from flock.inference.ir import column_origin
from flock.inference.predict import PreparedModel, _strip_prefix
from flock.inference.pruning import prune_predict_inputs
from flock.inference.selection import choose_strategy
from flock.inference.udf import DEFAULT_MAX_EXPR_NODES, inline_graph


@dataclass
class CrossOptimizer:
    """Configurable cross-optimization pass; see module docstring."""

    enable_compression: bool = True
    enable_pruning: bool = True
    enable_inlining: bool = True
    enable_strategy_selection: bool = True
    weight_tolerance: float = 1e-9
    max_inline_nodes: int = DEFAULT_MAX_EXPR_NODES
    # When a MonitorHub is attached, monitored models are not inlined:
    # inlining erases the Predict operator, and with it the scorer hook the
    # monitor listens on. Trading a constant-factor speedup for observability
    # is the right default for governed deployments.
    monitor_hub: object | None = None
    # Compression cache: (model graph identity, observed ranges) →
    # (compressed graph, stats). Table statistics are cached per storage
    # version, so the key is stable until either the model or the data
    # changes — re-deploys and writes invalidate naturally. Guarded by
    # _cache_lock: concurrent readers share one optimizer instance.
    _compression_cache: dict = dataclass_field(default_factory=dict)
    _cache_lock: threading.Lock = dataclass_field(
        default_factory=threading.Lock, repr=False
    )
    # Decision log storage. last_report is thread-local: concurrent
    # optimizations (one per serving worker) each see only their own
    # statement's decisions, matching what single-threaded callers always
    # observed.
    _report_local: threading.local = dataclass_field(
        default_factory=threading.local, repr=False
    )

    @property
    def last_report(self) -> list[str]:
        """Decisions made by this thread's most recent optimization."""
        report = getattr(self._report_local, "report", None)
        if report is None:
            report = self._report_local.report = []
        return report

    @last_report.setter
    def last_report(self, value: list[str]) -> None:
        self._report_local.report = list(value)

    def rules(self):
        """Rule callables for :class:`flock.db.optimizer.rules.Optimizer`."""
        return [self.apply]

    # ------------------------------------------------------------------
    def apply(self, plan: PlanNode, context) -> PlanNode:
        self.last_report = []
        if not any(isinstance(n, PredictNode) for n in plan.walk()):
            return plan
        from flock.observability import get_tracer, metrics

        with get_tracer().span("xopt.apply") as span:
            with get_tracer().span("xopt.prepare"):
                self._prepare_all(plan, context)
            if self.enable_inlining:
                with get_tracer().span("xopt.inline"):
                    plan = self._inline_pass(plan)
                    plan = apply_pushdown(plan)
            if self.enable_strategy_selection:
                with get_tracer().span("xopt.strategy"):
                    self._select_strategies(plan, context)
            span.set_attribute("rules_applied", len(self.last_report))
        registry = metrics()
        registry.counter("xopt.applications").inc()
        registry.counter("xopt.decisions").inc(len(self.last_report))
        return plan

    # -- preparation: compression + pruning -------------------------------
    def _prepare_all(self, plan: PlanNode, context) -> None:
        for node in plan.walk():
            if not isinstance(node, PredictNode):
                continue
            graph = context.model_artifact(node.model_name)
            if self.enable_compression:
                ranges = self._input_ranges(node, graph, context)
                cache_key = (
                    node.model_name.lower(),
                    id(graph),
                    tuple(sorted(ranges.items())),
                )
                with self._cache_lock:
                    cached = self._compression_cache.get(cache_key)
                if cached is None:
                    cached = compress_graph(
                        graph, ranges, self.weight_tolerance
                    )
                    with self._cache_lock:
                        if len(self._compression_cache) > 256:
                            self._compression_cache.clear()
                        self._compression_cache[cache_key] = cached
                graph, stats = cached
                folded = stats["tree_nodes_before"] - stats["tree_nodes_after"]
                if folded or stats["weights_zeroed"]:
                    self.last_report.append(
                        f"{node.model_name}: compressed "
                        f"({folded} tree nodes folded, "
                        f"{stats['weights_zeroed']} weights zeroed)"
                    )
            if self.enable_pruning:
                prepared = prune_predict_inputs(
                    node, graph, self.weight_tolerance
                )
                self.last_report.extend(
                    f"{node.model_name}: {note}" for note in prepared.notes
                )
            else:
                prepared = PreparedModel(graph, list(graph.input_names))
            node.compiled = prepared

    def _input_ranges(
        self, node: PredictNode, graph, context
    ) -> dict[str, tuple[float, float]]:
        ranges: dict[str, tuple[float, float]] = {}
        for input_name, column_index in zip(
            graph.input_names, node.input_indexes
        ):
            origin = column_origin(node.child, column_index)
            if origin is None:
                continue
            table_name, column_name = origin
            try:
                stats = context.table_stats(table_name)
            except Exception:  # engine without stats support
                continue
            column_stats = stats.column(column_name)
            if column_stats is None:
                continue
            lo, hi = column_stats.min_value, column_stats.max_value
            if isinstance(lo, (int, float)) and isinstance(hi, (int, float)):
                ranges[input_name] = (float(lo), float(hi))
        return ranges

    # -- inlining ----------------------------------------------------------
    def _inline_pass(self, plan: PlanNode) -> PlanNode:
        if isinstance(plan, JoinNode):
            plan.left = self._inline_pass(plan.left)
            plan.right = self._inline_pass(plan.right)
        elif plan.children():
            plan.child = self._inline_pass(plan.children()[0])  # type: ignore[attr-defined]
        if not isinstance(plan, PredictNode):
            return plan

        if self.monitor_hub is not None and getattr(
            self.monitor_hub, "has_monitor", lambda name: False
        )(plan.model_name):
            self.last_report.append(
                f"{plan.model_name}: inlining skipped (model is monitored)"
            )
            return plan

        prepared = plan.compiled
        assert isinstance(prepared, PreparedModel)
        input_exprs: dict[str, object] = {}
        for input_name, column_index in zip(
            prepared.active_inputs, plan.input_indexes
        ):
            child_field = plan.child.fields[column_index]
            input_exprs[input_name] = BoundColumn(
                column_index, child_field.dtype, child_field.name
            )
        for input_name, value in prepared.constant_fill.items():
            input_exprs[input_name] = BoundLiteral(DataType.FLOAT, value)

        compiled = inline_graph(
            prepared.graph, input_exprs, self.max_inline_nodes
        )
        if compiled is None:
            return plan

        passthrough = [
            BoundColumn(i, f.dtype, f.name)
            for i, f in enumerate(plan.child.fields)
        ]
        names = [f.name for f in plan.child.fields]
        output_exprs = []
        for output_field in plan.output_fields:
            expr = compiled.get(_strip_prefix(output_field.name))
            if expr is None:
                return plan
            output_exprs.append(expr)
            names.append(output_field.name)
        self.last_report.append(
            f"{plan.model_name}: inlined into SQL expressions"
        )
        return ProjectNode(plan.child, passthrough + output_exprs, names)

    # -- strategy selection ---------------------------------------------
    def _select_strategies(self, plan: PlanNode, context) -> None:
        for node in plan.walk():
            if not isinstance(node, PredictNode):
                continue
            prepared = node.compiled
            graph = (
                prepared.graph
                if isinstance(prepared, PreparedModel)
                else context.model_artifact(node.model_name)
            )
            rows = estimate_rows(node.child, context.table_row_count)
            if not math.isfinite(rows):
                rows = 1e9
            node.strategy = choose_strategy(rows, graph)
            self.last_report.append(
                f"{node.model_name}: strategy={node.strategy} "
                f"(est. {rows:.0f} rows)"
            )
