"""The provenance data model (challenge C1).

*Polymorphic*: entities cover tables, columns, queries, scripts, datasets,
models, hyperparameters and metrics in one typed graph. *Temporal*: entities
carry versions; a write to a table creates a new TABLE_VERSION entity chained
to its predecessor, so "a model may have multiple versions, one for each
re-run of a training pipeline" is representable directly.
"""

from __future__ import annotations

import enum
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from flock.errors import ProvenanceError


class EntityType(enum.Enum):
    TABLE = "TABLE"
    TABLE_VERSION = "TABLE_VERSION"
    COLUMN = "COLUMN"
    QUERY = "QUERY"
    SCRIPT = "SCRIPT"
    DATASET = "DATASET"
    MODEL = "MODEL"
    MODEL_VERSION = "MODEL_VERSION"
    HYPERPARAMETER = "HYPERPARAMETER"
    METRIC = "METRIC"
    FEATURE = "FEATURE"
    TRAINING_RUN = "TRAINING_RUN"
    POLICY = "POLICY"
    DECISION = "DECISION"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Relation(enum.Enum):
    READS = "READS"  # query/script → table/column/dataset
    WRITES = "WRITES"  # query → table
    CONTAINS = "CONTAINS"  # table → column
    VERSION_OF = "VERSION_OF"  # table_version → table
    PRECEDES = "PRECEDES"  # version N → version N+1
    TRAINED_ON = "TRAINED_ON"  # model → dataset/table
    PRODUCES = "PRODUCES"  # script/run → model
    CONFIGURED_BY = "CONFIGURED_BY"  # model → hyperparameter
    EVALUATED_BY = "EVALUATED_BY"  # model → metric
    DERIVES = "DERIVES"  # generic derivation
    SCORED_BY = "SCORED_BY"  # decision → model_version
    GOVERNED_BY = "GOVERNED_BY"  # decision → policy

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Entity:
    """A node of the provenance graph."""

    entity_id: str
    entity_type: EntityType
    name: str
    version: int = 1
    properties: dict[str, Any] = field(default_factory=dict, compare=False)
    created_at: float = field(default_factory=time.time, compare=False)

    @property
    def qualified_name(self) -> str:
        return f"{self.entity_type.value.lower()}:{self.name.lower()}"


@dataclass(frozen=True)
class ProvenanceEdge:
    """A directed, typed edge of the provenance graph."""

    src_id: str
    dst_id: str
    relation: Relation
    properties: dict[str, Any] = field(default_factory=dict, compare=False)


class ProvenanceGraph:
    """An in-memory typed multigraph with lineage traversal."""

    def __init__(self) -> None:
        self._entities: dict[str, Entity] = {}
        self._edges: list[ProvenanceEdge] = []
        self._out: dict[str, list[int]] = {}
        self._in: dict[str, list[int]] = {}
        self._id_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_entity_id(self, prefix: str) -> str:
        return f"{prefix}-{next(self._id_counter)}"

    def add_entity(self, entity: Entity) -> Entity:
        if entity.entity_id in self._entities:
            raise ProvenanceError(
                f"entity {entity.entity_id!r} already exists"
            )
        self._entities[entity.entity_id] = entity
        return entity

    def add_edge(self, edge: ProvenanceEdge) -> ProvenanceEdge:
        if edge.src_id not in self._entities:
            raise ProvenanceError(f"unknown edge source {edge.src_id!r}")
        if edge.dst_id not in self._entities:
            raise ProvenanceError(f"unknown edge target {edge.dst_id!r}")
        index = len(self._edges)
        self._edges.append(edge)
        self._out.setdefault(edge.src_id, []).append(index)
        self._in.setdefault(edge.dst_id, []).append(index)
        return edge

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entity(self, entity_id: str) -> Entity:
        try:
            return self._entities[entity_id]
        except KeyError:
            raise ProvenanceError(f"unknown entity {entity_id!r}") from None

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def entities(
        self, entity_type: EntityType | None = None
    ) -> list[Entity]:
        if entity_type is None:
            return list(self._entities.values())
        return [
            e for e in self._entities.values() if e.entity_type is entity_type
        ]

    def edges(
        self,
        relation: Relation | None = None,
        src_id: str | None = None,
        dst_id: str | None = None,
    ) -> list[ProvenanceEdge]:
        out: Iterable[ProvenanceEdge] = self._edges
        if src_id is not None:
            out = (self._edges[i] for i in self._out.get(src_id, []))
        elif dst_id is not None:
            out = (self._edges[i] for i in self._in.get(dst_id, []))
        result = []
        for edge in out:
            if relation is not None and edge.relation is not relation:
                continue
            if dst_id is not None and edge.dst_id != dst_id:
                continue
            if src_id is not None and edge.src_id != src_id:
                continue
            result.append(edge)
        return result

    @property
    def node_count(self) -> int:
        return len(self._entities)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    @property
    def size(self) -> int:
        """Nodes + edges — the metric the paper's Table 1 reports."""
        return self.node_count + self.edge_count

    # ------------------------------------------------------------------
    # Lineage traversal
    # ------------------------------------------------------------------
    def lineage(
        self,
        entity_id: str,
        direction: str = "upstream",
        max_depth: int | None = None,
    ) -> list[Entity]:
        """Entities reachable from *entity_id*.

        ``upstream`` follows edges from dst to src (what did this derive
        from?); ``downstream`` follows src to dst (what depends on this?).
        """
        if direction not in ("upstream", "downstream"):
            raise ProvenanceError(f"unknown direction {direction!r}")
        seen: set[str] = {entity_id}
        frontier = [entity_id]
        out: list[Entity] = []
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            next_frontier: list[str] = []
            for node in frontier:
                if direction == "upstream":
                    neighbours = [
                        self._edges[i].dst_id for i in self._out.get(node, [])
                    ]
                else:
                    neighbours = [
                        self._edges[i].src_id for i in self._in.get(node, [])
                    ]
                for n in neighbours:
                    if n not in seen:
                        seen.add(n)
                        out.append(self._entities[n])
                        next_frontier.append(n)
            frontier = next_frontier
            depth += 1
        return out

    def impacted_by(self, entity_id: str) -> list[Entity]:
        """Everything downstream of an entity — e.g. "if we change a column
        in a database, models trained in Python that depend on this column
        may need to be invalidated and retrained" (C3)."""
        return self.lineage(entity_id, direction="downstream")
