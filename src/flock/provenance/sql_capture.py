"""SQL provenance capture (challenge C2), eager and lazy.

*Eager* capture parses each statement as it executes and extracts
coarse-grained provenance: the input tables and columns that affected the
output, with connections modelled as a graph. *Lazy* capture replays the
engine's query log and applies the same extraction to the whole history.
Both populate the :class:`~flock.provenance.catalog.ProvenanceCatalog`, and
every captured write produces a new TABLE_VERSION entity (the temporal side
of challenge C1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from flock.db.sql import ast_nodes as ast
from flock.db.sql.parser import parse_statement
from flock.errors import FlockError
from flock.provenance.catalog import ProvenanceCatalog
from flock.provenance.model import Entity, EntityType, Relation


@dataclass
class CaptureResult:
    """What one statement contributed to the provenance graph."""

    query: Entity
    input_tables: list[str] = field(default_factory=list)
    input_columns: list[str] = field(default_factory=list)  # "table.column"
    output_tables: list[str] = field(default_factory=list)
    models_scored: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0


@dataclass
class CaptureSummary:
    """Aggregates over a batch capture (the paper's Table 1 quantities)."""

    query_count: int
    total_seconds: float
    graph_size: int  # nodes + edges

    @property
    def seconds_per_query(self) -> float:
        return self.total_seconds / self.query_count if self.query_count else 0.0


class SQLProvenanceCapture:
    """Extracts coarse-grained provenance from SQL statements."""

    def __init__(self, catalog: ProvenanceCatalog, database=None):
        self.catalog = catalog
        self.database = database  # optional: schema access for resolution
        self._query_counter = 0

    # ------------------------------------------------------------------
    # Eager mode
    # ------------------------------------------------------------------
    def capture_query(self, sql: str, user: str = "unknown") -> CaptureResult:
        started = time.perf_counter()
        statement = parse_statement(sql)
        self._query_counter += 1
        query_entity = self.catalog.register(
            EntityType.QUERY,
            f"q{self._query_counter}",
            properties={"sql": sql, "user": user},
        )
        result = CaptureResult(query=query_entity)
        self._extract(statement, query_entity, result)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def capture_many(self, statements: list[str]) -> CaptureSummary:
        started = time.perf_counter()
        captured = 0
        for sql in statements:
            try:
                self.capture_query(sql)
                captured += 1
            except FlockError:
                continue  # unparseable statements are skipped, as the paper
                # does when Calcite cannot parse an engine's dialect
        return CaptureSummary(
            query_count=captured,
            total_seconds=time.perf_counter() - started,
            graph_size=self.catalog.size,
        )

    # ------------------------------------------------------------------
    # Lazy mode (replay the engine's query log)
    # ------------------------------------------------------------------
    def capture_log(self, query_log) -> CaptureSummary:
        started = time.perf_counter()
        captured = 0
        for entry in query_log:
            if not entry.success:
                continue
            try:
                self.capture_query(entry.sql, user=entry.user)
                captured += 1
            except FlockError:
                continue
        return CaptureSummary(
            query_count=captured,
            total_seconds=time.perf_counter() - started,
            graph_size=self.catalog.size,
        )

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def _extract(
        self, statement: ast.Statement, query: Entity, result: CaptureResult
    ) -> None:
        if isinstance(statement, ast.Select):
            self._extract_select(statement, query, result)
        elif isinstance(statement, ast.Insert):
            self._record_write(statement.table, query, result)
            if statement.select is not None:
                self._extract_select(statement.select, query, result)
        elif isinstance(statement, ast.Update):
            self._record_write(statement.table, query, result)
            alias_map = {statement.table.lower(): statement.table}
            exprs: list[ast.Expr] = [e for _, e in statement.assignments]
            if statement.where is not None:
                exprs.append(statement.where)
            self._record_columns(exprs, alias_map, query, result)
        elif isinstance(statement, ast.Delete):
            self._record_write(statement.table, query, result)
            if statement.where is not None:
                alias_map = {statement.table.lower(): statement.table}
                self._record_columns([statement.where], alias_map, query, result)
        elif isinstance(statement, ast.CreateTable):
            table_entity = self.catalog.register(
                EntityType.TABLE, statement.name
            )
            for column in statement.columns:
                column_entity = self.catalog.register(
                    EntityType.COLUMN,
                    f"{statement.name}.{column.name}",
                    properties={"type": column.type_name},
                )
                self.catalog.link(table_entity, column_entity, Relation.CONTAINS)
            self.catalog.link(query, table_entity, Relation.WRITES)
            result.output_tables.append(statement.name)
        # Security/transaction statements carry no data provenance.

    def _extract_select(
        self, select: ast.Select, query: Entity, result: CaptureResult
    ) -> None:
        for cte in getattr(select, "ctes", []) or []:
            self._extract_select(cte.query, query, result)
        if isinstance(select, ast.SetOperation):
            self._extract_select(select.left, query, result)
            self._extract_select(select.right, query, result)
            return
        alias_map = self._collect_tables(select.from_clause, query, result)
        exprs: list[ast.Expr] = [item.expr for item in select.items]
        if select.where is not None:
            exprs.append(select.where)
        exprs.extend(select.group_by)
        if select.having is not None:
            exprs.append(select.having)
        exprs.extend(o.expr for o in select.order_by)
        self._record_columns(exprs, alias_map, query, result)

    def _collect_tables(
        self,
        from_clause: ast.TableExpr | None,
        query: Entity,
        result: CaptureResult,
    ) -> dict[str, str]:
        """READS edges for every referenced table; returns alias → table."""
        alias_map: dict[str, str] = {}
        if from_clause is None:
            return alias_map
        stack = [from_clause]
        while stack:
            item = stack.pop()
            if isinstance(item, ast.TableRef):
                if item.name.lower() not in {
                    t.lower() for t in result.input_tables
                }:
                    table_entity = self.catalog.register(
                        EntityType.TABLE, item.name
                    )
                    self.catalog.link(query, table_entity, Relation.READS)
                    result.input_tables.append(item.name)
                alias_map[(item.alias or item.name).lower()] = item.name
                alias_map.setdefault(item.name.lower(), item.name)
            elif isinstance(item, ast.Join):
                stack.append(item.left)
                stack.append(item.right)
                if item.condition is not None:
                    # Columns in the join condition are inputs too; recorded
                    # by the caller through the alias map, so collect later.
                    pass
            elif isinstance(item, ast.SubqueryRef):
                self._extract_select(item.query, query, result)
        # Join conditions reference columns of the collected tables.
        stack = [from_clause]
        condition_exprs: list[ast.Expr] = []
        while stack:
            item = stack.pop()
            if isinstance(item, ast.Join):
                stack.append(item.left)
                stack.append(item.right)
                if item.condition is not None:
                    condition_exprs.append(item.condition)
        if condition_exprs:
            self._record_columns(condition_exprs, alias_map, query, result)
        return alias_map

    def _record_columns(
        self,
        exprs: list[ast.Expr],
        alias_map: dict[str, str],
        query: Entity,
        result: CaptureResult,
    ) -> None:
        recorded: set[str] = {c.lower() for c in result.input_columns}
        for expr in exprs:
            for node in expr.walk():
                if isinstance(
                    node, (ast.InQuery, ast.Exists, ast.ScalarSubquery)
                ):
                    # Subquery expressions: their inputs are inputs too.
                    self._extract_select(node.query, query, result)
                    recorded = set(
                        c.lower() for c in result.input_columns
                    )
                    continue
                if isinstance(node, ast.Predict):
                    # Scoring is a read of the deployed model (§4.2: track
                    # provenance "through deployment to scoring").
                    if node.model_name not in result.models_scored:
                        model_entity = self.catalog.register(
                            EntityType.MODEL, node.model_name
                        )
                        self.catalog.link(query, model_entity, Relation.READS)
                        result.models_scored.append(node.model_name)
                    continue
                if not isinstance(node, ast.ColumnRef):
                    continue
                table = self._resolve_table(node, alias_map)
                if table is None:
                    continue
                qualified = f"{table}.{node.name}"
                if qualified.lower() in recorded:
                    continue
                recorded.add(qualified.lower())
                table_entity = self.catalog.register(EntityType.TABLE, table)
                column_entity = self.catalog.register(
                    EntityType.COLUMN, qualified
                )
                self.catalog.link(table_entity, column_entity, Relation.CONTAINS)
                self.catalog.link(query, column_entity, Relation.READS)
                result.input_columns.append(qualified)

    def _resolve_table(
        self, column: ast.ColumnRef, alias_map: dict[str, str]
    ) -> str | None:
        if column.table is not None:
            return alias_map.get(column.table.lower(), column.table)
        if len(alias_map) == 1:
            return next(iter(alias_map.values()))
        if self.database is not None:
            candidates = []
            for table in set(alias_map.values()):
                try:
                    schema = self.database.resolve_table(table)
                except FlockError:
                    continue
                if schema.has_column(column.name):
                    candidates.append(table)
            if len(candidates) == 1:
                return candidates[0]
        return None  # ambiguous without a schema: coarse capture skips it

    def _record_write(
        self, table_name: str, query: Entity, result: CaptureResult
    ) -> None:
        table_entity = self.catalog.register(EntityType.TABLE, table_name)
        self.catalog.link(query, table_entity, Relation.WRITES)
        # Temporal model (C1): every write yields a new version entity, and
        # — when the schema is known — the version snapshots its column
        # structure (new column-version entities chained to the previous
        # ones). This is the size blow-up the paper observes on TPC-C
        # ("a table having as many versions as the insertions that have
        # happened to it") and what compression later summarizes away.
        version_entity = self.catalog.register(
            EntityType.TABLE_VERSION, table_name, new_version=True
        )
        self.catalog.link(version_entity, table_entity, Relation.VERSION_OF)
        self.catalog.link(query, version_entity, Relation.DERIVES)
        if self.database is not None:
            try:
                schema = self.database.resolve_table(table_name)
            except FlockError:
                schema = None
            if schema is not None:
                for column in schema.columns:
                    column_version = self.catalog.register(
                        EntityType.COLUMN,
                        f"{table_name}.{column.name}",
                        new_version=True,
                    )
                    self.catalog.link(
                        version_entity, column_version, Relation.CONTAINS
                    )
        result.output_tables.append(table_name)
