"""Provenance graph compression and summarization.

The paper's Table 1 experiment finds the provenance data model "can become
substantially large in size (e.g., a table having as many versions as the
insertions that have happened to it)" and proposes optimized capture
"through compression and summarization". This module implements both:

- **version-chain summarization**: a table's N version entities collapse to
  first + last + a count property;
- **edge deduplication**: repeated (src, dst, relation) edges collapse to
  one edge carrying a multiplicity property.
"""

from __future__ import annotations

from dataclasses import dataclass

from flock.provenance.model import (
    Entity,
    EntityType,
    ProvenanceEdge,
    ProvenanceGraph,
    Relation,
)


@dataclass(frozen=True)
class CompressionReport:
    nodes_before: int
    edges_before: int
    nodes_after: int
    edges_after: int

    @property
    def size_before(self) -> int:
        return self.nodes_before + self.edges_before

    @property
    def size_after(self) -> int:
        return self.nodes_after + self.edges_after

    @property
    def ratio(self) -> float:
        if self.size_before == 0:
            return 1.0
        return self.size_after / self.size_before


def compress_provenance(
    graph: ProvenanceGraph,
    summarize_versions: bool = True,
    dedupe_edges: bool = True,
) -> tuple[ProvenanceGraph, CompressionReport]:
    """A compressed copy of *graph* plus a before/after report."""
    keep: dict[str, Entity] = {e.entity_id: e for e in graph.entities()}
    redirect: dict[str, str] = {}

    if summarize_versions:
        chains = _version_chains(graph)
        for chain in chains:
            if len(chain) <= 2:
                continue
            first, last = chain[0], chain[-1]
            collapsed = Entity(
                entity_id=last.entity_id,
                entity_type=last.entity_type,
                name=last.name,
                version=last.version,
                properties={
                    **last.properties,
                    "collapsed_versions": len(chain),
                    "first_version": first.version,
                },
                created_at=last.created_at,
            )
            keep[last.entity_id] = collapsed
            for middle in chain[:-1]:
                if middle.entity_id != last.entity_id:
                    keep.pop(middle.entity_id, None)
                    redirect[middle.entity_id] = last.entity_id

    out = ProvenanceGraph()
    for entity in keep.values():
        out.add_entity(entity)

    seen_edges: dict[tuple[str, str, Relation], int] = {}
    materialized: dict[tuple[str, str, Relation], ProvenanceEdge] = {}
    for edge in graph.edges():
        src = redirect.get(edge.src_id, edge.src_id)
        dst = redirect.get(edge.dst_id, edge.dst_id)
        if src not in keep or dst not in keep or src == dst:
            continue
        key = (src, dst, edge.relation)
        if dedupe_edges:
            if key in seen_edges:
                seen_edges[key] += 1
                continue
            seen_edges[key] = 1
            materialized[key] = ProvenanceEdge(
                src, dst, edge.relation, dict(edge.properties)
            )
        else:
            out.add_edge(ProvenanceEdge(src, dst, edge.relation, edge.properties))
    if dedupe_edges:
        for key, edge in materialized.items():
            count = seen_edges[key]
            if count > 1:
                edge = ProvenanceEdge(
                    edge.src_id,
                    edge.dst_id,
                    edge.relation,
                    {**edge.properties, "multiplicity": count},
                )
            out.add_edge(edge)

    report = CompressionReport(
        nodes_before=graph.node_count,
        edges_before=graph.edge_count,
        nodes_after=out.node_count,
        edges_after=out.edge_count,
    )
    return out, report


def _version_chains(graph: ProvenanceGraph) -> list[list[Entity]]:
    """Maximal version chains (TABLE_VERSION and versioned COLUMN entities),
    oldest first."""
    by_name: dict[tuple[EntityType, str], list[Entity]] = {}
    for entity_type in (EntityType.TABLE_VERSION, EntityType.COLUMN):
        for entity in graph.entities(entity_type):
            by_name.setdefault(
                (entity_type, entity.name.lower()), []
            ).append(entity)
    chains = []
    for versions in by_name.values():
        versions.sort(key=lambda e: e.version)
        chains.append(versions)
    return chains
