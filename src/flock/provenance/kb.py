"""The ML-API knowledge base used by the Python provenance module.

The paper's Python capture pairs "standard static analysis techniques" with
"a knowledge base of ML APIs that we maintain". This module is that
knowledge base: which importable names construct models or featurizers,
which calls load training data, and which compute metrics. Coverage of the
KB directly bounds capture coverage — exactly the effect the paper's Table 2
measures (95% on heterogeneous Kaggle scripts vs 100% on uniform internal
scripts).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ApiEntry:
    """One known API: the module path prefix and the symbol name."""

    module: str  # e.g. "sklearn.linear_model"
    symbol: str  # e.g. "LogisticRegression"
    role: str  # "model" | "transformer"


# Model and featurizer constructors the analyzer recognizes.
KNOWN_APIS: list[ApiEntry] = [
    # scikit-learn
    ApiEntry("sklearn.linear_model", "LinearRegression", "model"),
    ApiEntry("sklearn.linear_model", "LogisticRegression", "model"),
    ApiEntry("sklearn.linear_model", "Ridge", "model"),
    ApiEntry("sklearn.linear_model", "Lasso", "model"),
    ApiEntry("sklearn.linear_model", "SGDClassifier", "model"),
    ApiEntry("sklearn.tree", "DecisionTreeClassifier", "model"),
    ApiEntry("sklearn.tree", "DecisionTreeRegressor", "model"),
    ApiEntry("sklearn.ensemble", "RandomForestClassifier", "model"),
    ApiEntry("sklearn.ensemble", "RandomForestRegressor", "model"),
    ApiEntry("sklearn.ensemble", "GradientBoostingClassifier", "model"),
    ApiEntry("sklearn.ensemble", "GradientBoostingRegressor", "model"),
    ApiEntry("sklearn.svm", "SVC", "model"),
    ApiEntry("sklearn.svm", "SVR", "model"),
    ApiEntry("sklearn.neighbors", "KNeighborsClassifier", "model"),
    ApiEntry("sklearn.naive_bayes", "GaussianNB", "model"),
    ApiEntry("sklearn.cluster", "KMeans", "model"),
    ApiEntry("sklearn.pipeline", "Pipeline", "model"),
    ApiEntry("sklearn.preprocessing", "StandardScaler", "transformer"),
    ApiEntry("sklearn.preprocessing", "MinMaxScaler", "transformer"),
    ApiEntry("sklearn.preprocessing", "OneHotEncoder", "transformer"),
    # gradient-boosting libraries
    ApiEntry("xgboost", "XGBClassifier", "model"),
    ApiEntry("xgboost", "XGBRegressor", "model"),
    ApiEntry("lightgbm", "LGBMClassifier", "model"),
    ApiEntry("lightgbm", "LGBMRegressor", "model"),
    ApiEntry("catboost", "CatBoostClassifier", "model"),
    # this repository's own library
    ApiEntry("flock.ml", "LinearRegression", "model"),
    ApiEntry("flock.ml", "LogisticRegression", "model"),
    ApiEntry("flock.ml", "RidgeRegression", "model"),
    ApiEntry("flock.ml", "DecisionTreeClassifier", "model"),
    ApiEntry("flock.ml", "DecisionTreeRegressor", "model"),
    ApiEntry("flock.ml", "GradientBoostingClassifier", "model"),
    ApiEntry("flock.ml", "GradientBoostingRegressor", "model"),
    ApiEntry("flock.ml", "RandomForestClassifier", "model"),
    ApiEntry("flock.ml", "RandomForestRegressor", "model"),
    ApiEntry("flock.ml", "Pipeline", "model"),
    ApiEntry("flock.ml", "StandardScaler", "transformer"),
]

# Functions whose call results are training data sources.
# name → (kind, index of the argument that identifies the source).
DATA_LOADERS: dict[str, tuple[str, int]] = {
    "read_csv": ("file", 0),
    "read_parquet": ("file", 0),
    "read_json": ("file", 0),
    "read_excel": ("file", 0),
    "read_table": ("file", 0),
    "read_sql": ("sql", 0),
    "read_sql_query": ("sql", 0),
    "read_sql_table": ("table", 0),
    "load_dataset": ("named", 0),
    "fetch_openml": ("named", 0),
}

# Metric functions (linking model → metric entities).
METRIC_FUNCTIONS = frozenset(
    {
        "accuracy_score",
        "precision_score",
        "recall_score",
        "f1_score",
        "roc_auc_score",
        "log_loss",
        "mean_squared_error",
        "mean_absolute_error",
        "r2_score",
        "cross_val_score",
    }
)

TRAIN_METHODS = frozenset({"fit", "fit_transform", "train"})


class KnowledgeBase:
    """Lookup interface over the static KB tables."""

    def __init__(self, extra_apis: list[ApiEntry] | None = None):
        self._by_symbol: dict[str, list[ApiEntry]] = {}
        for entry in KNOWN_APIS + list(extra_apis or []):
            self._by_symbol.setdefault(entry.symbol, []).append(entry)

    def classify_constructor(
        self, symbol: str, module_hint: str | None = None
    ) -> str | None:
        """'model' / 'transformer' / None for a constructor name.

        When *module_hint* is provided (resolved from imports), the module
        prefix must match a KB entry; bare symbol matches are accepted for
        ``from module import Name`` style imports whose module is unknown.
        """
        entries = self._by_symbol.get(symbol)
        if not entries:
            return None
        if module_hint:
            for entry in entries:
                if module_hint.startswith(entry.module.split(".")[0]):
                    return entry.role
            return None
        return entries[0].role

    def is_data_loader(self, name: str) -> tuple[str, int] | None:
        return DATA_LOADERS.get(name)

    def is_metric(self, name: str) -> bool:
        return name in METRIC_FUNCTIONS

    def is_train_method(self, name: str) -> bool:
        return name in TRAIN_METHODS
