"""Python provenance capture via static analysis (§4.2).

Parses data-science scripts with the stdlib ``ast`` module and, using the
:mod:`~flock.provenance.kb` knowledge base, identifies which variables hold
models, which hold training data (and from which sources it was loaded),
which hyperparameters configured each model and which metrics evaluated it.
Detected entities are registered in the provenance catalog; dataset sources
that name DBMS tables connect to the SQL provenance module's entities —
the cross-system bridge of challenge C3.
"""

from __future__ import annotations

import ast as python_ast
from dataclasses import dataclass, field

from flock.errors import ProvenanceError
from flock.provenance.catalog import ProvenanceCatalog
from flock.provenance.kb import KnowledgeBase
from flock.provenance.model import EntityType, Relation


@dataclass
class DetectedModel:
    """A model variable found in a script."""

    variable: str
    class_name: str
    hyperparameters: dict[str, object] = field(default_factory=dict)
    training_datasets: list[str] = field(default_factory=list)
    metrics: list[str] = field(default_factory=list)
    trained: bool = False


@dataclass
class DetectedDataset:
    """A training-data source found in a script."""

    kind: str  # 'file' | 'sql' | 'table' | 'named'
    source: str


@dataclass
class ScriptAnalysis:
    """Everything the static analyzer extracted from one script."""

    script_name: str
    models: list[DetectedModel] = field(default_factory=list)
    datasets: list[DetectedDataset] = field(default_factory=list)

    @property
    def model_classes(self) -> set[str]:
        return {m.class_name for m in self.models}

    @property
    def dataset_sources(self) -> set[str]:
        return {d.source for d in self.datasets}


@dataclass
class _VarInfo:
    kind: str  # 'model' | 'data' | 'module' | 'other'
    class_name: str = ""
    module_path: str = ""
    sources: set[str] = field(default_factory=set)
    model: DetectedModel | None = None


class PythonProvenanceCapture:
    """Static analyzer for data-science scripts."""

    def __init__(
        self,
        catalog: ProvenanceCatalog | None = None,
        knowledge_base: KnowledgeBase | None = None,
    ):
        self.catalog = catalog
        self.kb = knowledge_base or KnowledgeBase()

    # ------------------------------------------------------------------
    def analyze_script(self, source: str, name: str = "script") -> ScriptAnalysis:
        try:
            tree = python_ast.parse(source)
        except SyntaxError as exc:
            raise ProvenanceError(f"cannot parse script {name!r}: {exc}") from exc

        state = _AnalysisState(self.kb)
        for statement in tree.body:
            state.visit_statement(statement)

        analysis = ScriptAnalysis(
            script_name=name,
            models=state.models,
            datasets=state.datasets,
        )
        if self.catalog is not None:
            self._register(analysis)
        return analysis

    # ------------------------------------------------------------------
    def _register(self, analysis: ScriptAnalysis) -> None:
        catalog = self.catalog
        assert catalog is not None
        script_entity = catalog.register(
            EntityType.SCRIPT, analysis.script_name
        )
        dataset_entities = {}
        for dataset in analysis.datasets:
            entity = catalog.register(
                EntityType.DATASET,
                dataset.source,
                properties={"kind": dataset.kind},
            )
            dataset_entities[dataset.source] = entity
            catalog.link(script_entity, entity, Relation.READS)
            if dataset.kind == "table":
                table_entity = catalog.find(EntityType.TABLE, dataset.source)
                if table_entity is not None:
                    # Cross-system bridge: the script's dataset IS a DB table.
                    catalog.link(entity, table_entity, Relation.DERIVES)
        for model in analysis.models:
            model_entity = catalog.register(
                EntityType.MODEL,
                f"{analysis.script_name}::{model.variable}",
                properties={"class": model.class_name},
                new_version=True,
            )
            catalog.link(script_entity, model_entity, Relation.PRODUCES)
            for source in model.training_datasets:
                entity = dataset_entities.get(source)
                if entity is not None:
                    catalog.link(model_entity, entity, Relation.TRAINED_ON)
            for key, value in model.hyperparameters.items():
                hp_entity = catalog.register(
                    EntityType.HYPERPARAMETER,
                    f"{analysis.script_name}::{model.variable}::{key}",
                    properties={"value": value},
                    new_version=True,
                )
                catalog.link(model_entity, hp_entity, Relation.CONFIGURED_BY)
            for metric in model.metrics:
                metric_entity = catalog.register(
                    EntityType.METRIC,
                    f"{analysis.script_name}::{model.variable}::{metric}",
                    new_version=True,
                )
                catalog.link(model_entity, metric_entity, Relation.EVALUATED_BY)


class _AnalysisState:
    """Single-forward-pass abstract interpretation of a script body."""

    def __init__(self, kb: KnowledgeBase):
        self.kb = kb
        self.variables: dict[str, _VarInfo] = {}
        self.import_aliases: dict[str, str] = {}  # alias → module path
        self.from_imports: dict[str, str] = {}  # local name → module path
        self.from_import_names: dict[str, str] = {}  # local name → original
        self.models: list[DetectedModel] = []
        self.datasets: list[DetectedDataset] = []
        self._dataset_by_source: dict[str, DetectedDataset] = {}
        self.last_trained: DetectedModel | None = None

    # ------------------------------------------------------------------
    def visit_statement(self, node: python_ast.stmt) -> None:
        if isinstance(node, python_ast.Import):
            for alias in node.names:
                self.import_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, python_ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                self.from_imports[local] = node.module
                self.from_import_names[local] = alias.name
        elif isinstance(node, python_ast.Assign):
            self._visit_assign(node)
        elif isinstance(node, python_ast.Expr):
            self._visit_calls_in(node.value)
        elif isinstance(
            node, (python_ast.If, python_ast.For, python_ast.While,
                   python_ast.With, python_ast.Try, python_ast.FunctionDef)
        ):
            body = list(getattr(node, "body", []))
            body += list(getattr(node, "orelse", []))
            body += list(getattr(node, "finalbody", []))
            for child in body:
                self.visit_statement(child)

    # ------------------------------------------------------------------
    def _visit_assign(self, node: python_ast.Assign) -> None:
        value_info = self._evaluate(node.value)
        targets = node.targets[0]
        if isinstance(targets, python_ast.Name):
            if value_info.kind == "model" and value_info.model is not None:
                value_info.model.variable = targets.id
            self.variables[targets.id] = value_info
        elif isinstance(targets, (python_ast.Tuple, python_ast.List)):
            # e.g. X_train, X_test, y_train, y_test = train_test_split(X, y)
            for element in targets.elts:
                if isinstance(element, python_ast.Name):
                    self.variables[element.id] = _VarInfo(
                        kind=value_info.kind
                        if value_info.kind == "data"
                        else "other",
                        sources=set(value_info.sources),
                    )
        # Calls evaluated for side effects (e.g. model.fit inside assign).
        self._visit_calls_in(node.value)

    def _visit_calls_in(self, expr: python_ast.expr) -> None:
        """Process every call in an expression tree for side effects
        (training and metric calls may be nested, e.g. inside print())."""
        for node in python_ast.walk(expr):
            if isinstance(node, python_ast.Call):
                self._visit_call_expr(node)

    def _visit_call_expr(self, node: python_ast.Call) -> None:
        func = node.func
        if isinstance(func, python_ast.Attribute) and self.kb.is_train_method(
            func.attr
        ):
            base = func.value
            if isinstance(base, python_ast.Name):
                info = self.variables.get(base.id)
                if info is not None and info.kind == "model" and info.model:
                    sources: set[str] = set()
                    for arg in node.args:
                        sources |= self._evaluate(arg).sources
                    for source in sorted(sources):
                        if source not in info.model.training_datasets:
                            info.model.training_datasets.append(source)
                    info.model.trained = True
                    self.last_trained = info.model
        func_name = self._call_name(func)
        if func_name and self.kb.is_metric(func_name):
            target = self._metric_target(node) or self.last_trained
            if target is not None and func_name not in target.metrics:
                target.metrics.append(func_name)

    # ------------------------------------------------------------------
    def _evaluate(self, node: python_ast.expr) -> _VarInfo:
        if isinstance(node, python_ast.Name):
            return self.variables.get(node.id, _VarInfo("other"))
        if isinstance(node, python_ast.Call):
            return self._evaluate_call(node)
        if isinstance(node, python_ast.Subscript):
            return self._derive_data(self._evaluate(node.value))
        if isinstance(node, python_ast.Attribute):
            inner = self._evaluate(node.value)
            if inner.kind == "data":
                return self._derive_data(inner)
            return _VarInfo("other", sources=set(inner.sources))
        if isinstance(node, python_ast.BinOp):
            left = self._evaluate(node.left)
            right = self._evaluate(node.right)
            return _VarInfo("data" if left.kind == "data" or right.kind == "data"
                            else "other", sources=left.sources | right.sources)
        if isinstance(node, (python_ast.Tuple, python_ast.List)):
            sources: set[str] = set()
            kind = "other"
            for element in node.elts:
                info = self._evaluate(element)
                sources |= info.sources
                if info.kind in ("data", "model"):
                    kind = "data"
            return _VarInfo(kind, sources=sources)
        return _VarInfo("other")

    def _evaluate_call(self, node: python_ast.Call) -> _VarInfo:
        func = node.func
        func_name = self._call_name(func)

        # Data loaders: pd.read_csv("x.csv"), pd.read_sql(...), ...
        if func_name:
            loader = self.kb.is_data_loader(func_name)
            if loader is not None:
                kind, arg_index = loader
                source = self._literal_arg(node, arg_index) or f"<dynamic:{func_name}>"
                dataset = self._dataset_by_source.get(source)
                if dataset is None:
                    dataset = DetectedDataset(kind=kind, source=source)
                    self._dataset_by_source[source] = dataset
                    self.datasets.append(dataset)
                return _VarInfo("data", sources={source})

        # Model/transformer constructors.
        if func_name:
            module_hint = self._module_hint(func)
            role = self.kb.classify_constructor(func_name, module_hint)
            if role == "model":
                model = DetectedModel(
                    variable="?",
                    class_name=func_name,
                    hyperparameters=self._literal_kwargs(node),
                )
                # The caller (assign) binds the variable name.
                info = _VarInfo("model", class_name=func_name, model=model)
                self.models.append(model)
                return info
            if role == "transformer":
                return _VarInfo("other")

        # Method calls on data propagate data-ness (df.drop(...), df.fillna()).
        if isinstance(func, python_ast.Attribute):
            inner = self._evaluate(func.value)
            if inner.kind == "data":
                return self._derive_data(inner)
            if inner.kind == "model":
                # model.predict(X) → predictions derived from the model.
                out = _VarInfo("other", sources=set(inner.sources))
                out.model = inner.model
                return out
        # train_test_split and friends: union of argument sources.
        sources = set()
        for arg in node.args:
            sources |= self._evaluate(arg).sources
        if sources:
            return _VarInfo("data", sources=sources)
        return _VarInfo("other")

    def _derive_data(self, inner: _VarInfo) -> _VarInfo:
        return _VarInfo("data", sources=set(inner.sources))

    # ------------------------------------------------------------------
    def _call_name(self, func: python_ast.expr) -> str | None:
        if isinstance(func, python_ast.Name):
            # Resolve from-import aliases back to the original symbol.
            return self.from_import_names.get(func.id, func.id)
        if isinstance(func, python_ast.Attribute):
            return func.attr
        return None

    def _module_hint(self, func: python_ast.expr) -> str | None:
        if isinstance(func, python_ast.Name):
            return self.from_imports.get(func.id)
        if isinstance(func, python_ast.Attribute):
            parts = []
            cursor = func.value
            while isinstance(cursor, python_ast.Attribute):
                parts.append(cursor.attr)
                cursor = cursor.value
            if isinstance(cursor, python_ast.Name):
                root = self.import_aliases.get(cursor.id, cursor.id)
                return ".".join([root] + list(reversed(parts)))
        return None

    def _literal_arg(self, node: python_ast.Call, index: int) -> str | None:
        if index < len(node.args):
            arg = node.args[index]
            if isinstance(arg, python_ast.Constant) and isinstance(
                arg.value, str
            ):
                return arg.value
        return None

    def _literal_kwargs(self, node: python_ast.Call) -> dict[str, object]:
        out: dict[str, object] = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            if isinstance(keyword.value, python_ast.Constant):
                out[keyword.arg] = keyword.value.value
        return out

    def _metric_target(self, node: python_ast.Call) -> DetectedModel | None:
        for arg in node.args:
            info = self._evaluate(arg)
            if info.model is not None:
                return info.model
        return None
