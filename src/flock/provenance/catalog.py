"""The provenance catalog (the Apache Atlas stand-in).

Stores all provenance information and acts as the bridge between the SQL
and Python provenance modules (challenge C3): both register entities by
qualified name here, so a Python script's training dataset and a DBMS table
resolve to the *same* entity and cross-system lineage falls out of the
graph. All registrations are versioned: re-registering a qualified name
creates a new version entity chained to its predecessor (challenge C1's
temporal dimension).
"""

from __future__ import annotations

import threading
from typing import Any

from flock.provenance.model import (
    Entity,
    EntityType,
    ProvenanceEdge,
    ProvenanceGraph,
    Relation,
)


class ProvenanceCatalog:
    """A thread-safe, versioned registry over a ProvenanceGraph."""

    def __init__(self) -> None:
        self.graph = ProvenanceGraph()
        self._lock = threading.RLock()
        # qualified name → list of entity ids (version chain, oldest first)
        self._by_name: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        entity_type: EntityType,
        name: str,
        properties: dict[str, Any] | None = None,
        new_version: bool = False,
    ) -> Entity:
        """Register (or look up) an entity by qualified name.

        With ``new_version=True`` a fresh version is appended to the chain
        and linked ``PRECEDES`` from the previous version; otherwise the
        latest existing version is returned unchanged.
        """
        qualified = f"{entity_type.value.lower()}:{name.lower()}"
        with self._lock:
            chain = self._by_name.get(qualified)
            if chain and not new_version:
                return self.graph.entity(chain[-1])
            version = len(chain) + 1 if chain else 1
            entity = Entity(
                entity_id=self.graph.new_entity_id(entity_type.value.lower()),
                entity_type=entity_type,
                name=name,
                version=version,
                properties=dict(properties or {}),
            )
            self.graph.add_entity(entity)
            if chain:
                self.graph.add_edge(
                    ProvenanceEdge(chain[-1], entity.entity_id, Relation.PRECEDES)
                )
            self._by_name.setdefault(qualified, []).append(entity.entity_id)
            return entity

    def link(
        self,
        src: Entity,
        dst: Entity,
        relation: Relation,
        properties: dict[str, Any] | None = None,
    ) -> ProvenanceEdge:
        with self._lock:
            return self.graph.add_edge(
                ProvenanceEdge(
                    src.entity_id,
                    dst.entity_id,
                    relation,
                    dict(properties or {}),
                )
            )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find(self, entity_type: EntityType, name: str) -> Entity | None:
        """The latest version registered under this qualified name."""
        qualified = f"{entity_type.value.lower()}:{name.lower()}"
        with self._lock:
            chain = self._by_name.get(qualified)
            if not chain:
                return None
            return self.graph.entity(chain[-1])

    def versions_of(self, entity_type: EntityType, name: str) -> list[Entity]:
        qualified = f"{entity_type.value.lower()}:{name.lower()}"
        with self._lock:
            chain = self._by_name.get(qualified, [])
            return [self.graph.entity(eid) for eid in chain]

    def search(self, entity_type: EntityType) -> list[Entity]:
        return self.graph.entities(entity_type)

    # ------------------------------------------------------------------
    # Cross-system queries (the point of the bridge)
    # ------------------------------------------------------------------
    def models_depending_on_column(
        self, table_name: str, column_name: str
    ) -> list[Entity]:
        """Models whose training lineage reaches the given DB column —
        the paper's C3 motivating example (invalidate models on schema
        change).

        The walk follows incoming edges but never *through* container
        entities (TABLE/TABLE_VERSION): a model that merely trained on the
        same table is not a dependant of this particular column.
        """
        column = self.find(EntityType.COLUMN, f"{table_name}.{column_name}")
        if column is None:
            return []
        containers = {EntityType.TABLE, EntityType.TABLE_VERSION}
        seen = {column.entity_id}
        frontier = [column.entity_id]
        hits: list[Entity] = []
        while frontier:
            next_frontier: list[str] = []
            for node in frontier:
                for edge in self.graph.edges(dst_id=node):
                    src = edge.src_id
                    if src in seen:
                        continue
                    seen.add(src)
                    entity = self.graph.entity(src)
                    if entity.entity_type in (
                        EntityType.MODEL,
                        EntityType.MODEL_VERSION,
                    ):
                        hits.append(entity)
                    if entity.entity_type not in containers:
                        next_frontier.append(src)
            frontier = next_frontier
        return hits

    @property
    def size(self) -> int:
        return self.graph.size

    def stats(self) -> dict[str, int]:
        return {
            "nodes": self.graph.node_count,
            "edges": self.graph.edge_count,
            "size": self.graph.size,
        }
