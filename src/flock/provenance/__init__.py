"""flock.provenance — end-to-end provenance for EGML workloads (§4.2).

Three modules mirroring the paper's solution:

- :mod:`flock.provenance.model` — the polymorphic + temporal provenance data
  model (challenge C1);
- :mod:`flock.provenance.sql_capture` — eager and lazy SQL capture
  (challenge C2, playing the role Apache Calcite plays in the paper);
- :mod:`flock.provenance.py_capture` — Python static-analysis capture with
  an ML-API knowledge base;
- :mod:`flock.provenance.catalog` — the versioned catalog bridging the two
  (challenge C3, the Apache Atlas stand-in);
- :mod:`flock.provenance.compress` — compression/summarization keeping the
  provenance graph tractable.
"""

from flock.provenance.catalog import ProvenanceCatalog
from flock.provenance.compress import compress_provenance
from flock.provenance.model import Entity, EntityType, ProvenanceEdge, ProvenanceGraph
from flock.provenance.py_capture import PythonProvenanceCapture, ScriptAnalysis
from flock.provenance.sql_capture import SQLProvenanceCapture

__all__ = [
    "Entity",
    "EntityType",
    "ProvenanceCatalog",
    "ProvenanceEdge",
    "ProvenanceGraph",
    "PythonProvenanceCapture",
    "SQLProvenanceCapture",
    "ScriptAnalysis",
    "compress_provenance",
]
