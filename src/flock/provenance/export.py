"""Provenance graph export: JSON interchange and Graphviz DOT.

The catalog is the system of record; exports exist for the two things
regulators and engineers actually do with provenance — hand it to another
system (JSON) and look at it (DOT).
"""

from __future__ import annotations

import json
from pathlib import Path

from flock.errors import ProvenanceError
from flock.provenance.model import (
    Entity,
    EntityType,
    ProvenanceEdge,
    ProvenanceGraph,
    Relation,
)

FORMAT_VERSION = 1

_DOT_COLORS = {
    EntityType.TABLE: "lightblue",
    EntityType.TABLE_VERSION: "azure",
    EntityType.COLUMN: "lightcyan",
    EntityType.QUERY: "lightyellow",
    EntityType.SCRIPT: "lightyellow",
    EntityType.DATASET: "lightgreen",
    EntityType.MODEL: "lightpink",
    EntityType.MODEL_VERSION: "pink",
    EntityType.HYPERPARAMETER: "lavender",
    EntityType.METRIC: "lavender",
    EntityType.TRAINING_RUN: "wheat",
    EntityType.FEATURE: "lightcyan",
    EntityType.POLICY: "gray90",
    EntityType.DECISION: "gray80",
}


def graph_to_json(graph: ProvenanceGraph) -> dict:
    """A JSON-compatible dict of the whole graph."""
    return {
        "format_version": FORMAT_VERSION,
        "entities": [
            {
                "entity_id": e.entity_id,
                "entity_type": e.entity_type.value,
                "name": e.name,
                "version": e.version,
                "properties": _jsonable(e.properties),
                "created_at": e.created_at,
            }
            for e in graph.entities()
        ],
        "edges": [
            {
                "src_id": edge.src_id,
                "dst_id": edge.dst_id,
                "relation": edge.relation.value,
                "properties": _jsonable(edge.properties),
            }
            for edge in graph.edges()
        ],
    }


def graph_from_json(payload: dict) -> ProvenanceGraph:
    """Rebuild a graph from :func:`graph_to_json` output."""
    if payload.get("format_version") != FORMAT_VERSION:
        raise ProvenanceError(
            f"unsupported provenance export version "
            f"{payload.get('format_version')!r}"
        )
    graph = ProvenanceGraph()
    for e in payload["entities"]:
        graph.add_entity(
            Entity(
                entity_id=e["entity_id"],
                entity_type=EntityType(e["entity_type"]),
                name=e["name"],
                version=e["version"],
                properties=dict(e["properties"]),
                created_at=e["created_at"],
            )
        )
    for edge in payload["edges"]:
        graph.add_edge(
            ProvenanceEdge(
                edge["src_id"],
                edge["dst_id"],
                Relation(edge["relation"]),
                dict(edge["properties"]),
            )
        )
    return graph


def save_provenance(graph: ProvenanceGraph, path: str | Path) -> None:
    Path(path).write_text(json.dumps(graph_to_json(graph)))


def load_provenance(path: str | Path) -> ProvenanceGraph:
    return graph_from_json(json.loads(Path(path).read_text()))


def graph_to_dot(
    graph: ProvenanceGraph,
    max_entities: int | None = None,
) -> str:
    """Graphviz DOT text (optionally truncated for readability)."""
    entities = graph.entities()
    if max_entities is not None:
        entities = entities[:max_entities]
    included = {e.entity_id for e in entities}
    lines = [
        "digraph provenance {",
        "  rankdir=LR;",
        "  node [shape=box, style=filled];",
    ]
    for e in entities:
        label = _escape(f"{e.entity_type.value}\\n{e.name}"
                        + (f" v{e.version}" if e.version > 1 else ""))
        color = _DOT_COLORS.get(e.entity_type, "white")
        lines.append(
            f'  "{e.entity_id}" [label="{label}", fillcolor="{color}"];'
        )
    for edge in graph.edges():
        if edge.src_id in included and edge.dst_id in included:
            lines.append(
                f'  "{edge.src_id}" -> "{edge.dst_id}" '
                f'[label="{edge.relation.value}"];'
            )
    lines.append("}")
    return "\n".join(lines)


def _jsonable(properties: dict) -> dict:
    out = {}
    for key, value in properties.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, dict):
            out[key] = _jsonable(value)
        elif isinstance(value, (list, tuple)):
            out[key] = [
                v if isinstance(v, (str, int, float, bool)) else repr(v)
                for v in value
            ]
        else:
            out[key] = repr(value)
    return out


def _escape(text: str) -> str:
    return text.replace('"', '\\"')
