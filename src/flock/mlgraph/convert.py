"""Fitted flock.ml estimators → model graphs.

:func:`to_graph` is the deployment boundary: the training environment hands
the registry a :class:`~flock.mlgraph.graph.Graph`, never live Python
objects, so the scoring behaviour is fixed at conversion time (the paper's
"packaging the entire inference pipeline ... in a way that preserves the
exact behavior crafted by the data scientist", §2).
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from flock.errors import GraphError
from flock.ml.ensemble import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from flock.ml.linear import LinearRegression, LogisticRegression, RidgeRegression
from flock.ml.pipeline import ColumnTransformer, Pipeline
from flock.ml.preprocess import (
    MinMaxScaler,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
    TextHasher,
)
from flock.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeNode
from flock.mlgraph.graph import Graph, Node, TensorSpec


def tree_to_dict(node: TreeNode) -> dict:
    """Serialize a fitted TreeNode recursively."""
    if node.is_leaf:
        assert node.value is not None
        return {"value": [float(v) for v in node.value], "left": None, "right": None}
    assert node.left is not None and node.right is not None
    return {
        "feature": int(node.feature),
        "threshold": float(node.threshold),
        "left": tree_to_dict(node.left),
        "right": tree_to_dict(node.right),
    }


class _GraphBuilder:
    """Accumulates nodes with unique tensor names."""

    def __init__(self, inputs: list[TensorSpec]):
        self.inputs = inputs
        self.nodes: list[Node] = []
        self._counter = itertools.count()

    def fresh(self, hint: str) -> str:
        return f"{hint}_{next(self._counter)}"

    def emit(self, op_type: str, inputs: list[str], attrs: dict | None = None,
             hint: str | None = None) -> str:
        out = self.fresh(hint or op_type)
        self.nodes.append(Node(op_type, inputs, [out], attrs or {}))
        return out


def to_graph(
    estimator,
    feature_names: Sequence[str],
    name: str = "model",
    feature_types: Sequence[str] | None = None,
) -> Graph:
    """Convert a fitted estimator or Pipeline to a model graph.

    *feature_names* are the model's named inputs (one per raw feature
    column); *feature_types* defaults to all-'float'. Pipelines may start
    with a ColumnTransformer over mixed float/text columns.
    """
    if not getattr(estimator, "is_fitted", False):
        raise GraphError("estimator must be fitted before conversion")
    types = list(feature_types) if feature_types else ["float"] * len(feature_names)
    if len(types) != len(feature_names):
        raise GraphError("feature_types length must match feature_names")
    inputs = [TensorSpec(n, t) for n, t in zip(feature_names, types)]
    builder = _GraphBuilder(inputs)

    if isinstance(estimator, Pipeline):
        matrix = _convert_transformers(builder, estimator.steps[:-1], inputs)
        final = estimator.final_estimator
    else:
        matrix = _pack_floats(builder, inputs)
        final = estimator

    outputs, output_kinds = _convert_model(builder, final, matrix)
    return Graph(
        name=name,
        inputs=inputs,
        outputs=outputs,
        nodes=builder.nodes,
        output_kinds=output_kinds,
        metadata={"estimator": type(final).__name__},
    )


# ----------------------------------------------------------------------
# Featurizer conversion
# ----------------------------------------------------------------------
def _pack_floats(builder: _GraphBuilder, inputs: list[TensorSpec]) -> str:
    float_names = [s.name for s in inputs if s.dtype in ("float", "int")]
    if not float_names:
        raise GraphError("model has no numeric inputs to pack")
    return builder.emit("pack", float_names, hint="features")


def _convert_transformers(
    builder: _GraphBuilder,
    steps: list[tuple[str, object]],
    inputs: list[TensorSpec],
) -> str:
    """Convert pipeline transformer steps; returns the feature-matrix tensor."""
    matrix: str | None = None
    for index, (step_name, transformer) in enumerate(steps):
        if isinstance(transformer, ColumnTransformer):
            if index != 0:
                raise GraphError(
                    "ColumnTransformer is only supported as the first step"
                )
            matrix = _convert_column_transformer(builder, transformer, inputs)
            continue
        if matrix is None:
            matrix = _pack_floats(builder, inputs)
        matrix = _convert_matrix_transformer(builder, transformer, matrix)
    if matrix is None:
        matrix = _pack_floats(builder, inputs)
    return matrix


def _convert_matrix_transformer(
    builder: _GraphBuilder, transformer, matrix: str
) -> str:
    if isinstance(transformer, StandardScaler):
        return builder.emit(
            "scale",
            [matrix],
            {"offset": transformer.mean_, "divisor": transformer.scale_},
        )
    if isinstance(transformer, MinMaxScaler):
        return builder.emit(
            "scale",
            [matrix],
            {"offset": transformer.min_, "divisor": transformer.range_},
        )
    if isinstance(transformer, SimpleImputer):
        return builder.emit(
            "impute", [matrix], {"statistics": transformer.statistics_}
        )
    raise GraphError(
        f"cannot convert transformer {type(transformer).__name__} on a "
        f"feature matrix"
    )


def _convert_column_transformer(
    builder: _GraphBuilder, ct: ColumnTransformer, inputs: list[TensorSpec]
) -> str:
    blocks: list[str] = []
    for block_name, transformer, columns in ct.transformers:
        column_specs = [inputs[i] for i in columns]
        if isinstance(transformer, OneHotEncoder):
            encoded = []
            for spec, categories in zip(column_specs, transformer.categories_):
                encoded.append(
                    builder.emit(
                        "onehot",
                        [spec.name],
                        {"categories": list(categories.tolist())},
                        hint=f"onehot_{spec.name}",
                    )
                )
            blocks.append(
                encoded[0]
                if len(encoded) == 1
                else builder.emit("concat", encoded)
            )
            continue
        if isinstance(transformer, TextHasher):
            hashed = [
                builder.emit(
                    "text_hash",
                    [spec.name],
                    {
                        "n_buckets": transformer.n_buckets,
                        "lowercase": transformer.lowercase,
                    },
                    hint=f"hash_{spec.name}",
                )
                for spec in column_specs
            ]
            blocks.append(
                hashed[0] if len(hashed) == 1 else builder.emit("concat", hashed)
            )
            continue
        # Numeric block: pack the named columns, then apply the transformer.
        packed = builder.emit(
            "pack", [s.name for s in column_specs], hint=f"block_{block_name}"
        )
        blocks.append(_convert_matrix_transformer(builder, transformer, packed))
    if len(blocks) == 1:
        return blocks[0]
    return builder.emit("concat", blocks)


# ----------------------------------------------------------------------
# Model conversion
# ----------------------------------------------------------------------
def _convert_model(
    builder: _GraphBuilder, model, matrix: str
) -> tuple[list[TensorSpec], dict[str, str]]:
    if isinstance(model, (LinearRegression, RidgeRegression)):
        score = builder.emit(
            "linear",
            [matrix],
            {"weights": model.coef_, "bias": model.intercept_},
            hint="score",
        )
        return [TensorSpec(score, "float")], {score: "score"}

    if isinstance(model, LogisticRegression):
        score = builder.emit(
            "linear",
            [matrix],
            {"weights": model.coef_, "bias": model.intercept_},
            hint="score",
        )
        return _classifier_head(builder, score, model.classes_)

    if isinstance(model, (DecisionTreeRegressor,)):
        score = builder.emit(
            "tree_ensemble",
            [matrix],
            {"trees": [tree_to_dict(model.tree_)], "aggregation": "average"},
            hint="score",
        )
        return [TensorSpec(score, "float")], {score: "score"}

    if isinstance(model, GradientBoostingRegressor):
        score = builder.emit(
            "tree_ensemble",
            [matrix],
            {
                "trees": [tree_to_dict(t.tree_) for t in model.estimators_],
                "aggregation": "sum",
                "scale": model.learning_rate,
                "init": model.init_,
            },
            hint="score",
        )
        return [TensorSpec(score, "float")], {score: "score"}

    if isinstance(model, RandomForestRegressor):
        score = builder.emit(
            "tree_ensemble",
            [matrix],
            {
                "trees": [tree_to_dict(t.tree_) for t in model.estimators_],
                "aggregation": "average",
            },
            hint="score",
        )
        return [TensorSpec(score, "float")], {score: "score"}

    if isinstance(model, GradientBoostingClassifier):
        score = builder.emit(
            "tree_ensemble",
            [matrix],
            {
                "trees": [tree_to_dict(t.tree_) for t in model.estimators_],
                "aggregation": "sum",
                "scale": model.learning_rate,
                "init": model.init_,
            },
            hint="score",
        )
        return _classifier_head(builder, score, model.classes_)

    if isinstance(model, (DecisionTreeClassifier, RandomForestClassifier)):
        if isinstance(model, DecisionTreeClassifier):
            trees = [tree_to_dict(model.tree_)]
        else:
            trees = [tree_to_dict(t.tree_) for t in model.estimators_]
        proba_matrix = builder.emit(
            "tree_ensemble",
            [matrix],
            {"trees": trees, "aggregation": "average"},
            hint="proba_matrix",
        )
        index = builder.emit("argmax", [proba_matrix], hint="label_idx")
        label = builder.emit(
            "label_map",
            [index],
            {"labels": [_plain_label(c) for c in model.classes_]},
            hint="label",
        )
        outputs = [TensorSpec(label, _label_dtype(model.classes_))]
        kinds = {label: "label"}
        if len(model.classes_) == 2:
            probability = builder.emit(
                "pick_column", [proba_matrix], {"index": 1}, hint="probability"
            )
            outputs.append(TensorSpec(probability, "float"))
            kinds[probability] = "probability"
        return outputs, kinds

    raise GraphError(f"cannot convert model {type(model).__name__} to a graph")


def _classifier_head(
    builder: _GraphBuilder, score: str, classes: np.ndarray
) -> tuple[list[TensorSpec], dict[str, str]]:
    """score → probability → label for binary margin classifiers."""
    probability = builder.emit("sigmoid", [score], hint="probability")
    index = builder.emit("threshold", [probability], {"cutoff": 0.5}, hint="idx")
    label = builder.emit(
        "label_map",
        [index],
        {"labels": [_plain_label(c) for c in classes]},
        hint="label",
    )
    outputs = [
        TensorSpec(probability, "float"),
        TensorSpec(label, _label_dtype(classes)),
        TensorSpec(score, "float"),
    ]
    kinds = {probability: "probability", label: "label", score: "score"}
    return outputs, kinds


def _plain_label(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return str(value) if not isinstance(value, (int, float)) else value


def _label_dtype(classes: np.ndarray) -> str:
    if all(isinstance(_plain_label(c), int) for c in classes):
        return "int"
    return "text"
