"""The reference graph runtime (the ONNX Runtime stand-in).

Two execution regimes, shared op implementations:

- ``batch``: one vectorized pass over the whole feed — the regime of
  standalone ONNX Runtime and of in-DBMS batch scoring;
- ``per_row``: rows are fed one at a time — the regime of row-oriented
  Python UDF scoring, whose per-call dispatch overhead is exactly what
  Figure 4's SONNX/SONNX-ext columns eliminate.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from flock.errors import GraphError
from flock.mlgraph.graph import Graph
from flock.mlgraph.ops import lookup


@dataclass
class RuntimeStats:
    """Counters for introspection and benchmarking."""

    runs: int = 0
    rows: int = 0
    node_executions: int = 0
    per_op: dict[str, int] = field(default_factory=dict)

    def note(self, op_type: str) -> None:
        self.node_executions += 1
        self.per_op[op_type] = self.per_op.get(op_type, 0) + 1

    def merge(self, other: "RuntimeStats") -> None:
        self.runs += other.runs
        self.rows += other.rows
        self.node_executions += other.node_executions
        for op_type, count in other.per_op.items():
            self.per_op[op_type] = self.per_op.get(op_type, 0) + count


class GraphRuntime:
    """Executes model graphs against named input feeds.

    One runtime instance is shared by every concurrent PREDICT under the
    serving layer, so per-run counters accumulate into a run-local
    :class:`RuntimeStats` and merge into :attr:`stats` under a lock only
    when the run completes.
    """

    def __init__(self) -> None:
        self.stats = RuntimeStats()
        self._stats_lock = threading.Lock()
        # Topological order per graph object: morsel-parallel PREDICT runs
        # the same graph once per morsel, and re-deriving the topo order on
        # every run would be pure per-morsel overhead. Keyed by id() with a
        # weakref guard against id reuse after collection.
        self._topo_cache: dict[int, tuple[object, list]] = {}
        self._topo_lock = threading.Lock()

    def _toposorted(self, graph: Graph) -> list:
        import weakref

        key = id(graph)
        with self._topo_lock:
            entry = self._topo_cache.get(key)
            if entry is not None and entry[0]() is graph:
                return entry[1]
        topo = list(graph.toposorted())
        try:
            ref = weakref.ref(graph)
        except TypeError:  # graph type without weakref support
            return topo
        with self._topo_lock:
            if len(self._topo_cache) > 256:  # bound a long-lived runtime
                self._topo_cache.clear()
            self._topo_cache[key] = (ref, topo)
        return topo

    def run(
        self,
        graph: Graph,
        feeds: dict[str, np.ndarray],
        mode: str = "batch",
    ) -> dict[str, np.ndarray]:
        """Execute *graph* and return its named outputs.

        Every feed must be a 1-D array of the same length (one value per
        row); outputs are 1-D arrays (or 2-D for matrix-valued outputs).
        """
        missing = [n for n in graph.input_names if n not in feeds]
        if missing:
            raise GraphError(f"missing graph inputs: {missing}")
        lengths = {len(np.asarray(feeds[n])) for n in graph.input_names}
        if len(lengths) > 1:
            raise GraphError(f"ragged input feeds: lengths {sorted(lengths)}")
        n_rows = lengths.pop() if lengths else 0

        from flock.observability import get_tracer, metrics

        local = RuntimeStats()
        with get_tracer().span(
            "mlgraph.run",
            {"mode": mode, "graph": getattr(graph, "name", "?")},
        ) as span:
            if mode == "batch":
                result = self._run_batch(graph, feeds, local)
            elif mode == "per_row":
                result = self._run_per_row(graph, feeds, n_rows, local)
            else:
                raise GraphError(f"unknown execution mode {mode!r}")
            span.set_attribute("rows", n_rows)
        local.runs = 1
        local.rows = n_rows
        with self._stats_lock:
            self.stats.merge(local)
        registry = metrics()
        registry.counter("mlgraph.runs").inc()
        registry.counter("mlgraph.node_executions").inc(
            local.node_executions
        )
        registry.histogram("mlgraph.run_rows").observe(n_rows)
        return result

    # ------------------------------------------------------------------
    def _run_batch(
        self, graph: Graph, feeds: dict[str, np.ndarray],
        stats: RuntimeStats,
    ) -> dict[str, np.ndarray]:
        tensors: dict[str, np.ndarray] = {
            name: np.asarray(feeds[name]) for name in graph.input_names
        }
        for node in self._toposorted(graph):
            impl = lookup(node.op_type)
            inputs = [tensors[name] for name in node.inputs]
            outputs = impl(node.attrs, inputs)
            if len(outputs) != len(node.outputs):
                raise GraphError(
                    f"operator {node.op_type} produced {len(outputs)} outputs, "
                    f"expected {len(node.outputs)}"
                )
            for name, value in zip(node.outputs, outputs):
                tensors[name] = value
            stats.note(node.op_type)
        return {name: tensors[name] for name in graph.output_names}

    def _run_per_row(
        self, graph: Graph, feeds: dict[str, np.ndarray], n_rows: int,
        stats: RuntimeStats,
    ) -> dict[str, np.ndarray]:
        collected: dict[str, list] = {name: [] for name in graph.output_names}
        arrays = {name: np.asarray(feeds[name]) for name in graph.input_names}
        for i in range(n_rows):
            row_feed = {name: arrays[name][i : i + 1] for name in arrays}
            row_out = self._run_batch(graph, row_feed, stats)
            for name, value in row_out.items():
                collected[name].append(value)
        out: dict[str, np.ndarray] = {}
        for name, chunks in collected.items():
            if chunks:
                out[name] = np.concatenate(chunks)
            else:
                out[name] = np.empty(0)
        return out
