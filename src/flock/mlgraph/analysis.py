"""Dataflow analysis over model graphs.

:func:`used_inputs` computes which graph inputs can actually influence the
outputs, by propagating column-level provenance forward through each
operator. Zero linear weights and never-split-on tree features break the
dependence — this is the *model sparsity* analysis behind the paper's
"automatic pruning (projection) of unused input feature-columns" (§4.1).
"""

from __future__ import annotations

import numpy as np

from flock.errors import GraphError
from flock.mlgraph.graph import Graph, Node
from flock.mlgraph.ops.trees import tree_dict_features

# A tensor's provenance: one frozenset of input names per column (vectors
# have width 1).
Sources = list[frozenset[str]]


def used_inputs(graph: Graph, weight_tolerance: float = 0.0) -> set[str]:
    """Names of graph inputs that influence at least one output.

    ``weight_tolerance`` treats |weight| <= tolerance as zero, so callers
    can combine pruning with lossy compression.
    """
    provenance: dict[str, Sources] = {
        spec.name: [frozenset([spec.name])] for spec in graph.inputs
    }
    for node in graph.toposorted():
        provenance_inputs = [provenance[name] for name in node.inputs]
        outputs = _propagate(node, provenance_inputs, weight_tolerance)
        for name, sources in zip(node.outputs, outputs):
            provenance[name] = sources
    used: set[str] = set()
    for name in graph.output_names:
        for column_sources in provenance[name]:
            used |= column_sources
    return used


def unused_inputs(graph: Graph, weight_tolerance: float = 0.0) -> set[str]:
    return set(graph.input_names) - used_inputs(graph, weight_tolerance)


_PASSTHROUGH = {
    "scale",
    "impute",
    "sigmoid",
    "softmax",
    "relu",
    "clip",
}


def _propagate(
    node: Node, inputs: list[Sources], tolerance: float
) -> list[Sources]:
    op = node.op_type
    if op in _PASSTHROUGH:
        return [inputs[0]]
    if op == "pack":
        return [[s for sources in inputs for s in sources]]
    if op == "concat":
        return [[s for sources in inputs for s in sources]]
    if op == "slice_columns":
        (matrix,) = inputs
        return [[matrix[i] for i in node.attrs["indices"]]]
    if op == "pick_column":
        (matrix,) = inputs
        return [[matrix[int(node.attrs["index"])]]]
    if op in ("add", "mul"):
        left, right = inputs
        width = max(len(left), len(right))
        out = []
        for i in range(width):
            a = left[i] if i < len(left) else left[-1]
            b = right[i] if i < len(right) else right[-1]
            out.append(a | b)
        return [out]
    if op == "linear":
        (matrix,) = inputs
        weights = np.asarray(node.attrs["weights"], dtype=np.float64)
        if weights.ndim == 1:
            weights = weights.reshape(-1, 1)
        d, k = weights.shape
        if d != len(matrix):
            raise GraphError(
                f"linear weights expect {d} columns, matrix has {len(matrix)}"
            )
        out = []
        for col in range(k):
            sources: frozenset[str] = frozenset()
            for row in range(d):
                if abs(weights[row, col]) > tolerance:
                    sources |= matrix[row]
            out.append(sources)
        return [out]
    if op == "tree_ensemble":
        (matrix,) = inputs
        features: set[int] = set()
        for tree in node.attrs["trees"]:
            features |= tree_dict_features(tree)
        sources = frozenset()
        for f in features:
            if f < len(matrix):
                sources |= matrix[f]
        width = _tree_output_width(node)
        return [[sources] * width]
    if op in ("onehot", "text_hash"):
        (column,) = inputs
        union = frozenset()
        for s in column:
            union |= s
        width = (
            len(node.attrs["categories"])
            if op == "onehot"
            else int(node.attrs["n_buckets"])
        )
        return [[union] * width]
    if op in ("argmax", "threshold", "label_map"):
        (operand,) = inputs
        union = frozenset()
        for s in operand:
            union |= s
        return [[union]]
    raise GraphError(f"no provenance rule for operator {op!r}")


def _tree_output_width(node: Node) -> int:
    tree = node.attrs["trees"][0]
    cursor = tree
    while cursor.get("left") is not None:
        cursor = cursor["left"]
    width = len(cursor["value"])
    return 1 if width == 1 else width


def graph_size(graph: Graph) -> dict[str, int]:
    """Rough complexity metrics: node count, tree nodes, weight count."""
    from flock.mlgraph.ops.trees import tree_dict_nodes

    tree_nodes = 0
    weight_count = 0
    for node in graph.nodes:
        if node.op_type == "tree_ensemble":
            tree_nodes += sum(tree_dict_nodes(t) for t in node.attrs["trees"])
        elif node.op_type == "linear":
            weight_count += int(np.asarray(node.attrs["weights"]).size)
    return {
        "operators": len(graph.nodes),
        "tree_nodes": tree_nodes,
        "weights": weight_count,
    }
