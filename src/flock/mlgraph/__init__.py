"""flock.mlgraph — a portable model-graph IR with a reference runtime.

The ONNX / ONNX Runtime stand-in of the Flock architecture: fitted
:mod:`flock.ml` estimators convert into dataflow graphs of typed operators
("the most widely studied families of models can be uniformly represented",
§1); the runtime executes them standalone or embedded in the DBMS, in batch
(vectorized) or row-at-a-time (UDF-style) mode.
"""

from flock.mlgraph.analysis import used_inputs
from flock.mlgraph.convert import to_graph
from flock.mlgraph.graph import Graph, Node, TensorSpec
from flock.mlgraph.runtime import GraphRuntime
from flock.mlgraph.serialize import graph_from_dict, graph_to_dict, load_graph, save_graph

__all__ = [
    "Graph",
    "GraphRuntime",
    "Node",
    "TensorSpec",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "save_graph",
    "to_graph",
    "used_inputs",
]
