"""Linear-model operator."""

from __future__ import annotations

import numpy as np

from flock.mlgraph.ops import register


@register("linear")
def linear(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    """``X @ weights + bias``.

    ``weights`` is ``(d,)`` (vector output) or ``(d, k)``; ``bias`` is a
    scalar or ``(k,)``.
    """
    (matrix,) = inputs
    weights = np.asarray(attrs["weights"], dtype=np.float64)
    bias = np.asarray(attrs["bias"], dtype=np.float64)
    return [np.asarray(matrix, dtype=np.float64) @ weights + bias]
