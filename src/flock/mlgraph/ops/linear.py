"""Linear-model operator."""

from __future__ import annotations

import numpy as np

from flock.mlgraph.ops import register


@register("linear")
def linear(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    """``X @ weights + bias``.

    ``weights`` is ``(d,)`` (vector output) or ``(d, k)``; ``bias`` is a
    scalar or ``(k,)``.

    Computed with einsum rather than ``@``: BLAS picks different kernels
    (and therefore different float summation orders) by matrix shape, so
    ``(X @ W)[i]`` need not bit-match ``X[i:j] @ W``. einsum reduces each
    row with one fixed-order loop, making scoring invariant under row
    slicing — the property the morsel-parallel executor relies on for
    bit-identical parallel PREDICT results. It also releases the GIL, so
    concurrent morsels overlap.
    """
    (matrix,) = inputs
    weights = np.asarray(attrs["weights"], dtype=np.float64)
    bias = np.asarray(attrs["bias"], dtype=np.float64)
    matrix = np.asarray(matrix, dtype=np.float64)
    if weights.ndim == 1:
        return [np.einsum("nk,k->n", matrix, weights) + bias]
    return [np.einsum("nk,km->nm", matrix, weights) + bias]
