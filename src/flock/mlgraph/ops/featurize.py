"""Featurizer operators: scaling, imputation, one-hot, text hashing."""

from __future__ import annotations

import numpy as np

from flock.mlgraph.ops import register


@register("scale")
def scale(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    """(X - offset) / divisor per column (standard and min-max scaling)."""
    (matrix,) = inputs
    offset = np.asarray(attrs["offset"], dtype=np.float64)
    divisor = np.asarray(attrs["divisor"], dtype=np.float64)
    return [(np.asarray(matrix, dtype=np.float64) - offset) / divisor]


@register("impute")
def impute(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    """Replace NaNs with per-column statistics."""
    (matrix,) = inputs
    out = np.asarray(matrix, dtype=np.float64).copy()
    stats = np.asarray(attrs["statistics"], dtype=np.float64)
    mask = np.isnan(out)
    if mask.any():
        out[mask] = np.take(stats, np.nonzero(mask)[1])
    return [out]


@register("onehot")
def onehot(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    """One-hot encode a single (text/int) column; unknowns map to zeros."""
    (column,) = inputs
    categories = list(attrs["categories"])
    index = {v: k for k, v in enumerate(categories)}
    flat = np.asarray(column).reshape(-1)
    out = np.zeros((len(flat), len(categories)), dtype=np.float64)
    for i, v in enumerate(flat.tolist()):
        k = index.get(v)
        if k is not None:
            out[i, k] = 1.0
    return [out]


def _fnv1a(token: str) -> int:
    value = 2166136261
    for byte in token.encode("utf-8"):
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value


@register("text_hash")
def text_hash(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    """Bag-of-hashed-tokens featurization of a text column."""
    (column,) = inputs
    n_buckets = int(attrs["n_buckets"])
    lowercase = bool(attrs.get("lowercase", True))
    flat = np.asarray(column).reshape(-1)
    out = np.zeros((len(flat), n_buckets), dtype=np.float64)
    for i, text in enumerate(flat.tolist()):
        if text is None:
            continue
        text = str(text)
        if lowercase:
            text = text.lower()
        for token in text.split():
            out[i, _fnv1a(token) % n_buckets] += 1.0
    return [out]
