"""Tree-ensemble operator.

Trees are serialized as nested dicts: internal nodes have ``feature``,
``threshold``, ``left``, ``right``; leaves have ``value`` (a list —
length 1 for regression scores, class-probability vector otherwise).
The ensemble aggregates per the ``aggregation`` attribute:

- ``sum``: ``init + scale * Σ tree(x)``  (gradient boosting)
- ``average``: mean of tree outputs       (random forests)
"""

from __future__ import annotations

import numpy as np

from flock.errors import GraphError
from flock.mlgraph.ops import register


def eval_tree_dict(tree: dict, matrix: np.ndarray) -> np.ndarray:
    """Vectorized evaluation of one serialized tree: (n, len(value))."""
    width = _leaf_width(tree)
    out = np.zeros((matrix.shape[0], width))
    stack = [(tree, np.arange(matrix.shape[0], dtype=np.int64))]
    while stack:
        node, rows = stack.pop()
        if len(rows) == 0:
            continue
        if "value" in node and node.get("left") is None:
            out[rows] = np.asarray(node["value"], dtype=np.float64)
            continue
        go_left = matrix[rows, int(node["feature"])] <= float(node["threshold"])
        stack.append((node["left"], rows[go_left]))
        stack.append((node["right"], rows[~go_left]))
    return out


def _leaf_width(tree: dict) -> int:
    node = tree
    while node.get("left") is not None:
        node = node["left"]
    return len(node["value"])


def tree_dict_features(tree: dict) -> set[int]:
    """Feature indexes this serialized tree splits on."""
    if tree.get("left") is None:
        return set()
    return (
        {int(tree["feature"])}
        | tree_dict_features(tree["left"])
        | tree_dict_features(tree["right"])
    )


def tree_dict_nodes(tree: dict) -> int:
    if tree.get("left") is None:
        return 1
    return 1 + tree_dict_nodes(tree["left"]) + tree_dict_nodes(tree["right"])


@register("tree_ensemble")
def tree_ensemble(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    (matrix,) = inputs
    matrix = np.asarray(matrix, dtype=np.float64)
    trees = attrs["trees"]
    aggregation = attrs.get("aggregation", "sum")
    if not trees:
        raise GraphError("tree_ensemble has no trees")
    outputs = [eval_tree_dict(tree, matrix) for tree in trees]
    stacked = np.stack(outputs)
    if aggregation == "sum":
        scale = float(attrs.get("scale", 1.0))
        init = float(attrs.get("init", 0.0))
        combined = init + scale * stacked.sum(axis=0)
    elif aggregation == "average":
        combined = stacked.mean(axis=0)
    else:
        raise GraphError(f"unknown aggregation {aggregation!r}")
    if combined.shape[1] == 1:
        return [combined[:, 0]]
    return [combined]
