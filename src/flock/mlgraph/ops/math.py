"""Structural and element-wise operators."""

from __future__ import annotations

import numpy as np

from flock.errors import GraphError
from flock.mlgraph.ops import register


@register("pack")
def pack(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    """Stack column vectors into an ``(n, d)`` float matrix."""
    if not inputs:
        raise GraphError("pack needs at least one input column")
    columns = [np.asarray(c, dtype=np.float64).reshape(-1) for c in inputs]
    return [np.column_stack(columns)]


@register("slice_columns")
def slice_columns(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    """Select matrix columns by the ``indices`` attribute."""
    (matrix,) = inputs
    indices = list(attrs["indices"])
    return [matrix[:, indices]]


@register("pick_column")
def pick_column(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    """Extract one matrix column as a vector (``index`` attribute)."""
    (matrix,) = inputs
    return [matrix[:, int(attrs["index"])]]


@register("concat")
def concat(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    """Horizontally concatenate matrices/columns."""
    blocks = [
        b.reshape(-1, 1) if b.ndim == 1 else b for b in inputs
    ]
    return [np.hstack(blocks)]


@register("add")
def add(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    left, right = inputs
    return [left + right]


@register("mul")
def mul(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    left, right = inputs
    return [left * right]


@register("sigmoid")
def sigmoid(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    (z,) = inputs
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return [out]


@register("softmax")
def softmax(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    (z,) = inputs
    shifted = z - z.max(axis=1, keepdims=True)
    exp_z = np.exp(shifted)
    return [exp_z / exp_z.sum(axis=1, keepdims=True)]


@register("relu")
def relu(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    (z,) = inputs
    return [np.maximum(z, 0.0)]


@register("clip")
def clip(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    (z,) = inputs
    return [np.clip(z, attrs.get("lo"), attrs.get("hi"))]


@register("argmax")
def argmax(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    (matrix,) = inputs
    return [np.argmax(matrix, axis=1).astype(np.int64)]


@register("threshold")
def threshold(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    """1 where value >= ``cutoff`` (default 0.5), else 0."""
    (values,) = inputs
    cutoff = float(attrs.get("cutoff", 0.5))
    return [(np.asarray(values, dtype=np.float64) >= cutoff).astype(np.int64)]


@register("label_map")
def label_map(attrs: dict, inputs: list[np.ndarray]) -> list[np.ndarray]:
    """Map integer indexes to labels via the ``labels`` attribute."""
    (indexes,) = inputs
    labels = np.asarray(attrs["labels"], dtype=object)
    return [labels[np.asarray(indexes, dtype=np.int64)]]
