"""Operator registry for model graphs.

Each operator has a name and a batch implementation
``execute(attrs, inputs) -> outputs`` over numpy arrays. Row-at-a-time
execution is handled by the runtime (it slices rows and calls the same
implementations), so batch and per-row modes cannot diverge semantically.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from flock.errors import GraphError

OpImpl = Callable[[dict, list[np.ndarray]], list[np.ndarray]]

_REGISTRY: dict[str, OpImpl] = {}


def register(op_type: str) -> Callable[[OpImpl], OpImpl]:
    """Class decorator/function decorator registering an op implementation."""

    def wrap(impl: OpImpl) -> OpImpl:
        if op_type in _REGISTRY:
            raise GraphError(f"operator {op_type!r} registered twice")
        _REGISTRY[op_type] = impl
        return impl

    return wrap


def lookup(op_type: str) -> OpImpl:
    try:
        return _REGISTRY[op_type]
    except KeyError:
        raise GraphError(f"unknown operator {op_type!r}") from None


def registered_ops() -> list[str]:
    return sorted(_REGISTRY)


# Importing the op modules populates the registry.
from flock.mlgraph.ops import featurize, linear, math, trees  # noqa: E402,F401

__all__ = ["OpImpl", "lookup", "register", "registered_ops"]
