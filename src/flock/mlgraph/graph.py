"""Model graph structure: typed inputs, operator nodes, named tensors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from flock.errors import GraphError

VALID_DTYPES = ("float", "int", "text")


@dataclass(frozen=True)
class TensorSpec:
    """A named graph input or output.

    Inputs are column vectors: one spec per model feature (``dtype`` is
    'float', 'int' or 'text'). This column granularity is what lets the
    inference optimizer prune *input columns* rather than opaque blobs.
    """

    name: str
    dtype: str = "float"

    def __post_init__(self) -> None:
        if self.dtype not in VALID_DTYPES:
            raise GraphError(f"invalid tensor dtype {self.dtype!r}")


@dataclass
class Node:
    """One operator application: op_type, input/output tensor names, attrs."""

    op_type: str
    inputs: list[str]
    outputs: list[str]
    attrs: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"Node({self.op_type}: {', '.join(self.inputs)} -> "
            f"{', '.join(self.outputs)})"
        )


class Graph:
    """A validated dataflow graph.

    ``outputs`` name the tensors returned by execution; ``output_kinds``
    optionally tags each output ('score', 'probability', 'label') so
    consumers (the PREDICT binder) know what they are getting.
    """

    def __init__(
        self,
        name: str,
        inputs: list[TensorSpec],
        outputs: list[TensorSpec],
        nodes: list[Node],
        output_kinds: dict[str, str] | None = None,
        metadata: dict[str, Any] | None = None,
    ):
        self.name = name
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.nodes = list(nodes)
        self.output_kinds = dict(output_kinds or {})
        self.metadata = dict(metadata or {})
        self._validate()

    # ------------------------------------------------------------------
    @property
    def input_names(self) -> list[str]:
        return [spec.name for spec in self.inputs]

    @property
    def output_names(self) -> list[str]:
        return [spec.name for spec in self.outputs]

    def node_count(self) -> int:
        return len(self.nodes)

    def output_field_names(self) -> list[tuple[str, str]]:
        """``(field_name, tensor_name)`` pairs for consumers of this model.

        The field name is the output's *kind* ('probability', 'label',
        'score') when one is tagged and unique, else the raw tensor name.
        The PREDICT binder and the scorer both rely on this mapping, so it
        lives here rather than being duplicated.
        """
        pairs: list[tuple[str, str]] = []
        seen: set[str] = set()
        for spec in self.outputs:
            kind = self.output_kinds.get(spec.name)
            field_name = kind if kind and kind not in seen else spec.name
            seen.add(field_name)
            pairs.append((field_name, spec.name))
        return pairs

    def producer_of(self, tensor: str) -> Node | None:
        for node in self.nodes:
            if tensor in node.outputs:
                return node
        return None

    def consumers_of(self, tensor: str) -> list[Node]:
        return [node for node in self.nodes if tensor in node.inputs]

    def toposorted(self) -> list[Node]:
        """Nodes in a valid execution order (validated at construction)."""
        available = set(self.input_names)
        remaining = list(self.nodes)
        ordered: list[Node] = []
        while remaining:
            progressed = False
            still: list[Node] = []
            for node in remaining:
                if all(i in available for i in node.inputs):
                    ordered.append(node)
                    available.update(node.outputs)
                    progressed = True
                else:
                    still.append(node)
            if not progressed:
                raise GraphError(
                    f"graph {self.name!r} has a cycle or dangling inputs: "
                    f"{[n.op_type for n in still]}"
                )
            remaining = still
        return ordered

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        seen_tensors = set(self.input_names)
        if len(seen_tensors) != len(self.inputs):
            raise GraphError(f"graph {self.name!r} has duplicate input names")
        for node in self.nodes:
            for out in node.outputs:
                if out in seen_tensors:
                    raise GraphError(
                        f"tensor {out!r} produced more than once in "
                        f"graph {self.name!r}"
                    )
                seen_tensors.add(out)
        for spec in self.outputs:
            if spec.name not in seen_tensors:
                raise GraphError(
                    f"graph output {spec.name!r} is never produced"
                )
        # toposorted() raises on cycles / dangling inputs.
        self.toposorted()

    def __repr__(self) -> str:
        return (
            f"Graph({self.name!r}, {len(self.inputs)} inputs, "
            f"{len(self.nodes)} nodes, outputs={self.output_names})"
        )
