"""Model graph serialization (JSON).

The portable "model format" of the architecture: what the registry stores in
MODEL-typed columns and what deployment ships from the training environment
to the DBMS. Numpy attribute arrays become nested lists; operator
implementations coerce back with ``np.asarray``, so round-trips are exact
for the dtypes the ops use.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from flock.errors import GraphError
from flock.mlgraph.graph import Graph, Node, TensorSpec

FORMAT_VERSION = 1


def _plain(value: Any) -> Any:
    """Convert numpy containers/scalars to plain JSON-compatible values."""
    if isinstance(value, np.ndarray):
        return _plain(value.tolist())
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def graph_to_dict(graph: Graph) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "inputs": [{"name": s.name, "dtype": s.dtype} for s in graph.inputs],
        "outputs": [{"name": s.name, "dtype": s.dtype} for s in graph.outputs],
        "output_kinds": dict(graph.output_kinds),
        "metadata": _plain(graph.metadata),
        "nodes": [
            {
                "op_type": n.op_type,
                "inputs": list(n.inputs),
                "outputs": list(n.outputs),
                "attrs": _plain(n.attrs),
            }
            for n in graph.nodes
        ],
    }


def graph_from_dict(payload: dict) -> Graph:
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise GraphError(f"unsupported graph format version {version!r}")
    return Graph(
        name=payload["name"],
        inputs=[TensorSpec(s["name"], s["dtype"]) for s in payload["inputs"]],
        outputs=[TensorSpec(s["name"], s["dtype"]) for s in payload["outputs"]],
        nodes=[
            Node(
                op_type=n["op_type"],
                inputs=list(n["inputs"]),
                outputs=list(n["outputs"]),
                attrs=dict(n["attrs"]),
            )
            for n in payload["nodes"]
        ],
        output_kinds=payload.get("output_kinds", {}),
        metadata=payload.get("metadata", {}),
    )


def save_graph(graph: Graph, path: str | Path) -> None:
    Path(path).write_text(json.dumps(graph_to_dict(graph)))


def load_graph(path: str | Path) -> Graph:
    return graph_from_dict(json.loads(Path(path).read_text()))
