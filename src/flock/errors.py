"""Exception hierarchy for the flock package.

All exceptions raised by flock derive from :class:`FlockError`, so callers can
catch a single base class. Subsystems refine it: SQL front-end errors, binder
and planner errors, execution errors, transaction conflicts, security
violations, and errors from the ML / inference / provenance layers.
"""

from __future__ import annotations


class FlockError(Exception):
    """Base class for every error raised by the flock package."""


class SQLError(FlockError):
    """Base class for errors raised by the SQL front-end."""


class LexerError(SQLError):
    """Raised when the SQL lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} at position {position}"
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """Raised when the SQL parser cannot derive a statement from the tokens."""

    def __init__(self, message: str, token: object = None):
        super().__init__(message)
        self.token = token


class BindError(SQLError):
    """Raised when name resolution or type checking of a statement fails."""


class CatalogError(FlockError):
    """Raised for catalog violations (unknown/duplicate tables, columns...)."""


class TypeMismatchError(BindError):
    """Raised when an expression combines incompatible types."""


class ExecutionError(FlockError):
    """Raised when a physical plan fails during execution."""


class ConstraintError(ExecutionError):
    """Raised when a DML statement violates a declared constraint."""


class TransactionError(FlockError):
    """Raised for invalid transaction state transitions or write conflicts."""


class SecurityError(FlockError):
    """Raised when a principal lacks the privilege required by a statement."""


class ModelError(FlockError):
    """Base class for errors raised by the ML training library."""


class NotFittedError(ModelError):
    """Raised when predict/transform is called on an unfitted estimator."""


class GraphError(FlockError):
    """Raised for malformed model graphs (cycles, dangling inputs...)."""


class InferenceError(FlockError):
    """Raised by the in-DBMS inference layer (unknown model, bad schema...)."""


class ProvenanceError(FlockError):
    """Raised by the provenance capture modules and the catalog."""


class PolicyError(FlockError):
    """Raised by the policy engine (invalid rules, failed actions...)."""


class RegistryError(FlockError):
    """Raised by the model registry (unknown model, version conflicts...)."""


class WorkloadError(FlockError):
    """Raised by workload generators for invalid parameters."""


class DurabilityError(FlockError):
    """Raised by the durability layer (WAL append/fsync/checkpoint failures).

    Once the write-ahead log fails mid-write it is *poisoned*: further
    commits raise this error until the database is reopened (and thereby
    recovered), so an unloggable commit can never be acknowledged.
    """


class RecoveryError(DurabilityError):
    """Raised when crash recovery finds damage it cannot repair.

    A torn or corrupt log *tail* is expected after a crash and is handled
    (reported, truncated) without raising; this error is reserved for
    structural damage before the tail — e.g. a WAL record referencing
    state the checkpoint does not contain.
    """


class FaultInjected(FlockError):
    """Raised by :mod:`flock.testing.faultpoints` for ``error``-action faults."""

    def __init__(self, point: str):
        super().__init__(f"injected fault at point {point!r}")
        self.point = point


class ReplicationError(FlockError):
    """Raised by the replication tier (:mod:`flock.cluster`).

    Covers hub/subscription failures, follower apply divergence and invalid
    cluster configurations (e.g. replicas over a non-durable primary).
    """


class FailoverError(ReplicationError):
    """Raised when follower promotion cannot complete.

    Promotion re-opens the durable directory through the normal recovery
    machinery; this error covers the cluster-level failures around it — no
    follower eligible, or the cluster already lost its durable directory.
    """


class ProcError(FlockError):
    """Base class for errors raised by the worker-process tier
    (:mod:`flock.proc`): spawning, framing, liveness."""


class ProtocolError(ProcError):
    """Raised when a worker-wire frame is structurally invalid.

    Covers bad magic, oversized declared lengths, truncated headers or
    payloads (mid-frame EOF) and CRC mismatches. The CRC is verified
    *before* the payload is deserialized, so a corrupt frame can never
    reach the pickle layer; after this error the stream is untrusted and
    the worker is marked unhealthy.
    """


class WorkerCrashError(ProcError):
    """Raised when a worker process died under a request (EOF/SIGKILL).

    The parent observes the death as end-of-stream on the worker socket
    (or a send into a broken pipe) plus a reaped exit status. The worker's
    write-ahead log holds every commit it acknowledged; reopening the
    directory recovers it.
    """


class WorkerTimeoutError(ProcError):
    """Raised when a worker missed the request deadline (hung worker).

    The supervisor kills the worker rather than leaving an unresponsive
    process holding a shard directory: fail fast, recover on reopen.
    """


class ShardError(FlockError):
    """Raised by the sharding tier (:mod:`flock.shard`).

    Covers invalid sharded-cluster configurations, statements the router
    cannot execute in sharded mode (explicit transactions, shard-key
    updates) and DDL broadcasts that left — or would have left — shard
    catalogs divergent.
    """


class ServingError(FlockError):
    """Base class for errors raised by the prediction-serving layer."""


class ReadOnlyReplicaError(ServingError):
    """Raised when a write or DDL statement is submitted to a follower.

    Follower replicas apply the primary's replicated WAL records and serve
    snapshot reads; routing a write to one would fork history. The router
    sends writes to the primary — this error is the safety net for callers
    holding a replica server directly."""


class ServerOverloadedError(ServingError):
    """Raised when admission control rejects a request (queue full)."""


class ServerTimeoutError(ServingError):
    """Raised when a request misses its deadline before completing."""


class ServerClosedError(ServingError):
    """Raised when a request is submitted to a stopped server."""
