"""Shared serving-benchmark harness.

Both ``flock bench-serve`` (CLI) and ``benchmarks/bench_serving_throughput``
drive the same workload through this module: a loans table with a deployed
logistic-regression model, hammered with parameterized point predictions —
``SELECT applicant_id, PREDICT(loan_model) AS p FROM loans WHERE
applicant_id = ?`` — first sequentially through the plain engine, then
concurrently through :class:`flock.serving.FlockServer`. The comparison
isolates exactly what the serving layer adds: plan caching, micro-batching,
and concurrent snapshot reads.
"""

from __future__ import annotations

import threading
import time

import numpy as np

POINT_QUERY = (
    "SELECT applicant_id, PREDICT(loan_model) AS p "
    "FROM loans WHERE applicant_id = ?"
)
FEATURES = [
    "income",
    "credit_score",
    "loan_amount",
    "debt_ratio",
    "years_employed",
]


def build_serving_fixture(n_rows: int = 5_000, random_state: int = 0):
    """A session with ``n_rows`` loans and a deployed ``loan_model``."""
    from flock import create_database
    from flock.ml import LogisticRegression, Pipeline, StandardScaler
    from flock.ml.datasets import make_loans
    from flock.mlgraph import to_graph

    base = make_loans(2_000, random_state=random_state)
    pipeline = Pipeline(
        [("s", StandardScaler()), ("m", LogisticRegression(max_iter=150))]
    ).fit(base.feature_matrix(), base.target_vector())

    session = create_database()
    database, registry = session
    database.execute(
        "CREATE TABLE loans (applicant_id INTEGER, income FLOAT, "
        "credit_score FLOAT, loan_amount FLOAT, debt_ratio FLOAT, "
        "years_employed FLOAT, region TEXT)"
    )
    rng = np.random.default_rng(random_state + 1)
    X = base.feature_matrix()
    idx = rng.integers(0, len(X), size=n_rows)
    rows = [
        (
            int(i + 1),
            float(X[j, 0]),
            float(X[j, 1]),
            float(X[j, 2]),
            float(X[j, 3]),
            float(X[j, 4]),
            "north",
        )
        for i, j in enumerate(idx)
    ]
    table = database.catalog.table("loans")
    table.publish(table.build_insert(rows))
    registry.deploy("loan_model", to_graph(pipeline, FEATURES,
                                           name="loan_model"))
    return session


def run_serving_benchmark(
    requests: int = 800,
    concurrency: int = 16,
    n_rows: int = 5_000,
    workers: int = 8,
    max_batch_size: int = 32,
    batch_wait_ms: float = 2.0,
    seed: int = 7,
) -> dict:
    """Sequential vs served point predictions; the numbers ISSUE.md gates on.

    Returns a dict with ``seq_qps``, ``served_qps``, ``speedup``,
    ``hit_rate`` (plan cache, post-warmup), batching stats and served-side
    latency percentiles (milliseconds).
    """
    from flock.serving import FlockServer

    session = build_serving_fixture(n_rows=n_rows)
    database = session.db
    rng = np.random.default_rng(seed)
    keys = [int(k) for k in rng.integers(1, n_rows + 1, size=requests)]

    # -- sequential baseline: one engine call per request ----------------
    for key in keys[:5]:  # warm scorer/statistics caches
        database.execute(POINT_QUERY, [key])
    seq_started = time.perf_counter()
    for key in keys:
        database.execute(POINT_QUERY, [key])
    seq_elapsed = time.perf_counter() - seq_started

    # -- served: `concurrency` client threads over one FlockServer -------
    server = FlockServer(
        session,
        workers=workers,
        max_batch_size=max_batch_size,
        batch_wait_ms=batch_wait_ms,
        max_pending=max(4 * concurrency, requests),
    )
    try:
        for key in keys[:5]:  # warmup: populate the plan cache
            server.execute(POINT_QUERY, [key])
        server.plan_cache.hits = 0
        server.plan_cache.misses = 0

        errors: list[Exception] = []
        per_thread = _partition(keys, concurrency)
        barrier = threading.Barrier(concurrency + 1)

        def client(chunk: list[int]) -> None:
            barrier.wait()
            for key in chunk:
                try:
                    server.execute(POINT_QUERY, [key], timeout=60.0)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(chunk,), daemon=True)
            for chunk in per_thread
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        served_started = time.perf_counter()
        for thread in threads:
            thread.join()
        served_elapsed = time.perf_counter() - served_started
        if errors:
            raise errors[0]
        stats = server.stats()
    finally:
        server.shutdown()

    seq_qps = requests / seq_elapsed
    served_qps = requests / served_elapsed
    return {
        "requests": requests,
        "concurrency": concurrency,
        "n_rows": n_rows,
        "workers": workers,
        "seq_qps": seq_qps,
        "served_qps": served_qps,
        "seq_elapsed_s": seq_elapsed,
        "served_elapsed_s": served_elapsed,
        "speedup": served_qps / seq_qps,
        "hit_rate": server.plan_cache.hit_rate,
        "batches": stats["batches"],
        "batched_requests": stats["batched_requests"],
        "mean_batch_size": stats["mean_batch_size"],
        "latency_ms": stats["latency_ms"],
    }


def render_benchmark(report: dict) -> list[str]:
    """Human-readable lines for a run_serving_benchmark() report."""
    latency = report["latency_ms"]
    return [
        "Serving throughput: sequential engine calls vs FlockServer",
        f"  workload: {report['requests']} point predictions over "
        f"{report['n_rows']} loans, concurrency {report['concurrency']}, "
        f"{report['workers']} workers",
        f"  sequential: {report['seq_qps']:8.1f} qps "
        f"({report['seq_elapsed_s'] * 1000:.0f} ms total)",
        f"  served:     {report['served_qps']:8.1f} qps "
        f"({report['served_elapsed_s'] * 1000:.0f} ms total)",
        f"  speedup:    {report['speedup']:.2f}x",
        f"  plan cache hit rate (post-warmup): "
        f"{report['hit_rate'] * 100:.1f}%",
        f"  micro-batching: {report['batched_requests']} requests coalesced "
        f"into {report['batches']} batches "
        f"(mean batch size {report['mean_batch_size']:.1f})",
        f"  served latency: p50 {latency['p50']:.1f} ms, "
        f"p95 {latency['p95']:.1f} ms, p99 {latency['p99']:.1f} ms",
    ]


def _partition(items: list, parts: int) -> list[list]:
    chunks: list[list] = [[] for _ in range(parts)]
    for i, item in enumerate(items):
        chunks[i % parts].append(item)
    return [c for c in chunks if c]
