"""The prepared-plan cache: SQL text → parsed/bound/optimized artifacts.

Prediction serving repeats a small set of statement shapes millions of
times; re-deriving the plan per request throws away exactly the work the
paper says a DBMS gets for free. The cache keeps, per SQL text:

- the parsed statement (reused by every execution — parse once);
- for parameterless SELECTs, the fully bound + optimized plan plus its
  read set and privilege checks, executed directly via
  :meth:`flock.db.engine.Database.execute_plan` (bind/optimize skipped);
- for single-parameter *point queries* (``... WHERE col = ?``), the shape
  analysis the micro-batcher needs to coalesce N concurrent requests into
  one ``col IN (?, ..., ?)`` statement and scatter rows back per request.

Entries are stamped with the engine's ``invalidation_epoch``; DDL and model
(re-)deployment bump it, so schema changes and model swaps invalidate
cached plans without callback plumbing. Cached plan trees are never mutated
after preparation — execution is read-only over them — which is what makes
one plan safe to share across server worker threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from flock.db import functions as fn
from flock.db.binder import Binder
from flock.db.engine import Database, _collect_reads
from flock.db.plan import PlanNode, PredictNode, ScanNode
from flock.db.security import model_object
from flock.db.sql import ast_nodes as ast
from flock.db.sql.parser import Parser
from flock.observability import metrics


@dataclass(frozen=True)
class PointQueryShape:
    """A batchable point query: single table, ``WHERE key_column = ?``."""

    table: str
    key_column: str
    key_qualifier: str | None


@dataclass
class CachedPlan:
    """Everything reusable about one SQL text."""

    sql: str
    statement: ast.Statement
    parameter_count: int
    epoch: int
    shape: PointQueryShape | None = None
    # Present only for parameterless SELECTs (the fully prepared form).
    plan: PlanNode | None = None
    reads: tuple[list[str], list[str]] = field(
        default_factory=lambda: ([], [])
    )
    privileges: list[tuple[str, str]] = field(default_factory=list)

    @property
    def is_select(self) -> bool:
        return isinstance(self.statement, (ast.Select, ast.SetOperation))

    @property
    def batchable(self) -> bool:
        return self.shape is not None


class PlanCache:
    """Thread-safe SQL-text-keyed cache with epoch invalidation."""

    def __init__(self, database: Database, max_entries: int = 512):
        self.database = database
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: dict[str, CachedPlan] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    def lookup(self, sql: str) -> CachedPlan | None:
        """The cached entry for *sql*, building it on first sight.

        Returns None when the statement does not parse — the caller then
        routes the request through the normal execution path, which raises
        the parse error with full context.
        """
        registry = metrics()
        epoch = self.database.invalidation_epoch
        with self._lock:
            entry = self._entries.get(sql)
            if entry is not None and entry.epoch == epoch:
                self.hits += 1
            else:
                if entry is not None:
                    self.invalidations += 1
                    registry.counter(
                        "serving.plan_cache.invalidations"
                    ).inc()
                self.misses += 1
                entry = None
        if entry is not None:
            registry.counter("serving.plan_cache.hits").inc()
            return entry
        registry.counter("serving.plan_cache.misses").inc()
        entry = self._build(sql, epoch)
        if entry is None:
            return None
        with self._lock:
            if len(self._entries) >= self.max_entries:
                self._entries.clear()
            self._entries[sql] = entry
        return entry

    def invalidate_all(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def _build(self, sql: str, epoch: int) -> CachedPlan | None:
        try:
            parser = Parser(sql)
            statement = parser.parse()
        except Exception:
            return None
        entry = CachedPlan(
            sql=sql,
            statement=statement,
            parameter_count=parser.parameter_count,
            epoch=epoch,
        )
        if isinstance(statement, ast.Select):
            entry.shape = analyze_point_query(
                statement, parser.parameter_count
            )
        if entry.is_select and parser.parameter_count == 0:
            self._prepare_plan(entry)
        return entry

    def _prepare_plan(self, entry: CachedPlan) -> None:
        """Bind + optimize a parameterless SELECT once, keep the plan."""
        database = self.database
        try:
            bound = Binder(database, None).bind_query(entry.statement)
            entry.reads = _collect_reads(bound)
            entry.privileges = _collect_privileges(bound)
            entry.plan = database.optimizer.optimize(bound, database)
        except Exception:
            # Not preparable (e.g. references a dropped table): leave the
            # entry AST-only; execution will surface the real error.
            entry.plan = None


def _collect_privileges(bound: PlanNode) -> list[tuple[str, str]]:
    """The (action, object) checks the engine would make for this plan."""
    checks: list[tuple[str, str]] = []
    for node in bound.walk():
        if isinstance(node, ScanNode):
            if node.via_view is not None:
                checks.append(("SELECT", node.via_view))
            else:
                checks.append(("SELECT", node.table_name))
        elif isinstance(node, PredictNode):
            checks.append(("PREDICT", model_object(node.model_name)))
    return sorted(set(checks))


# ----------------------------------------------------------------------
# Point-query analysis and batch rewriting
# ----------------------------------------------------------------------
BATCH_KEY_ALIAS = "__flock_batch_key"


def analyze_point_query(
    statement: ast.Select, parameter_count: int
) -> PointQueryShape | None:
    """Recognize ``SELECT ... FROM t WHERE col = ?`` shapes.

    Only statements whose result is a pure per-row function of the matched
    rows qualify: no aggregates, grouping, ordering, limits or DISTINCT —
    those change meaning when point queries are coalesced into one IN-list
    statement.
    """
    if parameter_count != 1:
        return None
    if (
        statement.group_by
        or statement.having is not None
        or statement.order_by
        or statement.distinct
        or statement.limit is not None
        or statement.offset is not None
        or getattr(statement, "ctes", None)
    ):
        return None
    if not isinstance(statement.from_clause, ast.TableRef):
        return None
    where = statement.where
    if not (isinstance(where, ast.BinaryOp) and where.op == "="):
        return None
    left, right = where.left, where.right
    if isinstance(left, ast.Parameter) and isinstance(right, ast.ColumnRef):
        left, right = right, left
    if not (
        isinstance(left, ast.ColumnRef) and isinstance(right, ast.Parameter)
    ):
        return None
    for item in statement.items:
        for node in item.expr.walk():
            if isinstance(node, ast.FunctionCall) and fn.is_aggregate(
                node.name
            ):
                return None
            if isinstance(
                node,
                (
                    ast.InQuery,
                    ast.Parameter,
                    ast.Exists,
                    ast.ScalarSubquery,
                    ast.WindowFunction,
                ),
            ):
                return None
    return PointQueryShape(
        table=statement.from_clause.name,
        key_column=left.name,
        key_qualifier=left.table,
    )


def build_batch_statement(
    statement: ast.Select, shape: PointQueryShape, n_keys: int
) -> ast.Select:
    """The coalesced form: ``WHERE col IN (?, ..., ?)`` + the scatter key.

    The original select list is preserved verbatim; one extra projection of
    the key column (aliased ``__flock_batch_key``) is appended so results
    can be scattered back to the originating requests by key value.
    """
    key_ref = ast.ColumnRef(shape.key_column, shape.key_qualifier)
    items = list(statement.items) + [
        ast.SelectItem(key_ref, alias=BATCH_KEY_ALIAS)
    ]
    where = ast.InList(
        operand=ast.ColumnRef(shape.key_column, shape.key_qualifier),
        items=[ast.Parameter(i) for i in range(n_keys)],
    )
    return ast.Select(
        items=items,
        from_clause=statement.from_clause,
        where=where,
    )
