"""flock.serving — the concurrent prediction-serving layer.

The paper's core bet is that prediction serving is a database workload:
a served model is a prepared statement, a burst of point predictions is a
batchable scan, and the way to make both fast is the machinery a DBMS
already has — plan caching, admission control, concurrency control and
observability. This package supplies that layer on top of the engine:

- :class:`FlockServer` — a thread-pooled in-process server with dynamic
  micro-batching of point PREDICT/SELECT queries, bounded admission, and
  per-request deadlines;
- :class:`PlanCache` — SQL-text-keyed prepared plans with epoch-based
  invalidation on DDL and model redeployment;
- :class:`FlockClient` — a thin client handle bound to one user.

Typical use::

    from flock import create_database
    from flock.serving import FlockServer

    session = create_database()
    ...  # create tables, train + deploy models
    with FlockServer(session, workers=8) as server:
        future = server.submit(
            "SELECT PREDICT(churn_model) FROM users WHERE id = ?", [42]
        )
        result = future.result()
"""

from flock.errors import (
    ServerClosedError,
    ServerOverloadedError,
    ServerTimeoutError,
    ServingError,
)
from flock.serving.plancache import (
    BATCH_KEY_ALIAS,
    CachedPlan,
    PlanCache,
    PointQueryShape,
    analyze_point_query,
    build_batch_statement,
)
from flock.serving.server import FlockClient, FlockServer, ServingFuture

__all__ = [
    "BATCH_KEY_ALIAS",
    "CachedPlan",
    "FlockClient",
    "FlockServer",
    "PlanCache",
    "PointQueryShape",
    "ServerClosedError",
    "ServerOverloadedError",
    "ServerTimeoutError",
    "ServingError",
    "ServingFuture",
    "analyze_point_query",
    "build_batch_statement",
]
