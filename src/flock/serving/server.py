"""The concurrent prediction server: micro-batching over one engine.

:class:`FlockServer` owns a :class:`~flock.db.Database` (usually via a
:class:`~flock.FlockSession`) and serves many concurrent clients. The
mechanisms are the ones the paper argues a DBMS provides for free once
inference lives inside the engine:

- **plan reuse** — every statement goes through a
  :class:`~flock.serving.plancache.PlanCache` (parse once, and for
  parameterless SELECTs skip bind/optimize too);
- **dynamic micro-batching** — concurrent parameterized point queries
  (``... WHERE col = ?``) against the same cached plan are coalesced into
  one ``col IN (...)`` statement, scored vectorized in a single PREDICT,
  and scattered back per request (Figure 4's "batch beats per-row" applied
  to serving);
- **admission control** — a bounded in-flight window with typed
  :class:`~flock.errors.ServerOverloadedError` rejections, per-request
  deadlines, and graceful drain on shutdown;
- **observability** — queue wait, batch size, plan-cache hit rate and
  latency percentiles in the process :mod:`flock.observability` registry.

Requests return :class:`ServingFuture` handles; :class:`FlockClient` is the
thin blocking in-process client over them.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Sequence

import numpy as np

from flock.db.engine import Database
from flock.db.result import QueryResult
from flock.db.vector import Batch
from flock.errors import (
    FlockError,
    ServerClosedError,
    ServerOverloadedError,
    ServerTimeoutError,
)
from flock.observability import metrics
from flock.serving.plancache import (
    BATCH_KEY_ALIAS,
    CachedPlan,
    PlanCache,
    build_batch_statement,
)


class _Request:
    """One submitted statement on its way through the server."""

    __slots__ = (
        "sql", "params", "user", "deadline", "submitted",
        "event", "result", "error",
    )

    def __init__(
        self,
        sql: str,
        params: list[Any] | None,
        user: str,
        deadline: float | None,
    ):
        self.sql = sql
        self.params = params
        self.user = user
        self.deadline = deadline
        self.submitted = time.perf_counter()
        self.event = threading.Event()
        self.result: QueryResult | None = None
        self.error: BaseException | None = None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class ServingFuture:
    """Handle to an in-flight request; resolves to a QueryResult."""

    def __init__(self, request: _Request):
        self._request = request

    def done(self) -> bool:
        return self._request.event.is_set()

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block until the request completes; raises what execution raised.

        Waits at most until the request's own deadline (if any), then the
        optional *timeout* on top — whichever comes first.
        """
        request = self._request
        wait: float | None = timeout
        if request.deadline is not None:
            remaining = max(0.0, request.deadline - time.perf_counter())
            wait = remaining if wait is None else min(wait, remaining)
        if not request.event.wait(wait):
            raise ServerTimeoutError(
                f"request did not complete within its deadline: "
                f"{request.sql[:80]!r}"
            )
        if request.error is not None:
            raise request.error
        assert request.result is not None
        return request.result


class _PendingBatch:
    """Requests with the same (sql, user) awaiting coalesced execution."""

    __slots__ = ("key", "entry", "requests", "created", "closed", "full")

    def __init__(
        self, key: tuple[str, str] | None, entry: CachedPlan | None
    ):
        self.key = key
        self.entry = entry
        self.requests: list[_Request] = []
        self.created = time.perf_counter()
        self.closed = False
        self.full = threading.Event()


_SHUTDOWN = None


class FlockServer:
    """Serves many concurrent clients against one Flock engine.

    ``session`` may be a :class:`flock.FlockSession` or a bare
    :class:`~flock.db.Database`. Statements execute with the same semantics
    as :meth:`Database.execute`; what the server adds is concurrency,
    plan reuse, micro-batching and admission control.
    """

    def __init__(
        self,
        session,
        *,
        workers: int = 4,
        max_batch_size: int = 32,
        batch_wait_ms: float = 1.0,
        max_pending: int = 256,
        default_timeout_s: float = 30.0,
        auto_start: bool = True,
        read_only: bool = False,
    ):
        self.database: Database = getattr(session, "db", session)
        if workers < 1:
            raise ValueError("FlockServer needs at least one worker")
        self.workers = workers
        # Follower replicas serve snapshot reads only: any statement that
        # could stage a write is rejected at admission (flock.cluster).
        self.read_only = read_only
        self.max_batch_size = max(1, max_batch_size)
        self.batch_wait_s = max(0.0, batch_wait_ms) / 1e3
        self.max_pending = max_pending
        self.default_timeout_s = default_timeout_s
        self.plan_cache = PlanCache(self.database)

        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._pending: dict[tuple[str, str], _PendingBatch] = {}
        self._lock = threading.Lock()
        self._inflight = 0
        self._closed = False
        self._discard = False
        self._threads: list[threading.Thread] = []
        # Served/batched tallies for stats(), kept separately from the
        # process-wide metrics registry so concurrent servers don't mix.
        self._served = 0
        self._batched = 0
        self._batches = 0
        self._rejected = 0
        self._timeouts = 0
        if auto_start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._threads:
            return
        self._closed = False
        self._discard = False
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"flock-serve-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the server; with ``drain=True`` finish in-flight requests.

        New submissions are rejected immediately with
        :class:`ServerClosedError`. With ``drain=False`` queued requests
        fail with the same error instead of executing. A drained shutdown
        of a durable database also checkpoints it, so a clean restart
        recovers from the snapshot instead of replaying the whole log.
        """
        self._closed = True
        if not drain:
            self._discard = True
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []
        if drain and getattr(self.database, "wal", None) is not None:
            if not self.database.wal.poisoned:
                self.database.checkpoint()

    def __enter__(self) -> "FlockServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        user: str = "admin",
        timeout: float | None = None,
    ) -> ServingFuture:
        """Enqueue one statement; returns a future resolving to its result."""
        if self._closed:
            raise ServerClosedError("server is shut down")
        if self.read_only:
            self._check_read_only(sql)
        registry = metrics()
        with self._lock:
            if self._inflight >= self.max_pending:
                self._rejected += 1
                registry.counter("serving.rejected_overload").inc()
                raise ServerOverloadedError(
                    f"request queue is full ({self.max_pending} in flight)"
                )
            self._inflight += 1
        registry.counter("serving.requests").inc()
        registry.gauge("serving.queue_depth").set(self._inflight)

        deadline = None
        timeout = self.default_timeout_s if timeout is None else timeout
        if timeout is not None and timeout > 0:
            deadline = time.perf_counter() + timeout
        request = _Request(
            sql, None if params is None else list(params), user, deadline
        )
        entry = self.plan_cache.lookup(sql)
        if (
            entry is not None
            and entry.batchable
            and request.params is not None
            and len(request.params) == 1
        ):
            self._enqueue_batchable(request, entry, (sql, user))
        else:
            batch = _PendingBatch(None, entry)
            batch.requests.append(request)
            batch.closed = True
            self._queue.put(batch)
        return ServingFuture(request)

    def execute(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        user: str = "admin",
        timeout: float | None = None,
    ) -> QueryResult:
        """Submit and block for the result (the one-call convenience)."""
        return self.submit(sql, params, user, timeout).result()

    def connect(self, user: str = "admin") -> "FlockClient":
        """A thin per-user in-process client bound to this server."""
        return FlockClient(self, user)

    def _check_read_only(self, sql: str) -> None:
        """Reject writes/DDL at admission on a read-only (replica) server.

        An unparseable statement passes through: it cannot stage a write,
        and direct execution surfaces the parse error with full context.
        """
        from flock.db.engine import is_read_only
        from flock.errors import ReadOnlyReplicaError

        entry = self.plan_cache.lookup(sql)
        if entry is not None and not is_read_only(entry.statement):
            metrics().counter("serving.rejected_read_only").inc()
            raise ReadOnlyReplicaError(
                f"{type(entry.statement).__name__.upper()} rejected: this "
                f"server is a read-only follower replica; route writes to "
                f"the primary"
            )

    def stats(self) -> dict:
        """Serving summary: throughput inputs, batching and cache behavior."""
        registry = metrics()
        latency = registry.histogram("serving.latency_ms").snapshot()
        return {
            "served": self._served,
            "batches": self._batches,
            "batched_requests": self._batched,
            "mean_batch_size": (
                self._batched / self._batches if self._batches else 0.0
            ),
            "rejected": self._rejected,
            "timeouts": self._timeouts,
            "plan_cache_entries": len(self.plan_cache),
            "plan_cache_hit_rate": self.plan_cache.hit_rate,
            "latency_ms": {
                k: latency[k] for k in ("p50", "p95", "p99", "mean")
            },
            # Every serving worker executes through the engine, so queries
            # share the engine's one morsel worker pool; surface its shape
            # so operators can see the parallelism a deployment runs with.
            "engine_workers": self.database.workers,
            "parallel_fragments": registry.counter(
                "parallel.fragments"
            ).value,
        }

    # ------------------------------------------------------------------
    # Batching internals
    # ------------------------------------------------------------------
    def _enqueue_batchable(
        self,
        request: _Request,
        entry: CachedPlan,
        key: tuple[str, str],
    ) -> None:
        enqueue = False
        with self._lock:
            batch = self._pending.get(key)
            if (
                batch is None
                or batch.closed
                or len(batch.requests) >= self.max_batch_size
            ):
                batch = _PendingBatch(key, entry)
                self._pending[key] = batch
                enqueue = True
            batch.requests.append(request)
            if len(batch.requests) >= self.max_batch_size:
                batch.closed = True
                if self._pending.get(key) is batch:
                    del self._pending[key]
                batch.full.set()
        if enqueue:
            self._queue.put(batch)

    def _worker_loop(self) -> None:
        while True:
            batch = self._queue.get()
            if batch is _SHUTDOWN:
                return
            try:
                self._run_batch(batch)
            except BaseException as unexpected:  # pragma: no cover - safety
                for request in batch.requests:
                    if not request.event.is_set():
                        self._finish(request, error=unexpected)

    def _close_batch(self, batch: _PendingBatch) -> None:
        if batch.closed:
            return
        # Dynamic coalescing window: wait out the remainder, or until full.
        remaining = batch.created + self.batch_wait_s - time.perf_counter()
        if remaining > 0 and not self._discard:
            batch.full.wait(remaining)
        with self._lock:
            batch.closed = True
            if batch.key is not None and self._pending.get(batch.key) is batch:
                del self._pending[batch.key]

    def _run_batch(self, batch: _PendingBatch) -> None:
        registry = metrics()
        self._close_batch(batch)
        now = time.perf_counter()
        live: list[_Request] = []
        for request in batch.requests:
            if self._discard:
                self._finish(
                    request, error=ServerClosedError("server is shut down")
                )
            elif request.expired(now):
                self._timeouts += 1
                registry.counter("serving.timeouts").inc()
                self._finish(
                    request,
                    error=ServerTimeoutError(
                        "request timed out waiting in the serving queue"
                    ),
                )
            else:
                registry.histogram("serving.queue_wait_ms").observe(
                    (now - request.submitted) * 1e3
                )
                live.append(request)
        if not live:
            return
        self._batches += 1
        registry.counter("serving.batches").inc()
        registry.histogram("serving.batch_size").observe(len(live))
        entry = batch.entry
        if entry is not None and entry.batchable and len(live) > 1:
            try:
                self._execute_coalesced(entry, live)
                self._batched += len(live)
                return
            except FlockError:
                # Fall back to per-request execution; individual statements
                # then produce their own (per-request) errors or results.
                pass
        for request in live:
            if not request.event.is_set():
                self._execute_single(entry, request)

    def _execute_single(
        self, entry: CachedPlan | None, request: _Request
    ) -> None:
        try:
            database = self.database
            if entry is not None and entry.plan is not None:
                result = database.execute_plan(
                    entry.plan,
                    sql=entry.sql,
                    user=request.user,
                    reads=entry.reads,
                    privileges=entry.privileges,
                )
            elif entry is not None and entry.is_select:
                result = database.run_select_ast(
                    entry.statement,
                    entry.sql,
                    user=request.user,
                    params=request.params,
                )
            else:
                result = database.execute(
                    request.sql, request.params, user=request.user
                )
        except BaseException as exc:
            self._finish(request, error=exc)
        else:
            self._finish(request, result=result)

    def _execute_coalesced(
        self, entry: CachedPlan, live: list[_Request]
    ) -> None:
        """One IN-list statement for the whole batch, scattered per request.

        Requests with a NULL key run individually — the engine rejects
        ``col = NULL`` comparisons at bind time, and a coalesced batch must
        surface exactly the error direct execution would.
        """
        runnable: list[_Request] = []
        keys: list[Any] = []
        seen: dict[Any, int] = {}
        for request in live:
            value = request.params[0]  # type: ignore[index]
            if value is None:
                self._execute_single(entry, request)
                continue
            runnable.append(request)
            if value not in seen:
                seen[value] = len(keys)
                keys.append(value)
        if not runnable:
            return
        if len(runnable) == 1 or len(keys) == 0:
            for request in runnable:
                self._execute_single(entry, request)
            return
        statement = build_batch_statement(
            entry.statement, entry.shape, len(keys)
        )
        combined = self.database.run_select_ast(
            statement,
            f"{entry.sql} /* coalesced x{len(runnable)} */",
            user=runnable[0].user,
            params=keys,
        )
        data = combined.batch
        assert data is not None and data.names[-1] == BATCH_KEY_ALIAS
        key_values = data.columns[-1].to_pylist()
        names = list(data.names[:-1])
        columns = data.columns[:-1]
        for request in runnable:
            value = request.params[0]  # type: ignore[index]
            mask = np.fromiter(
                (k == value for k in key_values),
                dtype=bool,
                count=len(key_values),
            )
            scattered = Batch(names, [c.filter(mask) for c in columns])
            result = QueryResult("SELECT", batch=scattered)
            result.stats = combined.stats
            self._finish(request, result=result)

    def _finish(
        self,
        request: _Request,
        result: QueryResult | None = None,
        error: BaseException | None = None,
    ) -> None:
        request.result = result
        request.error = error
        registry = metrics()
        registry.histogram("serving.latency_ms").observe(
            (time.perf_counter() - request.submitted) * 1e3
        )
        registry.counter(
            "serving.responses.error" if error is not None
            else "serving.responses.ok"
        ).inc()
        with self._lock:
            self._inflight -= 1
            self._served += 1
        registry.gauge("serving.queue_depth").set(self._inflight)
        request.event.set()


class FlockClient:
    """Blocking per-user client for an in-process :class:`FlockServer`."""

    def __init__(self, server: FlockServer, user: str = "admin"):
        self.server = server
        self.user = user

    def execute(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        return self.server.execute(sql, params, user=self.user,
                                   timeout=timeout)

    def submit(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        timeout: float | None = None,
    ) -> ServingFuture:
        return self.server.submit(sql, params, user=self.user,
                                  timeout=timeout)
