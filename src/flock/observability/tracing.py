"""Trace spans for the SQL×ML pipeline.

A :class:`Span` is one timed region of work (a statement, an operator node,
an optimizer rule, a scoring batch).  Spans nest through a ``contextvars``
variable, so instrumented layers never pass spans explicitly: whoever is
inside ``tracer.span(...)`` becomes the parent of any span opened deeper in
the call stack — including across the engine → executor → scorer → mlgraph
boundaries.

Timings use ``time.perf_counter_ns()``.  Spans record exceptions but never
swallow them, and the context manager restores the previous current span
even when the body raises.  Tracing can be disabled process-wide with
:func:`set_enabled`, in which case ``tracer.span(...)`` yields a shared
no-op span with near-zero overhead (used by the overhead benchmark).
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Any, Dict, Iterator, List, Optional

_ENABLED = True


def set_enabled(value: bool) -> None:
    """Globally enable or disable span collection."""
    global _ENABLED
    _ENABLED = bool(value)


def enabled() -> bool:
    return _ENABLED


class Span:
    """One timed, attributed region of work in a span tree."""

    __slots__ = ("name", "attributes", "children", "start_ns", "end_ns",
                 "status", "error")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List[Span] = []
        self.start_ns = 0
        self.end_ns = 0
        self.status = "ok"
        self.error: Optional[str] = None

    @property
    def duration_ns(self) -> int:
        return max(0, self.end_ns - self.start_ns)

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> dict:
        """JSON-friendly representation of this span and its subtree."""
        out = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 6),
            "status": self.status,
        }
        if self.error:
            out["error"] = self.error
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_ms:.3f}ms, {self.status})"


class _NullSpan(Span):
    """Shared inert span handed out while tracing is disabled."""

    def set_attribute(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan("disabled")


class Tracer:
    """Builds span trees with contextvar-based nesting.

    Finished root spans (spans opened with no active parent) are handed to
    ``on_root`` callbacks — the engine uses that to attach statement traces
    to its query log.
    """

    def __init__(self):
        self._current: contextvars.ContextVar[Optional[Span]] = \
            contextvars.ContextVar("flock_current_span", default=None)
        self._last_root: Optional[Span] = None

    @property
    def last_root(self) -> Optional[Span]:
        """Most recently completed root span (None until one finishes)."""
        return self._last_root

    def current(self) -> Optional[Span]:
        return self._current.get()

    @contextlib.contextmanager
    def span(self, name: str,
             attributes: Optional[Dict[str, Any]] = None) -> Iterator[Span]:
        if not _ENABLED:
            yield _NULL_SPAN
            return
        node = Span(name, attributes)
        parent = self._current.get()
        if parent is not None and parent is not _NULL_SPAN:
            parent.children.append(node)
        token = self._current.set(node)
        node.start_ns = time.perf_counter_ns()
        try:
            yield node
        except BaseException as exc:
            node.status = "error"
            node.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            node.end_ns = time.perf_counter_ns()
            self._current.reset(token)
            if parent is None or parent is _NULL_SPAN:
                self._last_root = node


_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer used by all flock instrumentation."""
    return _GLOBAL_TRACER
