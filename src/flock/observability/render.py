"""Human-readable rendering for span trees and metric snapshots."""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .tracing import Span

_INTERESTING_ATTRS = ("rows_in", "rows_out", "rows", "strategy", "statement",
                      "operator", "model", "rules_applied", "mode", "user")


def _attr_text(span: Span) -> str:
    parts = []
    for key in _INTERESTING_ATTRS:
        if key in span.attributes:
            parts.append(f"{key}={span.attributes[key]}")
    for key, value in span.attributes.items():
        if key not in _INTERESTING_ATTRS:
            parts.append(f"{key}={value}")
    return f" [{', '.join(parts)}]" if parts else ""


def render_span_tree(span: Optional[Span]) -> str:
    """ASCII tree of a span and its descendants with millisecond timings."""
    if span is None:
        return "(no trace recorded)"
    lines: List[str] = []

    def visit(node: Span, depth: int) -> None:
        marker = " !" if node.status == "error" else ""
        lines.append(
            f"{'  ' * depth}{node.name}  {node.duration_ms:.3f}ms"
            f"{_attr_text(node)}{marker}"
        )
        if node.error:
            lines.append(f"{'  ' * (depth + 1)}error: {node.error}")
        for child in node.children:
            visit(child, depth + 1)

    visit(span, 0)
    return "\n".join(lines)


def span_to_json(span: Optional[Span], indent: int = 2) -> str:
    """JSON export of a span tree (OTel-ish nested layout)."""
    if span is None:
        return "null"
    return json.dumps(span.to_dict(), indent=indent, default=str)


def render_metrics(snapshot: Dict[str, dict]) -> str:
    """Tabular text rendering of ``MetricsRegistry.snapshot()``."""
    if not snapshot:
        return "(no metrics recorded)"
    lines: List[str] = []
    width = max(len(name) for name in snapshot)
    for name, data in snapshot.items():
        kind = data.get("type", "?")
        if kind == "histogram":
            detail = (
                f"count={data['count']} mean={data['mean']:.3f} "
                f"p50={data['p50']:.3f} p95={data['p95']:.3f} "
                f"p99={data['p99']:.3f} max={data['max']:.3f}"
            )
        else:
            value = data.get("value", 0.0)
            detail = f"value={value:g}"
        lines.append(f"{name.ljust(width)}  {kind:<9} {detail}")
    return "\n".join(lines)
