"""Operator-level observability for the SQL×ML pipeline.

This package is the measurement substrate the paper's cross-optimization
argument rests on (§4.1 / Figure 4): the engine can only co-optimize SQL
and ML if it can *see* where time and rows go.  Three pieces:

- :func:`metrics` — a process-wide :class:`MetricsRegistry` of counters,
  gauges, and histograms (with p50/p95/p99 snapshots over a recent window).
- :func:`get_tracer` — a contextvar-nested :class:`Tracer` producing
  :class:`Span` trees with nanosecond timings across the engine, executor,
  cross-optimizer, scorer, and mlgraph runtime.
- :mod:`flock.observability.render` — text/JSON rendering for both, used by
  ``EXPLAIN ANALYZE``, the ``flock stats`` CLI, and the shell dot-commands.

Instrumentation must never change results or raise: it only observes.  Use
:func:`set_enabled` to turn span collection off wholesale (metrics stay on;
they are cheap counters/histogram inserts).
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metrics
from .render import render_metrics, render_span_tree, span_to_json
from .tracing import Span, Tracer, enabled, get_tracer, set_enabled

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "Span",
    "Tracer",
    "get_tracer",
    "set_enabled",
    "enabled",
    "render_span_tree",
    "render_metrics",
    "span_to_json",
]
