"""Process-wide metrics primitives: counters, gauges, and histograms.

The registry is intentionally tiny and dependency-free: a thread-safe map of
named instruments that any layer (engine, executor, optimizer, scorer,
mlgraph runtime) can update without caring who reads them.  Snapshots are
plain dictionaries so they can be printed, JSON-encoded, or asserted on in
tests without touching live instrument state.

Instruments are created lazily on first use::

    from flock import observability

    observability.metrics().counter("db.statements").inc()
    observability.metrics().histogram("db.statement_ms").observe(1.8)
    print(observability.metrics().snapshot())

Histogram percentiles are computed from a bounded reservoir of the most
recent observations (``window`` samples, default 1024) so long-running
processes keep constant memory while still answering p50/p95/p99 queries
about recent behaviour.  Totals (count/sum/min/max) cover the full lifetime.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional


class Counter:
    """Monotonically increasing count of events."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("Counter.inc amount must be >= 0")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Point-in-time value that can go up or down."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value}


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = q * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return sorted_values[low] * (1.0 - frac) + sorted_values[high] * frac


class Histogram:
    """Distribution of observed values with percentile snapshots.

    Lifetime totals (count/sum/min/max) are exact; percentiles are computed
    over a sliding window of the most recent ``window`` observations.
    """

    __slots__ = ("name", "window", "_ring", "_next", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str, window: int = 1024):
        if window <= 0:
            raise ValueError("Histogram window must be positive")
        self.name = name
        self.window = window
        self._ring: List[float] = []
        self._next = 0
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._ring) < self.window:
                self._ring.append(value)
            else:
                self._ring[self._next] = value
                self._next = (self._next + 1) % self.window

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """Percentile of the recent window; ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("percentile q must be in [0, 1]")
        with self._lock:
            sample = sorted(self._ring)
        return _percentile(sample, q)

    def snapshot(self) -> dict:
        with self._lock:
            sample = sorted(self._ring)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        return {
            "type": "histogram",
            "count": count,
            "sum": total,
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
            "mean": (total / count) if count else 0.0,
            "p50": _percentile(sample, 0.50),
            "p95": _percentile(sample, 0.95),
            "p99": _percentile(sample, 0.99),
        }


class MetricsRegistry:
    """Thread-safe named registry of counters, gauges, and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str, window: int = 1024) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, window)
            return inst

    def names(self) -> List[str]:
        with self._lock:
            return sorted({*self._counters, *self._gauges, *self._histograms})

    def snapshot(self, prefix: str = "") -> Dict[str, dict]:
        """Dictionary of instrument name -> snapshot dict, sorted by name."""
        with self._lock:
            instruments: Iterable = [
                *self._counters.values(),
                *self._gauges.values(),
                *self._histograms.values(),
            ]
        return {
            inst.name: inst.snapshot()
            for inst in sorted(instruments, key=lambda i: i.name)
            if inst.name.startswith(prefix)
        }

    def reset(self) -> None:
        """Drop every instrument (used by tests and the CLI)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_GLOBAL_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide registry used by all flock instrumentation."""
    return _GLOBAL_REGISTRY
