"""The model registry: deployed models as first-class, versioned DBMS data.

"Models should be represented as first-class data types in a DBMS" (§4.1):
when the registry is bound to a :class:`~flock.db.Database`, every deployed
model version is also a row in the ``flock_models`` system table (with the
serialized graph in a MODEL-typed column), deployments are transactional —
multiple models can be rolled out or rolled back atomically — and scoring is
governed by the PREDICT privilege plus the audit trail.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable

from flock.db.plan import Field as PlanField
from flock.db.types import DataType
from flock.errors import RegistryError
from flock.mlgraph.graph import Graph
from flock.mlgraph.serialize import graph_from_dict, graph_to_dict

_GRAPH_DTYPE_TO_DB = {
    "float": DataType.FLOAT,
    "int": DataType.INTEGER,
    "text": DataType.TEXT,
}


@dataclass(frozen=True)
class DeployedSignature:
    """What the SQL binder needs to know about a deployed model."""

    input_names: list[str]
    input_dtypes: list[DataType]
    output_fields: list[PlanField]


@dataclass
class ModelVersion:
    """One immutable deployed version of a model."""

    name: str
    version: int
    graph: Graph
    created_at: float
    created_by: str
    description: str = ""
    metrics: dict[str, float] = field(default_factory=dict)
    training_run_id: str | None = None


class ModelRegistry:
    """In-memory model store implementing the engine's ModelStore protocol."""

    SYSTEM_TABLE = "flock_models"

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._versions: dict[str, list[ModelVersion]] = {}
        self._database = None

    # ------------------------------------------------------------------
    # Database binding (models-in-the-DBMS)
    # ------------------------------------------------------------------
    def bind_database(self, database) -> None:
        """Mirror deployments into *database*'s ``flock_models`` table."""
        from flock.db.schema import Column, TableSchema

        self._database = database
        if not database.catalog.has_table(self.SYSTEM_TABLE):
            schema = TableSchema.of(
                self.SYSTEM_TABLE,
                [
                    Column("name", DataType.TEXT, nullable=False),
                    Column("version", DataType.INTEGER, nullable=False),
                    Column("created_by", DataType.TEXT, nullable=False),
                    Column("description", DataType.TEXT),
                    Column("graph", DataType.MODEL),
                ],
            )
            database.catalog.create_table(schema)
            if getattr(database, "wal", None) is not None:
                # Binding after recovery recreates the table implicitly, but
                # a bind against an already-durable database must log it so
                # later deploy commits replay against an existing table.
                database._log_ddl(
                    {
                        "kind": "create_table",
                        "name": self.SYSTEM_TABLE,
                        "columns": [
                            {
                                "name": c.name,
                                "dtype": c.dtype.value,
                                "nullable": c.nullable,
                                "primary_key": c.primary_key,
                            }
                            for c in schema.columns
                        ],
                        "owner": None,
                    }
                )

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(
        self,
        name: str,
        graph: Graph,
        user: str = "admin",
        description: str = "",
        metrics: dict[str, float] | None = None,
        training_run_id: str | None = None,
    ) -> ModelVersion:
        """Deploy one model (a single-model transaction)."""
        return self.deploy_many(
            [(name, graph)],
            user=user,
            description=description,
            metrics=metrics,
            training_run_id=training_run_id,
        )[0]

    def deploy_many(
        self,
        models: Iterable[tuple[str, Graph]],
        user: str = "admin",
        description: str = "",
        metrics: dict[str, float] | None = None,
        training_run_id: str | None = None,
    ) -> list[ModelVersion]:
        """Atomically deploy several models.

        Either every model version becomes visible or none does — the
        paper's "multiple models might have to be updated transactionally".
        """
        models = list(models)
        if not models:
            raise RegistryError("deploy_many needs at least one model")
        for model_name, graph in models:
            if not isinstance(graph, Graph):
                raise RegistryError(
                    f"model {model_name!r}: expected a Graph, got "
                    f"{type(graph).__name__}"
                )

        with self._lock:
            staged: list[ModelVersion] = []
            now = time.time()
            for model_name, graph in models:
                key = model_name.lower()
                current = self._versions.get(key, [])
                staged.append(
                    ModelVersion(
                        name=model_name,
                        version=len(current) + 1,
                        graph=graph,
                        created_at=now,
                        created_by=user,
                        description=description,
                        metrics=dict(metrics or {}),
                        training_run_id=training_run_id,
                    )
                )

            if self._database is not None:
                self._mirror_to_database(staged, user)

            for mv in staged:
                self._versions.setdefault(mv.name.lower(), []).append(mv)
            if self._database is not None:
                # Cached plans bake in the model version they were optimized
                # against; a (re-)deployment must invalidate them.
                self._database.bump_invalidation_epoch()
            return staged

    def _mirror_to_database(self, staged: list[ModelVersion], user: str) -> None:
        """Write staged versions into the system table in one transaction.

        Retries on write conflicts (another deployment committed first) —
        deployments against fresh heads are serializable.
        """
        from flock.errors import TransactionError

        database = self._database
        table = database.catalog.table(self.SYSTEM_TABLE)
        rows = [
            (
                mv.name,
                mv.version,
                mv.created_by,
                mv.description,
                graph_to_dict(mv.graph),
            )
            for mv in staged
        ]
        # Audit before the commit so the DEPLOY_MODEL records ride inside
        # the commit's WAL entry: a crash can never leave the flock_models
        # row durable without its audit trail (or vice versa).
        for mv in staged:
            database.audit.log.record(
                user,
                "DEPLOY_MODEL",
                f"model:{mv.name.lower()}",
                detail=f"version {mv.version}",
            )
        attempts = 0
        while True:
            txn = database.transactions.begin(user)
            base = txn.visible_version(self.SYSTEM_TABLE)
            txn.stage(self.SYSTEM_TABLE, table.build_insert(rows, base=base))
            try:
                database.transactions.commit(txn)
                break
            except TransactionError:
                attempts += 1
                if attempts >= 10:
                    raise

    def rollback(
        self, name: str, to_version: int, user: str = "admin"
    ) -> ModelVersion:
        """Roll a model back by re-deploying an old version's graph.

        History is append-only: rolling back v3 to v1 creates v4 carrying
        v1's graph, so the audit trail shows exactly what served when —
        the DBMS-grade model management the paper argues for.
        """
        old = self.version(name, to_version)
        return self.deploy(
            name,
            old.graph,
            user=user,
            description=f"rollback to v{to_version}",
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def has_model(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._versions

    def model_names(self) -> list[str]:
        with self._lock:
            return sorted(
                versions[-1].name for versions in self._versions.values()
            )

    def latest(self, name: str) -> ModelVersion:
        with self._lock:
            versions = self._versions.get(name.lower())
            if not versions:
                raise RegistryError(f"unknown model {name!r}")
            return versions[-1]

    def version(self, name: str, version: int) -> ModelVersion:
        with self._lock:
            versions = self._versions.get(name.lower())
            if not versions:
                raise RegistryError(f"unknown model {name!r}")
            for mv in versions:
                if mv.version == version:
                    return mv
        raise RegistryError(f"model {name!r} has no version {version}")

    def versions(self, name: str) -> list[ModelVersion]:
        with self._lock:
            versions = self._versions.get(name.lower())
            if not versions:
                raise RegistryError(f"unknown model {name!r}")
            return list(versions)

    # ------------------------------------------------------------------
    # Engine ModelStore protocol
    # ------------------------------------------------------------------
    def signature(self, name: str) -> DeployedSignature:
        graph = self.latest(name).graph
        dtype_by_tensor = {s.name: s.dtype for s in graph.outputs}
        output_fields = [
            PlanField(field_name, _GRAPH_DTYPE_TO_DB[dtype_by_tensor[tensor]])
            for field_name, tensor in graph.output_field_names()
        ]
        return DeployedSignature(
            input_names=list(graph.input_names),
            input_dtypes=[_GRAPH_DTYPE_TO_DB[s.dtype] for s in graph.inputs],
            output_fields=output_fields,
        )

    def scoring_artifact(self, name: str) -> Graph:
        return self.latest(name).graph

    # ------------------------------------------------------------------
    # Persistence helpers
    # ------------------------------------------------------------------
    def load_from_database(self, database) -> int:
        """Rebuild the registry from the ``flock_models`` system table."""
        if not database.catalog.has_table(self.SYSTEM_TABLE):
            return 0
        batch = database.catalog.table(self.SYSTEM_TABLE).scan()
        loaded = 0
        with self._lock:
            for row in batch.rows():
                name, version, created_by, description, payload = row
                graph = graph_from_dict(payload)
                mv = ModelVersion(
                    name=name,
                    version=int(version),
                    graph=graph,
                    created_at=0.0,
                    created_by=created_by,
                    description=description or "",
                )
                bucket = self._versions.setdefault(name.lower(), [])
                if not any(v.version == mv.version for v in bucket):
                    bucket.append(mv)
                    loaded += 1
            for bucket in self._versions.values():
                bucket.sort(key=lambda v: v.version)
        return loaded
