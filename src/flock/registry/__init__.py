"""flock.registry — model management: models as governed, versioned data."""

from flock.registry.store import DeployedSignature, ModelRegistry, ModelVersion

__all__ = ["DeployedSignature", "ModelRegistry", "ModelVersion"]
