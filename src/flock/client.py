"""The unified client API: one ``flock.connect()`` for every topology.

The package grew three entry points as it grew layers — ``create_database``
(embedded, in-memory), ``open_session`` (embedded, durable) and the serving
and cluster constructors. ``connect`` folds them into one call returning a
uniform :class:`Client`:

    import flock

    flock.connect()                           # embedded, in-memory
    flock.connect("churn.db")                 # embedded, durable (WAL)
    flock.connect("churn.db", serving=True)   # one serving node
    flock.connect("churn.db", replicas=4)     # replicated read-scaling tier

Every mode gives the same surface: ``execute()`` returning a
:class:`~flock.db.result.QueryResult`, ``submit()`` returning a future,
context-manager shutdown, and ``.db`` / ``.registry`` / ``.session`` for
the layers underneath.

``create_database`` and ``open_session`` remain as thin compatibility shims
over the session builders here; new code should call ``connect``.
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

from flock.db.result import QueryResult
from flock.errors import FlockError, ReplicationError


# ----------------------------------------------------------------------
# Session builders (the former create_database / open_session bodies)
# ----------------------------------------------------------------------
def _stack(cross_optimizer):
    from flock.db.optimizer.rules import Optimizer
    from flock.inference.optimizer import CrossOptimizer
    from flock.inference.predict import DefaultScorer
    from flock.registry import ModelRegistry

    if cross_optimizer is None:
        cross_optimizer = CrossOptimizer()
    registry = ModelRegistry()
    optimizer = Optimizer(extra_rules=cross_optimizer.rules())
    return cross_optimizer, registry, DefaultScorer(), optimizer


def memory_session(
    cross_optimizer=None,
    *,
    encodings: bool | None = None,
    memory_budget: int | None = None,
):
    """An in-memory :class:`flock.FlockSession` (registry + scorer wired)."""
    import flock
    from flock.db import Database

    cross_optimizer, registry, scorer, optimizer = _stack(cross_optimizer)
    database = Database(
        model_store=registry,
        scorer=scorer,
        optimizer=optimizer,
        encodings=encodings,
        memory_budget=memory_budget,
    )
    database.cross_optimizer = cross_optimizer
    registry.bind_database(database)
    return flock.FlockSession(database, registry, cross_optimizer)


def durable_session(
    path,
    cross_optimizer=None,
    *,
    sync_mode: str = "commit",
    group_window_ms: float = 1.0,
    checkpoint_bytes: int | None = None,
    encodings: bool | None = None,
    memory_budget: int | None = None,
):
    """A durable :class:`flock.FlockSession` over *path* (WAL + recovery)."""
    import flock
    from flock.db import Database

    cross_optimizer, registry, scorer, optimizer = _stack(cross_optimizer)
    database = Database.open(
        path,
        model_store=registry,
        scorer=scorer,
        optimizer=optimizer,
        sync_mode=sync_mode,
        group_window_ms=group_window_ms,
        checkpoint_bytes=checkpoint_bytes,
        encodings=encodings,
        memory_budget=memory_budget,
    )
    database.cross_optimizer = cross_optimizer
    return flock.FlockSession(database, registry, cross_optimizer)


# ----------------------------------------------------------------------
# The uniform client
# ----------------------------------------------------------------------
class _ImmediateFuture:
    """Embedded mode's ``submit``: already-resolved, same future surface."""

    def __init__(self, result=None, error: BaseException | None = None):
        self._result = result
        self._error = error

    def done(self) -> bool:
        return True

    def result(self, timeout: float | None = None):
        if self._error is not None:
            raise self._error
        return self._result


class Client:
    """One execution surface over embedded, serving and cluster topologies.

    Built by :func:`connect`; ``mode`` is ``"embedded"``, ``"serving"`` or
    ``"cluster"``. Whatever the topology, ``execute`` takes ``(sql,
    params)`` and returns a :class:`~flock.db.result.QueryResult`, and
    closing the client (or leaving its ``with`` block) shuts the whole
    stack down — servers drained, WAL flushed.
    """

    def __init__(self, mode, session, server=None, cluster=None,
                 user: str = "admin"):
        self.mode = mode
        self.session = session
        self.server = server
        self.cluster = cluster
        self.user = user
        self._lock = threading.Lock()
        self._closed = False

    # -- the layers underneath -----------------------------------------
    @property
    def db(self):
        """The engine (for cluster mode: the *primary*'s engine)."""
        return self.session.db

    @property
    def database(self):
        return self.session.db

    @property
    def registry(self):
        return self.session.registry

    @property
    def cross_optimizer(self):
        return self.session.cross_optimizer

    # -- execution ------------------------------------------------------
    def execute(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Execute one statement (routed per topology), return its result."""
        self._check_open()
        if self.cluster is not None:
            return self.cluster.execute(sql, params, user=self.user,
                                        timeout=timeout)
        if self.server is not None:
            return self.server.execute(sql, params, user=self.user,
                                       timeout=timeout)
        return self.db.execute(sql, params, user=self.user)

    def submit(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        timeout: float | None = None,
    ):
        """Asynchronous ``execute``; embedded mode resolves immediately."""
        self._check_open()
        if self.cluster is not None:
            return self.cluster.submit(sql, params, user=self.user,
                                       timeout=timeout)
        if self.server is not None:
            return self.server.submit(sql, params, user=self.user,
                                      timeout=timeout)
        try:
            return _ImmediateFuture(result=self.db.execute(
                sql, params, user=self.user
            ))
        except FlockError as exc:
            return _ImmediateFuture(error=exc)

    def executemany(
        self, sql: str, seq_of_params, timeout: float | None = None
    ) -> QueryResult:
        """Bulk-bind path, routed like ``execute``.

        Cluster topologies get their own implementation — the sharded
        router scatters the whole batch in one pass, and the replication
        tier binds on the primary so the batch still ships to followers —
        otherwise this is the engine's single-parse fast path.
        """
        self._check_open()
        if self.cluster is not None:
            return self.cluster.executemany(sql, seq_of_params,
                                            user=self.user)
        return self.db.executemany(sql, seq_of_params, user=self.user)

    def for_user(self, user: str) -> "Client":
        """The same stack, executing as *user* (shares lifecycle)."""
        return Client(self.mode, self.session, self.server, self.cluster,
                      user=user)

    # -- observability --------------------------------------------------
    def stats(self) -> dict:
        self._check_open()
        if self.cluster is not None:
            return self.cluster.stats()
        if self.server is not None:
            return self.server.stats()
        return {
            "statements": len(self.db.query_log),
            "committed": self.db.transactions.committed_count,
            "engine_workers": self.db.workers,
        }

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self.cluster is not None:
            self.cluster.close()
            return
        if self.server is not None:
            self.server.shutdown(drain=True)
        self.db.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise FlockError("client is closed")

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        where = "memory" if self.db.wal is None else self.db.wal.directory
        return f"<flock.Client mode={self.mode} path={where}>"


def connect(
    path=None,
    *,
    shards: int = 0,
    replicas: int = 0,
    serving: bool = False,
    cross_optimizer=None,
    sync_mode: str = "commit",
    group_window_ms: float = 1.0,
    checkpoint_bytes: int | None = None,
    max_staleness: int | None = None,
    workers: int = 4,
    replica_workers: int = 1,
    max_batch_size: int = 32,
    batch_wait_ms: float = 1.0,
    max_pending: int = 256,
    default_timeout_s: float = 30.0,
    process: bool | None = None,
    user: str = "admin",
    encodings: bool | None = None,
    memory_budget: int | None = None,
) -> Client:
    """Open a Flock stack and return a uniform :class:`Client`.

    - ``connect()`` — embedded in-memory engine (the old
      ``create_database``);
    - ``connect(path)`` — embedded durable engine with WAL + crash
      recovery (the old ``open_session``);
    - ``connect(path, serving=True)`` — one serving node: plan cache,
      micro-batching, admission control in front of the engine;
    - ``connect(path, replicas=N)`` — the replicated tier: a durable
      primary shipping WAL records to N follower replicas, reads fanned
      across them within ``max_staleness`` replicated records;
    - ``connect(path, shards=N)`` — the sharded tier: keyed tables
      hash-partitioned across N durable engines, point statements routed
      to one shard, everything else scatter-gathered bit-identically to a
      single engine. Composes with ``replicas=M`` — every shard then
      carries its own replicated read tier.

    ``replicas >= 1`` and ``shards >= 1`` require a *path*: WAL shipping
    and shard partitions both need durable directories.

    ``process`` selects the worker backend for the sharded and replicated
    tiers: ``True`` hosts each shard engine (or follower replica) in its
    own worker process over a CRC-framed wire (see :mod:`flock.proc`),
    ``False`` forces in-process threads, and ``None`` (the default)
    follows the ``FLOCK_PROC`` environment variable. Routing, broadcast
    and merge semantics are identical on both backends.

    ``encodings`` toggles compressed columnar storage for embedded modes
    (None follows ``FLOCK_ENCODINGS``; ``SET flock.encodings`` switches it
    at runtime). ``memory_budget`` caps blocking-operator memory in bytes
    (None follows ``FLOCK_MEMORY_BUDGET``); the sharded/replicated tiers
    configure their engines through those environment variables.
    """
    if shards:
        if path is None:
            from flock.errors import ShardError

            raise ShardError(
                "connect(shards=N) needs a database directory: every "
                "shard keeps its own write-ahead log"
            )
        from flock.shard import ShardedCluster

        sharded = ShardedCluster(
            path,
            shards=shards,
            replicas=replicas,
            cross_optimizer=cross_optimizer,
            sync_mode=sync_mode,
            group_window_ms=group_window_ms,
            checkpoint_bytes=checkpoint_bytes,
            max_staleness=max_staleness,
            process=process,
        )
        return Client("sharded", sharded.session, cluster=sharded, user=user)

    if replicas:
        if path is None:
            raise ReplicationError(
                "connect(replicas=N) needs a database directory: the "
                "replicated tier ships the primary's write-ahead log"
            )
        from flock.cluster import FlockCluster

        cluster = FlockCluster(
            path,
            replicas=replicas,
            cross_optimizer=cross_optimizer,
            sync_mode=sync_mode,
            group_window_ms=group_window_ms,
            checkpoint_bytes=checkpoint_bytes,
            max_staleness=max_staleness,
            workers=workers,
            replica_workers=replica_workers,
            max_batch_size=max_batch_size,
            batch_wait_ms=batch_wait_ms,
            max_pending=max_pending,
            default_timeout_s=default_timeout_s,
            process=process,
        )
        return Client("cluster", cluster.session, cluster=cluster, user=user)

    if path is None:
        session = memory_session(
            cross_optimizer,
            encodings=encodings,
            memory_budget=memory_budget,
        )
    else:
        session = durable_session(
            path,
            cross_optimizer,
            sync_mode=sync_mode,
            group_window_ms=group_window_ms,
            checkpoint_bytes=checkpoint_bytes,
            encodings=encodings,
            memory_budget=memory_budget,
        )
    if not serving:
        return Client("embedded", session, user=user)

    from flock.serving import FlockServer

    server = FlockServer(
        session,
        workers=workers,
        max_batch_size=max_batch_size,
        batch_wait_ms=batch_wait_ms,
        max_pending=max_pending,
        default_timeout_s=default_timeout_s,
    )
    return Client("serving", session, server=server, user=user)
