"""Follower replicas: apply the primary's stream, serve snapshot reads.

A :class:`FollowerReplica` owns a full :class:`~flock.db.Database` booted
from a frozen snapshot of the primary, a :class:`~flock.cluster.hub.Subscription`
delivering committed records in commit order, and a read-only
:class:`~flock.serving.FlockServer` the router fans reads to.

The apply loop holds the follower's *statement write lock* for every record
(the replica apply lock): point reads on the follower run under the shared
side against their own MVCC snapshot, so applying a multi-table commit is
invisible to them — exactly the isolation the primary's commit path gives
its own readers.

Replicated records are applied with their piggybacked audit/query-log
entries stripped: the follower serves reads, and its *local* read audits
interleaving with restored primary audits would break the hash chain. On
promotion the authoritative trail is recovered from the durable directory,
not from a follower.
"""

from __future__ import annotations

import threading

from flock.db.engine import Database
from flock.db.wal import apply_record
from flock.observability import get_tracer, metrics
from flock.cluster.hub import ReplicationHub, Subscription

#: Replicated payload keys a follower must not apply (see module docstring).
_STRIPPED_KEYS = ("audit", "qlog")


class FollowerReplica:
    """One in-process follower: snapshot database + apply thread + server."""

    def __init__(
        self,
        name: str,
        database: Database,
        registry,
        subscription: Subscription,
        hub: ReplicationHub,
        server,
        start: bool = True,
    ):
        self.name = name
        self.database = database
        self.registry = registry
        self.subscription = subscription
        self.hub = hub
        self.server = server
        #: Replication LSN of the last record applied here.
        self.applied_lsn = 0
        #: Set when the apply loop hit an error; the replica stops applying
        #: (serving a diverged snapshot would be worse than serving a stale
        #: one) and the router routes around it.
        self.error: BaseException | None = None
        self._cond = threading.Condition()
        # Cleared by pause() to inject replication lag (tests, staleness
        # experiments); the loop blocks before applying the next record.
        self._resume = threading.Event()
        self._resume.set()
        self._stop = False
        self._thread = threading.Thread(
            target=self._apply_loop,
            name=f"flock-replica-{name}",
            daemon=True,
        )
        if start:
            self._thread.start()

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    @property
    def healthy(self) -> bool:
        return self.error is None and not self._stop

    @property
    def lag(self) -> int:
        """Records published but not yet applied here (staleness bound)."""
        return max(0, self.hub.lsn - self.applied_lsn)

    def wait_for(self, lsn: int, timeout: float | None = None) -> bool:
        """Block until this replica applied *lsn* (True) or timed out."""
        deadline = None
        if timeout is not None:
            import time

            deadline = time.monotonic() + timeout
        with self._cond:
            while self.applied_lsn < lsn:
                if self.error is not None or self._stop:
                    return False
                if deadline is None:
                    self._cond.wait(0.5)
                else:
                    import time

                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._cond.wait(remaining)
            return True

    # ------------------------------------------------------------------
    # Lag injection
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Suspend applying (records queue up; the replica goes stale)."""
        self._resume.clear()

    def resume(self) -> None:
        self._resume.set()

    # ------------------------------------------------------------------
    # The apply loop
    # ------------------------------------------------------------------
    def _apply_loop(self) -> None:
        registry = metrics()
        while not self._stop:
            item = self.subscription.next(timeout=0.1)
            if item is None:
                if self.subscription.closed and self.subscription.pending == 0:
                    return
                continue
            lsn, record = item
            while not self._resume.wait(timeout=0.1):
                if self._stop:
                    return
            try:
                self._apply_one(record)
            except BaseException as exc:
                self.error = exc
                registry.counter("replication.apply_errors").inc()
                with self._cond:
                    self._cond.notify_all()
                return
            with self._cond:
                self.applied_lsn = lsn
                self._cond.notify_all()
            registry.counter("replication.records_applied").inc()
            registry.gauge(f"replication.lag.{self.name}").set(self.lag)

    def _apply_one(self, record: dict) -> None:
        # Shallow-filter instead of mutating: the dict instance is shared
        # with the primary's WAL and every other follower.
        stripped = {
            k: v for k, v in record.items() if k not in _STRIPPED_KEYS
        }
        database = self.database
        with get_tracer().span(
            "replica.apply",
            {"replica": self.name, "type": stripped.get("t", "?")},
        ):
            # The replica apply lock: exclusive against this follower's own
            # readers, so a multi-table commit publishes atomically for them.
            with database.statement_lock.write_locked():
                apply_record(database, stripped)
                if stripped.get("t") == "ddl":
                    database.bump_invalidation_epoch()
                elif self._touches_models(stripped):
                    # A deploy committed on the primary: refresh this
                    # follower's registry from its own flock_models mirror
                    # (idempotent) and invalidate cached plans that baked in
                    # the previous model version.
                    self.registry.load_from_database(database)
                    database.bump_invalidation_epoch()

    @staticmethod
    def _touches_models(record: dict) -> bool:
        if record.get("t") != "commit":
            return False
        return any(
            effect[0] == "flock_models" for effect in record.get("effects", ())
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self, drain: bool = True, timeout: float | None = 5.0) -> None:
        """Stop applying and shut the replica's server down."""
        if drain and self.error is None:
            self.subscription.close()
            self._resume.set()
            self._thread.join(timeout)
        self._stop = True
        self._resume.set()
        self.subscription.close()
        if self._thread.is_alive():
            self._thread.join(timeout)
        with self._cond:
            self._cond.notify_all()
        self.server.shutdown(drain=drain)

    def status(self) -> dict:
        return {
            "name": self.name,
            "applied_lsn": self.applied_lsn,
            "lag": self.lag,
            "healthy": self.healthy,
            "pending": self.subscription.pending,
            "error": None if self.error is None else repr(self.error),
        }
