"""The replication hub: WAL shipping from one primary to N followers.

The unit of replication is the WAL record dict itself — the exact payload
:func:`flock.db.wal.encode_commit_record` frames into the durable log is
also handed to the hub, and followers apply it through
:func:`flock.db.wal.apply_record`, the same entry point crash recovery
replays. There is no second serialization format to diverge.

Ordering and safety come from *where* the hub is tapped, not from the hub:

- ``TransactionManager.commit`` publishes a commit record under the commit
  lock *after* every staged version published — so a follower can never
  apply a commit the primary rolled back (e.g. an fsync failure after the
  append poisons the log and rolls the transaction back);
- ``Database._log_ddl`` publishes DDL under the exclusive statement lock.

Both sites serialize against each other, so the stream every subscription
sees is the primary's commit order.

The hub assigns its own replication LSNs (1, 2, ...) — monotonic per hub
lifetime and shared by every subscription, so a follower's ``applied_lsn``
compares directly against ``hub.lsn`` for lag. They are deliberately not
the WAL's append ordinals: followers attach from a snapshot mid-life, and
the WAL also carries records (flush markers) that are not shipped.
"""

from __future__ import annotations

import threading
from collections import deque

from flock.errors import ReplicationError
from flock.observability import metrics


class Subscription:
    """One follower's ordered queue of (lsn, record) pairs."""

    def __init__(self, hub: "ReplicationHub", name: str):
        self.hub = hub
        self.name = name
        self._cond = threading.Condition()
        self._queue: deque[tuple[int, dict]] = deque()
        self.closed = False

    def push(self, lsn: int, record: dict) -> None:
        with self._cond:
            if self.closed:
                return
            self._queue.append((lsn, record))
            self._cond.notify_all()

    def next(self, timeout: float | None = None) -> tuple[int, dict] | None:
        """The next record in publish order; None on timeout or closure.

        After :meth:`close`, already-queued records keep draining — closure
        only means no more will arrive.
        """
        with self._cond:
            if not self._queue and not self.closed:
                self._cond.wait(timeout)
            if self._queue:
                return self._queue.popleft()
            return None

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._queue)

    def close(self) -> None:
        with self._cond:
            self.closed = True
            self._cond.notify_all()


class ReplicationHub:
    """Fans committed records out to every subscribed follower, in order."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscriptions: list[Subscription] = []
        self._last_lsn = 0
        self.closed = False

    @property
    def lsn(self) -> int:
        """Replication LSN of the last record published (0 = none yet)."""
        return self._last_lsn

    def subscribe(self, name: str) -> Subscription:
        """A new subscription starting at the *current* position.

        Callers must subscribe while the primary is frozen (statement write
        lock + commit lock) so no record can slip between the snapshot the
        follower boots from and the first record it receives.
        """
        with self._lock:
            if self.closed:
                raise ReplicationError(
                    "cannot subscribe to a closed replication hub"
                )
            subscription = Subscription(self, name)
            self._subscriptions.append(subscription)
            return subscription

    def publish(self, record: dict) -> int:
        """Ship one record to every subscription; returns its LSN.

        Called from the primary's commit path (under the commit lock) and
        DDL path (under the exclusive statement lock), which is what makes
        the per-subscription order the commit order. Subscribers must not
        mutate the record — the same dict instance is shared by the durable
        log and every follower.
        """
        with self._lock:
            if self.closed:
                raise ReplicationError(
                    "replication hub is closed; detach it from the primary "
                    "before shutting the cluster down"
                )
            self._last_lsn += 1
            lsn = self._last_lsn
            for subscription in self._subscriptions:
                subscription.push(lsn, record)
        registry = metrics()
        registry.counter("replication.records_shipped").inc()
        registry.gauge("replication.lsn").set(lsn)
        return lsn

    def close(self) -> None:
        """Stop accepting publishes and let subscriptions drain out."""
        with self._lock:
            self.closed = True
            for subscription in self._subscriptions:
                subscription.close()
