"""flock.cluster — the replicated read-scaling serving tier.

The paper's enterprise-grade serving story ("millions of users") on top of
the PR 3 write-ahead log: a durable primary streams every committed WAL
record to N in-process follower replicas, each applying the stream through
the same replay path crash recovery uses and serving MVCC-snapshot reads
behind its own admission-controlled server; a router fans read-only
statements across followers within a staleness bound while writes and DDL
go to the primary; failover re-opens the directory through the normal
recovery machinery.

Typical use goes through :func:`flock.connect`::

    import flock

    with flock.connect("churn.db", replicas=4) as client:
        client.execute("INSERT INTO users VALUES (...)")     # primary
        client.execute("SELECT PREDICT(churn_model) ...")    # a follower

or directly::

    from flock.cluster import FlockCluster

    with FlockCluster("churn.db", replicas=4, max_staleness=0) as cluster:
        cluster.execute(...)
"""

from flock.cluster.cluster import ClusterClient, FlockCluster, PromotionReport
from flock.cluster.hub import ReplicationHub, Subscription
from flock.cluster.replica import FollowerReplica
from flock.errors import (
    FailoverError,
    ReadOnlyReplicaError,
    ReplicationError,
)

__all__ = [
    "ClusterClient",
    "FailoverError",
    "FlockCluster",
    "FollowerReplica",
    "PromotionReport",
    "ReadOnlyReplicaError",
    "ReplicationError",
    "ReplicationHub",
    "Subscription",
]
