"""Replica-scaling benchmark: read QPS versus follower count.

The workload is deliberately *analytic*: parameterless aggregate queries
that hit the prepared-plan fast path (plan cached, bind/optimize skipped)
and spend their time in numpy kernels, which release the GIL — so with one
serving worker and one engine worker per replica, the follower count is the
only parallelism axis being measured. Point-query workloads do not belong
here: their per-request cost is Python/GIL-bound and in-process replicas
cannot scale them (the morsel-parallel and micro-batching benchmarks cover
that axis).

Data loads through the primary in blocks and reaches every follower over
the replication stream — the loader mirrors the qdina-bench generator
shape (build rows once, load into the configured replica set, verify per
replica), with WAL shipping standing in for per-replica COPY.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time

import numpy as np

#: Rows per INSERT block when seeding the primary (qdina-bench style).
TABLE_BLOCK_SIZE = 5_000

#: Parameterless analytic read set: every statement is fully preparable
#: (plan-cache hit -> execute_plan) and numpy-dominated.
READ_QUERIES = [
    "SELECT COUNT(*) AS n, AVG(income) AS avg_income, "
    "AVG(credit_score) AS avg_score FROM loans",
    "SELECT region, COUNT(*) AS n, AVG(loan_amount) AS avg_amount "
    "FROM loans GROUP BY region",
    "SELECT AVG(debt_ratio) AS avg_debt FROM loans "
    "WHERE income > 40000 AND credit_score > 600",
    "SELECT MIN(loan_amount) AS lo, MAX(loan_amount) AS hi, "
    "SUM(years_employed) AS years FROM loans WHERE debt_ratio < 0.6",
]


def usable_cores() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def seed_primary(path, n_rows: int = 40_000, random_state: int = 0) -> dict:
    """Seed the durable directory with loans data + a deployed model.

    Loads through a plain durable session in ``TABLE_BLOCK_SIZE`` blocks
    (executemany — one commit per block), deploys ``loan_model``, then
    checkpoints so each benchmark topology reopens from the snapshot
    instead of replaying the whole load.
    """
    import flock
    from flock.ml import LogisticRegression, Pipeline, StandardScaler
    from flock.ml.datasets import make_loans
    from flock.mlgraph import to_graph
    from flock.serving.bench import FEATURES

    base = make_loans(2_000, random_state=random_state)
    pipeline = Pipeline(
        [("s", StandardScaler()), ("m", LogisticRegression(max_iter=150))]
    ).fit(base.feature_matrix(), base.target_vector())

    regions = ["north", "south", "east", "west"]
    rng = np.random.default_rng(random_state + 1)
    X = base.feature_matrix()
    idx = rng.integers(0, len(X), size=n_rows)
    rows = [
        (
            int(i + 1),
            float(X[j, 0]),
            float(X[j, 1]),
            float(X[j, 2]),
            float(X[j, 3]),
            float(X[j, 4]),
            regions[int(i) % len(regions)],
        )
        for i, j in enumerate(idx)
    ]

    with flock.connect(path) as client:
        client.execute(
            "CREATE TABLE loans (applicant_id INTEGER, income FLOAT, "
            "credit_score FLOAT, loan_amount FLOAT, debt_ratio FLOAT, "
            "years_employed FLOAT, region TEXT)"
        )
        blocks = 0
        for start in range(0, len(rows), TABLE_BLOCK_SIZE):
            client.executemany(
                "INSERT INTO loans VALUES (?, ?, ?, ?, ?, ?, ?)",
                rows[start : start + TABLE_BLOCK_SIZE],
            )
            blocks += 1
        client.registry.deploy(
            "loan_model", to_graph(pipeline, FEATURES, name="loan_model")
        )
        client.db.checkpoint()
        loaded = client.execute("SELECT COUNT(*) FROM loans").scalar()
    return {"rows": int(loaded), "blocks": blocks}


def _drive_reads(execute, requests: int, concurrency: int, seed: int):
    """Fire *requests* reads from *concurrency* threads; returns (elapsed, errors)."""
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(READ_QUERIES), size=requests)
    chunks: list[list[str]] = [[] for _ in range(concurrency)]
    for i, q in enumerate(picks):
        chunks[i % concurrency].append(READ_QUERIES[int(q)])
    chunks = [c for c in chunks if c]
    errors: list[BaseException] = []
    barrier = threading.Barrier(len(chunks) + 1)

    def worker(chunk):
        barrier.wait()
        for sql in chunk:
            try:
                execute(sql)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(chunk,), daemon=True)
        for chunk in chunks
    ]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - started, errors


def run_replica_scaling_benchmark(
    replica_counts=(1, 2, 4),
    requests: int = 240,
    concurrency: int = 8,
    n_rows: int = 40_000,
    seed: int = 7,
    data_dir: str | None = None,
    process: bool | None = None,
) -> dict:
    """Read QPS through the cluster router at each follower count.

    Each topology reopens the same seeded directory (recovery machinery
    included in the measurement setup, excluded from the measured window),
    warms the plan caches, waits for full catch-up, then drives the
    analytic read mix through the router. ``scaling`` is QPS relative to
    the single-replica topology. Honesty fields: ``cores`` records the
    host's usable CPUs — on one core the expected scaling is flat and the
    gate must skip, not pass vacuously.

    *process* selects the follower backend: ``None`` (the default) hosts
    each follower in its own worker process whenever the platform supports
    it — thread followers share one GIL with the router, so only worker
    processes can show real read scaling — and the resolved choice is
    recorded as ``backend`` in the report.
    """
    from flock.cluster import FlockCluster
    from flock.proc import proc_available

    use_process = proc_available() if process is None else bool(process)
    owned = data_dir is None
    root = data_dir or tempfile.mkdtemp(prefix="flock-replica-bench-")
    results = []
    try:
        seeded = seed_primary(root, n_rows=n_rows, random_state=seed)
        for count in replica_counts:
            cluster = FlockCluster(
                root,
                replicas=count,
                replica_workers=1,
                max_staleness=None,
                process=use_process,
            )
            try:
                cluster.database.set_workers(1)  # replicas, not morsels
                for follower in cluster.followers:
                    follower.database.set_workers(1)
                cluster.wait_for_catchup(30.0)
                for sql in READ_QUERIES:  # warm every plan cache
                    cluster.execute(sql)
                    for follower in cluster.followers:
                        follower.server.execute(sql)
                elapsed, errors = _drive_reads(
                    cluster.execute, requests, concurrency, seed
                )
                if errors:
                    raise errors[0]
                stats = cluster.stats()
                results.append(
                    {
                        "replicas": count,
                        "read_qps": requests / elapsed,
                        "elapsed_s": elapsed,
                        "follower_served": stats["follower_served"],
                        "primary_served": stats["primary"]["served"],
                        "replication_lsn": stats["replication_lsn"],
                    }
                )
            finally:
                cluster.close()
    finally:
        if owned:
            shutil.rmtree(root, ignore_errors=True)

    base_qps = results[0]["read_qps"] if results else 0.0
    for entry in results:
        entry["scaling"] = (
            entry["read_qps"] / base_qps if base_qps else 0.0
        )
    return {
        "requests": requests,
        "concurrency": concurrency,
        "n_rows": seeded["rows"],
        "load_blocks": seeded["blocks"],
        "queries": len(READ_QUERIES),
        "cores": usable_cores(),
        "backend": "process" if use_process else "thread",
        "replica_counts": list(replica_counts),
        "results": results,
    }


def render_replica_benchmark(report: dict) -> list[str]:
    """Human-readable lines for a run_replica_scaling_benchmark() report."""
    lines = [
        "Replica read scaling: analytic read QPS through the cluster router",
        f"  workload: {report['requests']} reads ({report['queries']} "
        f"prepared aggregate shapes) over {report['n_rows']} loans, "
        f"concurrency {report['concurrency']}, {report['cores']} core(s), "
        f"{report.get('backend', 'thread')} follower backend",
    ]
    for entry in report["results"]:
        lines.append(
            f"  {entry['replicas']} replica(s): {entry['read_qps']:8.1f} qps "
            f"({entry['scaling']:.2f}x), follower/primary served "
            f"{entry['follower_served']}/{entry['primary_served']}"
        )
    if report["cores"] < 4:
        lines.append(
            f"  note: {report['cores']} usable core(s) — in-process replicas "
            f"cannot scale here; the >=2.5x gate skips on this host"
        )
    return lines
