"""The cluster: primary + N followers + a router + failover.

:class:`FlockCluster` is the read-scaling serving tier the paper's
"millions of users" story needs: one durable primary takes every write and
DDL, streams each committed WAL record to N in-process follower replicas
(see :mod:`flock.cluster.hub`), and a router fans read-only statements —
point PREDICTs and SELECTs — across the followers round-robin, bounded by
per-replica staleness measured in replication LSNs.

Bootstrap freezes the primary (statement write lock + commit lock), takes
one :func:`~flock.db.persist.save_database` snapshot, and subscribes every
follower *inside the freeze* — so the snapshot plus the stream is gap-free
by construction. Failover (:meth:`FlockCluster.promote`) selects the
most-caught-up follower, then re-opens the durable directory through the
same ``Database.open`` recovery machinery a crash restart would use: the
promoted state is the recovered committed prefix, never a follower's
unverified memory.
"""

from __future__ import annotations

import itertools
import shutil
import tempfile
import threading
from pathlib import Path
from typing import Any, Sequence

from flock.cluster.hub import ReplicationHub
from flock.cluster.replica import FollowerReplica
from flock.db.engine import is_read_only
from flock.db.persist import load_database, save_database
from flock.errors import FailoverError, ReplicationError
from flock.observability import metrics
from flock.serving.server import FlockServer, ServingFuture


def build_follower_stack(snapshot_dir, *, cross_optimizer=None,
                         replica_workers: int = 1,
                         server_kwargs: dict | None = None):
    """A follower's engine + registry + read-only server from a snapshot.

    The one recipe for booting a follower, shared by the thread backend
    (:meth:`FlockCluster._build_follower`) and the process backend (the
    ``replica`` role in :mod:`flock.proc.worker`), so both tiers serve
    from byte-identical stacks. Returns ``(database, registry, server)``.
    """
    from flock.db.optimizer.rules import Optimizer
    from flock.inference.optimizer import CrossOptimizer
    from flock.inference.predict import DefaultScorer
    from flock.registry import ModelRegistry

    cross = cross_optimizer or CrossOptimizer()
    registry = ModelRegistry()
    database = load_database(
        snapshot_dir,
        model_store=registry,
        scorer=DefaultScorer(),
        optimizer=Optimizer(extra_rules=cross.rules()),
    )
    database.cross_optimizer = cross
    # Engine workers stay at the follower's own setting (default 1):
    # replicas are the parallelism axis of this tier, one engine each.
    registry.bind_database(database)
    registry.load_from_database(database)
    server = FlockServer(
        database,
        workers=replica_workers,
        read_only=True,
        **(server_kwargs or {}),
    )
    return database, registry, server


class PromotionReport(dict):
    """What :meth:`FlockCluster.promote` did (dict for easy rendering)."""


class FlockCluster:
    """A replicated serving tier over one durable database directory.

    The cluster owns everything: the primary session (opened through the
    normal recovery machinery), its serving front-end, the replication hub
    and the followers. ``execute``/``submit`` route statements; writes and
    DDL go to the primary, read-only statements round-robin across healthy
    followers within ``max_staleness`` replicated records (None = any
    follower, 0 = only fully caught-up ones), falling back to the primary
    when no follower qualifies.
    """

    def __init__(
        self,
        path,
        *,
        replicas: int = 2,
        cross_optimizer=None,
        sync_mode: str = "commit",
        group_window_ms: float = 1.0,
        checkpoint_bytes: int | None = None,
        max_staleness: int | None = None,
        workers: int = 4,
        replica_workers: int = 1,
        max_batch_size: int = 32,
        batch_wait_ms: float = 1.0,
        max_pending: int = 256,
        default_timeout_s: float = 30.0,
        process: bool | None = None,
    ):
        if path is None:
            raise ReplicationError(
                "a cluster needs a durable primary: WAL shipping starts "
                "from a database directory, not from memory"
            )
        if replicas < 1:
            raise ReplicationError("a cluster needs at least one replica")
        self.path = Path(path)
        self.replicas = replicas
        self.max_staleness = max_staleness
        self._cross_optimizer = cross_optimizer
        self._open_kwargs = dict(
            sync_mode=sync_mode,
            group_window_ms=group_window_ms,
            checkpoint_bytes=checkpoint_bytes,
        )
        self._server_kwargs = dict(
            max_batch_size=max_batch_size,
            batch_wait_ms=batch_wait_ms,
            max_pending=max_pending,
            default_timeout_s=default_timeout_s,
        )
        self._workers = workers
        self._replica_workers = replica_workers
        from flock.proc import proc_enabled

        # The backend seam. A custom cross-optimizer is a live object the
        # JSON worker config cannot carry; such clusters stay on threads
        # (followers must plan with the same rules as the primary).
        self._process = proc_enabled(process) and cross_optimizer is None
        #: Bumped on every promotion; stale clients can detect a failover.
        self.epoch = 1
        self._rr = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        self.followers: list[FollowerReplica] = []
        self._open_primary()
        self._bootstrap_followers()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _open_primary(self) -> None:
        import flock

        self.session = flock.open_session(
            self.path,
            self._cross_optimizer,
            **self._open_kwargs,
        )
        self.database = self.session.db
        self.registry = self.session.registry
        self.primary = FlockServer(
            self.session, workers=self._workers, **self._server_kwargs
        )

    def _bootstrap_followers(self) -> None:
        """Snapshot-and-subscribe under one freeze; build followers after.

        The freeze (statement write lock + commit lock, the same pair a
        checkpoint takes) guarantees no commit lands between the snapshot
        and the subscriptions — the follower's first streamed record is
        exactly the first commit after its snapshot.
        """
        database = self.database
        self.hub = ReplicationHub()
        snapshot_dir = Path(tempfile.mkdtemp(prefix="flock-replica-seed-"))
        try:
            subscriptions = []
            with database.statement_lock.write_locked():
                with database.transactions._commit_lock:
                    save_database(database, snapshot_dir)
                    for index in range(self.replicas):
                        subscriptions.append(
                            self.hub.subscribe(f"replica-{index}")
                        )
                    database.transactions.replication = self.hub
            self.followers = [
                self._build_follower(snapshot_dir, subscription)
                for subscription in subscriptions
            ]
        finally:
            shutil.rmtree(snapshot_dir, ignore_errors=True)
        metrics().gauge("replication.followers").set(len(self.followers))

    def _build_follower(self, snapshot_dir, subscription) -> FollowerReplica:
        if self._process:
            # The worker loads the snapshot during its boot handshake —
            # which completes before _bootstrap_followers deletes the
            # snapshot directory — then applies forwarded WAL records.
            from flock.proc.replica import ProcessFollowerReplica
            from flock.proc.supervisor import WorkerHandle

            handle = WorkerHandle({
                "role": "replica",
                "name": subscription.name,
                "path": str(snapshot_dir),
                "replica_workers": self._replica_workers,
                "server_kwargs": dict(self._server_kwargs),
            })
            return ProcessFollowerReplica(
                subscription.name, handle, subscription, self.hub
            )
        database, registry, server = build_follower_stack(
            snapshot_dir,
            cross_optimizer=self._cross_optimizer,
            replica_workers=self._replica_workers,
            server_kwargs=self._server_kwargs,
        )
        return FollowerReplica(
            subscription.name, database, registry, subscription, self.hub,
            server,
        )

    @property
    def backend(self) -> str:
        return "process" if self._process else "thread"

    # ------------------------------------------------------------------
    # The router
    # ------------------------------------------------------------------
    def submit(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        user: str = "admin",
        timeout: float | None = None,
    ) -> ServingFuture:
        """Route one statement: reads to a follower, writes to the primary."""
        return self._route(sql).submit(sql, params, user, timeout)

    def execute(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        user: str = "admin",
        timeout: float | None = None,
    ):
        return self.submit(sql, params, user, timeout).result()

    def executemany(self, sql: str, seq_of_params, user: str = "admin"):
        """Bulk-bind writes on the primary engine.

        Goes straight to the primary's single-parse fast path — never a
        follower, since ``executemany`` statements stage writes. The
        resulting commits publish through the replication hub like any
        other, so the batch still ships to every follower.
        """
        return self.database.executemany(sql, seq_of_params, user=user)

    def _route(self, sql: str) -> FlockServer:
        """The server this statement should run on.

        Classification reuses the primary's plan cache (parse once for the
        router *and* the primary's own execution); unparseable statements go
        to the primary, whose execution raises the parse error in context.
        """
        registry = metrics()
        entry = self.primary.plan_cache.lookup(sql)
        if entry is None or not is_read_only(entry.statement):
            registry.counter("replication.route.primary").inc()
            return self.primary
        follower = self._pick_follower()
        if follower is None:
            # Every follower is unhealthy or beyond the staleness bound:
            # the primary always has the freshest data.
            registry.counter("replication.route.fallback_primary").inc()
            return self.primary
        registry.counter("replication.route.follower").inc()
        registry.counter(f"replication.route.{follower.name}").inc()
        return follower.server

    def _pick_follower(self) -> FollowerReplica | None:
        followers = self.followers
        if not followers:
            return None
        start = next(self._rr)
        bound = self.max_staleness
        for offset in range(len(followers)):
            follower = followers[(start + offset) % len(followers)]
            if not follower.healthy:
                continue
            if bound is not None and follower.lag > bound:
                continue
            return follower
        return None

    def connect(self, user: str = "admin") -> "ClusterClient":
        return ClusterClient(self, user)

    # ------------------------------------------------------------------
    # Replication status
    # ------------------------------------------------------------------
    def wait_for_catchup(self, timeout: float | None = 10.0) -> bool:
        """Block until every healthy follower applied the full stream."""
        target = self.hub.lsn
        return all(
            follower.wait_for(target, timeout)
            for follower in self.followers
            if follower.healthy
        )

    def stats(self) -> dict:
        return {
            "epoch": self.epoch,
            "backend": self.backend,
            "replication_lsn": self.hub.lsn,
            "wal_lsn": (
                None if self.database.wal is None else self.database.wal.lsn
            ),
            "max_staleness": self.max_staleness,
            "primary": self.primary.stats(),
            "followers": [f.status() for f in self.followers],
            "follower_served": sum(f.server._served for f in self.followers),
        }

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def promote(self, drain_timeout: float = 5.0) -> PromotionReport:
        """Promote after primary failure: recover the directory, rebuild.

        Selects the most-caught-up follower (the promotion *candidate* —
        with in-process replicas its applied state is a committed prefix,
        so it is the right node to keep serving reads while the new primary
        recovers), closes the old tier, and re-opens the durable directory
        through ``Database.open``'s recovery machinery. The recovered
        committed prefix is authoritative: acknowledged transactions are in
        the WAL by definition, so promotion can never lose one.
        """
        with self._lock:
            if self._closed:
                raise FailoverError("cluster is closed")
            if not self.followers:
                raise FailoverError("no follower to promote")
            # Let followers drain what the primary already shipped.
            target = self.hub.lsn
            for follower in self.followers:
                if follower.healthy:
                    follower.wait_for(target, drain_timeout)
            candidate = max(
                (f for f in self.followers if f.healthy),
                key=lambda f: f.applied_lsn,
                default=None,
            )
            if candidate is None:
                raise FailoverError(
                    "every follower is unhealthy; recover the directory "
                    "directly with flock.connect / Database.open"
                )
            promoted = {
                "name": candidate.name,
                "applied_lsn": candidate.applied_lsn,
            }
            self._teardown(drain_primary=False)
            self.epoch += 1
            self._open_primary()
            self._bootstrap_followers()
            recovery = self.database.wal.last_recovery
            metrics().counter("replication.promotions").inc()
            return PromotionReport(
                promoted=promoted,
                epoch=self.epoch,
                recovery=None if recovery is None else recovery.as_dict(),
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _teardown(self, drain_primary: bool) -> None:
        # Detach the hub first so late commits cannot hit a closed hub.
        self.database.transactions.replication = None
        try:
            self.primary.shutdown(drain=drain_primary)
        except Exception:
            # A poisoned WAL fails the drain checkpoint; the log already
            # holds every acknowledged commit, so recovery is unaffected.
            pass
        self.hub.close()
        for follower in self.followers:
            follower.stop(drain=True)
        self.followers = []
        self.database.close()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._teardown(drain_primary=True)

    def __enter__(self) -> "FlockCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ClusterClient:
    """Blocking per-user client routed through a :class:`FlockCluster`."""

    def __init__(self, cluster: FlockCluster, user: str = "admin"):
        self.cluster = cluster
        self.user = user

    def execute(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        timeout: float | None = None,
    ):
        return self.cluster.execute(sql, params, user=self.user,
                                    timeout=timeout)

    def submit(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        timeout: float | None = None,
    ) -> ServingFuture:
        return self.cluster.submit(sql, params, user=self.user,
                                   timeout=timeout)
