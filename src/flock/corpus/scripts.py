"""Synthetic data-science script corpora with ground truth (Table 2).

The paper evaluates Python provenance capture on 49 Kaggle scripts (95% of
models, 61% of training datasets identified) and 37 uniform Microsoft
production scripts (100%/100%). We bundle two corpora with the same
character:

- the *kaggle-like* corpus is heterogeneous and includes constructs static
  analysis legitimately cannot resolve — models built via ``getattr`` or
  imported from unknown libraries, datasets loaded through dynamically
  computed paths or non-KB loader functions;
- the *enterprise* corpus is templated and uniform, the way production
  pipelines are.

Each :class:`ScriptCase` carries its ground-truth models and datasets, so
coverage is *measured*, not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ScriptCase:
    """One script plus its ground truth."""

    name: str
    source: str
    true_models: tuple[str, ...]  # constructor class names, one per model
    true_datasets: tuple[str, ...]  # source identifiers


@dataclass
class CoverageResult:
    """Recall of the analyzer against a corpus's ground truth."""

    scripts: int = 0
    models_total: int = 0
    models_found: int = 0
    datasets_total: int = 0
    datasets_found: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def model_coverage(self) -> float:
        return self.models_found / self.models_total if self.models_total else 0.0

    @property
    def dataset_coverage(self) -> float:
        return (
            self.datasets_found / self.datasets_total
            if self.datasets_total
            else 0.0
        )


# ----------------------------------------------------------------------
# Template bodies. {i} is the script index, {csv} a dataset filename,
# {model} a model class, {target} a target column name.
# ----------------------------------------------------------------------
_PLAIN = '''
import pandas as pd
from sklearn.{module} import {model}
from sklearn.metrics import accuracy_score
from sklearn.model_selection import train_test_split

df = pd.read_csv("{csv}")
X = df.drop(columns=["{target}"])
y = df["{target}"]
X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25)
clf = {model}({params})
clf.fit(X_train, y_train)
pred = clf.predict(X_test)
print(accuracy_score(y_test, pred))
'''

_TWO_MODELS = '''
import pandas as pd
from sklearn.linear_model import LogisticRegression
from sklearn.ensemble import RandomForestClassifier
from sklearn.metrics import roc_auc_score

train = pd.read_csv("{csv}")
X = train.drop(columns=["{target}"])
y = train["{target}"]
base = LogisticRegression(C={c})
base.fit(X, y)
forest = RandomForestClassifier(n_estimators={n})
forest.fit(X, y)
print(roc_auc_score(y, forest.predict(X)))
'''

_XGB = '''
import pandas as pd
import xgboost as xgb
from xgboost import XGBClassifier

data = pd.read_csv("{csv}")
features = data.drop(columns=["{target}"])
labels = data["{target}"]
booster = XGBClassifier(max_depth={d}, n_estimators={n})
booster.fit(features, labels)
'''

_SQL_SOURCE = '''
import pandas as pd
from sklearn.ensemble import GradientBoostingRegressor

frame = pd.read_sql("{query}", connection)
model = GradientBoostingRegressor(learning_rate={lr})
model.fit(frame.drop(columns=["{target}"]), frame["{target}"])
'''

# Adversarial: the model class is resolved dynamically — static analysis
# cannot know which estimator this constructs.
_DYNAMIC_MODEL = '''
import pandas as pd
import sklearn.ensemble as ensemble

df = pd.read_csv("{csv}")
X = df.drop(columns=["{target}"])
y = df["{target}"]
cls = getattr(ensemble, "RandomForest" + "Classifier")
model = cls(n_estimators={n})
model.fit(X, y)
'''

# Adversarial: an estimator from a library outside the knowledge base.
_UNKNOWN_LIBRARY = '''
import pandas as pd
from fancyboost import FancyBooster

df = pd.read_csv("{csv}")
model = FancyBooster(rounds={n})
model.fit(df.drop(columns=["{target}"]), df["{target}"])
'''

# Adversarial dataset: path assembled at runtime.
_DYNAMIC_PATH = '''
import os
import pandas as pd
from sklearn.linear_model import LogisticRegression

DATA_DIR = os.environ.get("DATA_DIR", "./data")
df = pd.read_csv(os.path.join(DATA_DIR, "{csv}"))
clf = LogisticRegression(max_iter={n})
clf.fit(df.drop(columns=["{target}"]), df["{target}"])
'''

# Adversarial dataset: loaded with a non-KB function.
_NUMPY_LOADER = '''
import numpy as np
from sklearn.svm import SVC

raw = np.loadtxt("{csv}", delimiter=",")
X, y = raw[:, :-1], raw[:, -1]
svm = SVC(C={c})
svm.fit(X, y)
'''

# Adversarial dataset: manual file handling.
_MANUAL_READ = '''
import csv
import pandas as pd
from sklearn.tree import DecisionTreeClassifier

rows = []
with open("{csv}") as handle:
    for row in csv.reader(handle):
        rows.append(row)
frame = pd.DataFrame(rows[1:], columns=rows[0])
tree = DecisionTreeClassifier(max_depth={d})
tree.fit(frame.drop(columns=["{target}"]), frame["{target}"])
'''

_ENTERPRISE = '''
import pandas as pd
from flock.ml import {model}
from flock.ml.metrics import accuracy_score

frame = pd.read_sql_table("{table}", engine)
features = frame.drop(columns=["{target}"])
labels = frame["{target}"]
model = {model}({params})
model.fit(features, labels)
score = accuracy_score(labels, model.predict(features))
'''

_SKLEARN_MODELS = [
    ("linear_model", "LogisticRegression", "C=1.0"),
    ("ensemble", "RandomForestClassifier", "n_estimators=100"),
    ("ensemble", "GradientBoostingClassifier", "learning_rate=0.1"),
    ("tree", "DecisionTreeClassifier", "max_depth=6"),
    ("svm", "SVC", "C=2.0"),
    ("naive_bayes", "GaussianNB", ""),
    ("neighbors", "KNeighborsClassifier", "n_neighbors=5"),
]

_TOPICS = [
    "titanic", "housing", "churn", "fraud", "credit", "retail", "clicks",
    "weather", "sensor", "energy", "sales", "traffic", "reviews", "health",
]


def kaggle_like_corpus(n_scripts: int = 49) -> list[ScriptCase]:
    """A heterogeneous corpus of *n_scripts* with known ground truth.

    The mix is fixed (deterministic): roughly 1 in 10 models is constructed
    in a way static analysis cannot resolve, and roughly 4 in 10 datasets
    are loaded through dynamic paths or non-KB loaders — the failure modes
    behind the paper's 95% / 61% coverage on Kaggle scripts.
    """
    cases: list[ScriptCase] = []
    # Each tuple: (template, model ground truth, dataset resolvable?).
    # Per 16 scripts: 19 models of which 1 unresolvable (≈95% coverage) and
    # 16 datasets of which 6 unresolvable (≈62% coverage).
    cycle = [
        ("plain", True, True),
        ("plain", True, False),  # dynamic path
        ("two_models", True, True),
        ("plain", True, False),  # manual read
        ("numpy_loader", True, False),
        ("xgb", True, True),
        ("plain", True, False),  # dynamic path
        ("sql", True, True),
        ("dynamic_model", False, True),
        ("plain", True, True),
        ("two_models", True, True),
        ("plain", True, False),  # manual read
        ("plain", True, True),
        ("numpy_loader", True, False),
        ("two_models", True, True),
        ("plain", True, True),
    ]
    for i in range(n_scripts):
        kind, model_ok, dataset_ok = cycle[i % len(cycle)]
        topic = _TOPICS[i % len(_TOPICS)]
        csv = f"{topic}_{i}.csv"
        target = "label"
        if kind == "plain":
            module, model, params = _SKLEARN_MODELS[i % len(_SKLEARN_MODELS)]
            if dataset_ok:
                source = _PLAIN.format(
                    module=module, model=model, params=params,
                    csv=csv, target=target, i=i,
                )
            elif i % 3 == 0:
                source = _MANUAL_READ.format(csv=csv, target=target, d=4 + i % 5)
                model = "DecisionTreeClassifier"
            else:
                source = _DYNAMIC_PATH.format(csv=csv, target=target, n=100 + i)
                model = "LogisticRegression"
            cases.append(ScriptCase(f"kaggle_{i:02d}", source, (model,), (csv,)))
        elif kind == "two_models":
            source = _TWO_MODELS.format(csv=csv, target=target, c=0.5, n=200)
            cases.append(
                ScriptCase(
                    f"kaggle_{i:02d}",
                    source,
                    ("LogisticRegression", "RandomForestClassifier"),
                    (csv,),
                )
            )
        elif kind == "xgb":
            source = _XGB.format(csv=csv, target=target, d=5, n=300)
            cases.append(
                ScriptCase(f"kaggle_{i:02d}", source, ("XGBClassifier",), (csv,))
            )
        elif kind == "sql":
            query = f"SELECT * FROM {topic}_features"
            source = _SQL_SOURCE.format(query=query, target=target, lr=0.05)
            cases.append(
                ScriptCase(
                    f"kaggle_{i:02d}",
                    source,
                    ("GradientBoostingRegressor",),
                    (query,),
                )
            )
        elif kind == "dynamic_model":
            source = _DYNAMIC_MODEL.format(csv=csv, target=target, n=150)
            cases.append(
                ScriptCase(
                    f"kaggle_{i:02d}",
                    source,
                    ("RandomForestClassifier",),
                    (csv,),
                )
            )
        elif kind == "numpy_loader":
            source = _NUMPY_LOADER.format(csv=csv, c=1.5)
            cases.append(
                ScriptCase(f"kaggle_{i:02d}", source, ("SVC",), (csv,))
            )
    return cases


def enterprise_corpus(n_scripts: int = 37) -> list[ScriptCase]:
    """A uniform, templated production corpus (the Microsoft column)."""
    models = [
        ("LogisticRegression", "max_iter=200"),
        ("GradientBoostingClassifier", "n_estimators=50"),
        ("RandomForestClassifier", "n_estimators=30"),
        ("DecisionTreeClassifier", "max_depth=8"),
    ]
    tables = ["loans", "patients", "bigdata_jobs", "telemetry", "billing"]
    cases = []
    for i in range(n_scripts):
        model, params = models[i % len(models)]
        table = tables[i % len(tables)]
        source = _ENTERPRISE.format(
            model=model, params=params, table=table, target="label"
        )
        cases.append(
            ScriptCase(f"enterprise_{i:02d}", source, (model,), (table,))
        )
    return cases


def evaluate_coverage(cases: list[ScriptCase], analyzer) -> CoverageResult:
    """Measure the analyzer's recall against a corpus's ground truth.

    A model counts as found when the analyzer reports its exact constructor
    class; a dataset counts when the analyzer resolves its exact source
    identifier.
    """
    result = CoverageResult(scripts=len(cases))
    for case in cases:
        analysis = analyzer.analyze_script(case.source, case.name)
        found_models = list(m.class_name for m in analysis.models)
        for true_model in case.true_models:
            result.models_total += 1
            if true_model in found_models:
                found_models.remove(true_model)
                result.models_found += 1
            else:
                result.failures.append(f"{case.name}: missed model {true_model}")
        found_sources = set(analysis.dataset_sources)
        for true_dataset in case.true_datasets:
            result.datasets_total += 1
            if true_dataset in found_sources:
                result.datasets_found += 1
            else:
                result.failures.append(
                    f"{case.name}: missed dataset {true_dataset}"
                )
    return result
