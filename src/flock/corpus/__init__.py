"""flock.corpus — synthetic data-science corpora for the evaluation.

Stands in for the paper's crawl of >4M public GitHub notebooks (Figure 2)
and the Kaggle/Microsoft script datasets (the Python-provenance coverage
table): deterministic generators with the same statistical structure and
known ground truth.
"""

from flock.corpus.analysis import CoverageCurve, analyze_corpus
from flock.corpus.generator import CorpusConfig, Notebook, generate_corpus
from flock.corpus.scripts import ScriptCase, kaggle_like_corpus, enterprise_corpus

__all__ = [
    "CorpusConfig",
    "CoverageCurve",
    "Notebook",
    "ScriptCase",
    "analyze_corpus",
    "enterprise_corpus",
    "generate_corpus",
    "kaggle_like_corpus",
]
