"""Synthetic notebook-corpus generator (the Figure 2 substrate).

The paper crawled >4M GitHub notebooks in 2017 and 2019 and plotted, for
each K, the fraction of notebooks whose imports are *completely* covered by
the K most popular packages. We reproduce the generator of that statistic:
package popularity follows a Zipf law (empirically true of package imports),
notebooks sample a handful of packages by popularity, and the two years
differ exactly the way the paper reports — 2019 has ~3× more packages in
total (the field expanded) but a more concentrated head (numpy/pandas/
sklearn solidified), so top-K coverage is a few points *higher*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from flock.errors import FlockError

# The head of the ecosystem, most popular first (Figure 2 calls out numpy,
# pandas and sklearn as solidifying their position).
HEAD_PACKAGES = [
    "numpy",
    "pandas",
    "matplotlib",
    "sklearn",
    "scipy",
    "seaborn",
    "tensorflow",
    "keras",
    "torch",
    "xgboost",
    "statsmodels",
    "nltk",
    "plotly",
    "requests",
    "bs4",
    "cv2",
    "PIL",
    "lightgbm",
    "gensim",
    "spacy",
]


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters of one year's synthetic corpus.

    Import popularity is a Zipf head plus a uniform tail: ``tail_mass`` of
    the probability is spread evenly over the whole universe (long-tail
    experimentation), the rest follows ``rank^-zipf_exponent`` (the
    established head). This matches how the ecosystem actually grew between
    the paper's 2017 and 2019 crawls: the head *concentrated* while the
    tail *widened*.
    """

    year: int
    n_notebooks: int = 20_000
    n_packages: int = 2_000
    zipf_exponent: float = 1.7
    tail_mass: float = 0.10
    mean_imports: float = 4.0
    random_state: int = 7

    def __post_init__(self) -> None:
        if self.n_packages < len(HEAD_PACKAGES):
            raise FlockError(
                f"n_packages must be at least {len(HEAD_PACKAGES)}"
            )
        if self.zipf_exponent <= 0:
            raise FlockError("zipf_exponent must be positive")
        if not 0.0 <= self.tail_mass < 1.0:
            raise FlockError("tail_mass must be in [0, 1)")


# Calibrated year profiles: between the crawls the corpus grew ~3.5×, the
# package universe tripled, and the head sharpened. These reproduce the
# paper's observations (3× more packages used in total; top-10 coverage up
# ~5 points; numpy/pandas/sklearn on top).
YEAR_2017 = CorpusConfig(
    year=2017,
    n_notebooks=6_000,
    n_packages=4_000,
    zipf_exponent=1.7,
    tail_mass=0.10,
    random_state=17,
)
YEAR_2019 = CorpusConfig(
    year=2019,
    n_notebooks=21_000,
    n_packages=12_000,
    zipf_exponent=1.95,
    tail_mass=0.08,
    random_state=19,
)


@dataclass(frozen=True)
class Notebook:
    """One synthetic notebook: just its set of imported packages."""

    notebook_id: int
    packages: frozenset[str]


@dataclass
class Corpus:
    """A year's corpus plus the popularity table used to build it."""

    config: CorpusConfig
    notebooks: list[Notebook]
    package_names: list[str] = field(repr=False)  # by popularity rank

    @property
    def total_packages_used(self) -> int:
        used: set[str] = set()
        for nb in self.notebooks:
            used |= nb.packages
        return len(used)


def package_universe(n_packages: int) -> list[str]:
    """Package names ordered by popularity rank (head first)."""
    tail = [f"pkg_{i:05d}" for i in range(n_packages - len(HEAD_PACKAGES))]
    return HEAD_PACKAGES + tail


def zipf_weights(n: int, exponent: float, tail_mass: float = 0.0) -> np.ndarray:
    """Zipf head + uniform tail popularity distribution over n ranks."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    head = ranks**-exponent
    head = head / head.sum() * (1.0 - tail_mass)
    return head + tail_mass / n


def generate_corpus(config: CorpusConfig) -> Corpus:
    """Generate one year's notebook corpus deterministically."""
    rng = np.random.default_rng(config.random_state)
    names = package_universe(config.n_packages)
    weights = zipf_weights(
        config.n_packages, config.zipf_exponent, config.tail_mass
    )

    notebooks: list[Notebook] = []
    # Import counts: 1 + Poisson(mean-1); every notebook imports something.
    counts = 1 + rng.poisson(config.mean_imports - 1.0, size=config.n_notebooks)
    for i in range(config.n_notebooks):
        k = min(int(counts[i]), config.n_packages)
        chosen = rng.choice(
            config.n_packages, size=k, replace=False, p=weights
        )
        notebooks.append(
            Notebook(i, frozenset(names[j] for j in chosen))
        )
    return Corpus(config=config, notebooks=notebooks, package_names=names)
