"""Coverage analysis over notebook corpora (Figure 2's statistic).

For each K: the fraction of notebooks whose *entire* import set falls within
the K most popular packages (by observed import counts, as the paper's crawl
measured — not the generator's latent ranks).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from flock.corpus.generator import Corpus


@dataclass(frozen=True)
class CoverageCurve:
    """Coverage (%) at each requested K, plus corpus-level facts."""

    year: int
    ks: tuple[int, ...]
    coverage: tuple[float, ...]  # fractions in [0, 1], aligned with ks
    total_packages: int
    top_packages: tuple[str, ...]

    def at(self, k: int) -> float:
        try:
            return self.coverage[self.ks.index(k)]
        except ValueError:
            raise KeyError(f"coverage was not computed at K={k}") from None

    def rows(self) -> list[tuple[int, float]]:
        return list(zip(self.ks, self.coverage))


DEFAULT_KS = (1, 2, 5, 10, 20, 50, 100, 200, 500)


def observed_popularity(corpus: Corpus) -> list[tuple[str, int]]:
    """Packages by observed import count, most imported first."""
    counts: Counter[str] = Counter()
    for notebook in corpus.notebooks:
        counts.update(notebook.packages)
    return counts.most_common()


def analyze_corpus(
    corpus: Corpus, ks: tuple[int, ...] = DEFAULT_KS
) -> CoverageCurve:
    """Compute the top-K coverage curve for one corpus."""
    popularity = observed_popularity(corpus)
    order = [name for name, _ in popularity]
    rank = {name: i for i, name in enumerate(order)}

    # For each notebook, the rank of its least popular import decides the
    # smallest K that fully covers it.
    n = len(corpus.notebooks)
    needed: list[int] = []
    for notebook in corpus.notebooks:
        worst = max(rank[p] for p in notebook.packages) + 1
        needed.append(worst)
    needed.sort()

    coverage = []
    for k in ks:
        # binary count: notebooks with needed <= k
        import bisect

        covered = bisect.bisect_right(needed, k)
        coverage.append(covered / n if n else 0.0)

    return CoverageCurve(
        year=corpus.config.year,
        ks=tuple(ks),
        coverage=tuple(coverage),
        total_packages=len(order),
        top_packages=tuple(order[:10]),
    )
