"""The worker wire format: length-prefixed, CRC-framed pickles.

One frame carries one message::

    +-------+----------+----------+------------------+
    | magic | length   | crc32    | payload          |
    | 4 B   | 4 B (BE) | 4 B (BE) | ``length`` bytes |
    +-------+----------+----------+------------------+

The payload is a pickle, but the frame layer never trusts it: the declared
length is capped (an oversized header is rejected before a single payload
byte is read) and the CRC32 of the payload is verified *before*
``pickle.loads`` runs, so a bit-flipped or truncated frame raises a typed
:class:`~flock.errors.ProtocolError` instead of deserializing garbage.
EOF is classified: at a frame boundary it is the peer closing (clean, or a
crash the caller maps to :class:`~flock.errors.WorkerCrashError`);
mid-frame it is corruption. A socket deadline surfaces as
:class:`~flock.errors.WorkerTimeoutError` — the hung-worker guard.

Both directions of the parent<->worker channel use this module, so the
protocol-corruption battery exercises exactly the code the runtime runs.
"""

from __future__ import annotations

import pickle
import socket
import struct
import zlib
from typing import Any

from flock.errors import ProtocolError, WorkerCrashError, WorkerTimeoutError

#: Frame preamble; anything else at a frame boundary is a desynced stream.
MAGIC = b"FLKP"

_HEADER = struct.Struct(">4sII")  # magic, payload length, payload crc32

#: Hard cap on one frame's payload. Large enough for merged snapshots of
#: benchmark-sized tables, small enough that a corrupted length field is
#: rejected instead of attempting a multi-gigabyte read.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def _recv_exact(sock: socket.socket, n: int, *, mid_frame: bool,
                eof_ok: bool) -> bytes | None:
    """Read exactly *n* bytes, classifying EOF and deadlines."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as exc:
            raise WorkerTimeoutError(
                f"worker channel: no reply within the deadline "
                f"({remaining} of {n} byte(s) outstanding)"
            ) from exc
        except OSError as exc:
            raise WorkerCrashError(
                f"worker channel: socket failed mid-read: {exc}"
            ) from exc
        if not chunk:
            if chunks or mid_frame:
                raise ProtocolError(
                    f"worker channel: EOF mid-frame "
                    f"({n - remaining} of {n} byte(s) read)"
                )
            if eof_ok:
                return None
            raise WorkerCrashError(
                "worker channel: connection closed by peer"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, *, eof_ok: bool = False) -> bytes | None:
    """One verified payload, or None on clean EOF (``eof_ok`` only).

    Raises :class:`ProtocolError` for bad magic, oversized lengths,
    mid-frame EOF and CRC mismatches — all *before* the payload reaches
    any deserializer.
    """
    header = _recv_exact(sock, _HEADER.size, mid_frame=False, eof_ok=eof_ok)
    if header is None:
        return None
    magic, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(
            f"worker channel: bad frame magic {magic!r} "
            f"(expected {MAGIC!r}); stream is desynced"
        )
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"worker channel: declared frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap; refusing to read"
        )
    payload = _recv_exact(sock, length, mid_frame=True, eof_ok=False)
    actual = zlib.crc32(payload)
    if actual != crc:
        raise ProtocolError(
            f"worker channel: payload CRC mismatch "
            f"(declared {crc:#010x}, computed {actual:#010x}); "
            f"refusing to deserialize a corrupt frame"
        )
    return payload


def send_frame(sock: socket.socket, payload: bytes) -> None:
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"worker channel: refusing to send a {len(payload)}-byte frame "
            f"(cap {MAX_FRAME_BYTES})"
        )
    header = _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload))
    try:
        sock.sendall(header + payload)
    except socket.timeout as exc:
        raise WorkerTimeoutError(
            "worker channel: send missed the deadline"
        ) from exc
    except OSError as exc:
        raise WorkerCrashError(
            f"worker channel: send failed (peer gone?): {exc}"
        ) from exc


def dump_message(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def send_message(sock: socket.socket, obj: Any) -> None:
    send_frame(sock, dump_message(obj))


def recv_message(sock: socket.socket, *, eof_ok: bool = False) -> Any:
    """One message object; ``None`` on clean EOF when ``eof_ok``.

    The CRC has already vouched for the bytes by the time they reach
    ``pickle.loads``; a failure here means the *peer* pickled something
    this process cannot rebuild, which is a protocol error, not data
    corruption.
    """
    payload = recv_frame(sock, eof_ok=eof_ok)
    if payload is None:
        return None
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise ProtocolError(
            f"worker channel: CRC-valid frame failed to deserialize: {exc!r}"
        ) from exc
