"""The process-backed follower: a worker applies, the parent forwards.

:class:`ProcessFollowerReplica` subclasses the thread-backed
:class:`~flock.cluster.replica.FollowerReplica` and keeps its entire
contract — ``applied_lsn``/``wait_for`` catch-up accounting, the
``pause``/``resume`` lag injectors, ``healthy``/``lag`` routing inputs,
``status()`` — by overriding exactly two things:

- the *apply step* becomes one ``apply`` RPC shipping the committed WAL
  record to the worker, where the inherited
  ``FollowerReplica._apply_one`` logic (audit/qlog strip, replica apply
  lock, epoch bumps, registry reload on deploys) runs against the
  worker's own engine;
- the *apply loop* gains an idle heartbeat: a follower that has no
  records to forward still pings its worker every few seconds, so a
  SIGKILLed worker is detected and routed around even on an idle tier —
  the EOF path only fires when a request is in flight.

Any transport failure sets ``error`` (the same attribute tests poke to
simulate a dead follower), which makes the replica unhealthy; the router
skips it and ``promote()`` ignores it, exactly as for a thread follower
whose apply loop died.
"""

from __future__ import annotations

from flock.cluster.replica import FollowerReplica
from flock.errors import ProcError, WorkerCrashError
from flock.observability import metrics
from flock.proc.facade import (
    RemoteDatabaseFacade,
    RemoteRegistryFacade,
    RemoteServerFacade,
)
from flock.proc.supervisor import WorkerHandle

#: Idle polls (at the 0.1 s subscription timeout) between heartbeats.
_HEARTBEAT_POLLS = 50


class ProcessFollowerReplica(FollowerReplica):
    """One follower whose engine + read-only server live in a worker."""

    def __init__(self, name: str, handle: WorkerHandle, subscription, hub):
        self.handle = handle
        self.pid = handle.pid
        super().__init__(
            name,
            RemoteDatabaseFacade(handle),
            RemoteRegistryFacade(handle),
            subscription,
            hub,
            RemoteServerFacade(handle),
        )

    # ------------------------------------------------------------------
    # The forwarder (replaces the in-process apply loop)
    # ------------------------------------------------------------------
    def _apply_loop(self) -> None:
        registry = metrics()
        idle = 0
        while not self._stop:
            item = self.subscription.next(timeout=0.1)
            if item is None:
                if self.subscription.closed and self.subscription.pending == 0:
                    return
                idle += 1
                if idle >= _HEARTBEAT_POLLS:
                    idle = 0
                    if not self._heartbeat():
                        return
                continue
            idle = 0
            lsn, record = item
            while not self._resume.wait(timeout=0.1):
                if self._stop:
                    return
            try:
                self.handle.request("apply", lsn=lsn, record=record)
            except BaseException as exc:
                self.error = exc
                registry.counter("replication.apply_errors").inc()
                with self._cond:
                    self._cond.notify_all()
                return
            with self._cond:
                self.applied_lsn = lsn
                self._cond.notify_all()
            registry.counter("replication.records_applied").inc()
            registry.gauge(f"replication.lag.{self.name}").set(self.lag)

    def _heartbeat(self) -> bool:
        """True if the worker is still there; on failure set ``error``."""
        if self.handle.healthy and self.handle.ping():
            return True
        self.error = WorkerCrashError(
            f"follower {self.name}: worker pid {self.pid} stopped "
            f"answering heartbeats"
        )
        metrics().counter("replication.worker_deaths").inc()
        with self._cond:
            self._cond.notify_all()
        return False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self, drain: bool = True, timeout: float | None = 5.0) -> None:
        try:
            super().stop(drain=drain, timeout=timeout)
        finally:
            self.handle.close()

    def status(self) -> dict:
        report = super().status()
        report["backend"] = "process"
        report["pid"] = self.pid
        return report
