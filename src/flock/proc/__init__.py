"""flock.proc — worker-process runtime for shards and follower replicas.

The thread-backed tiers of :mod:`flock.shard` and :mod:`flock.cluster`
share one GIL, so their scaling gates measure contention, not parallelism.
This package hosts each shard engine (and optionally each follower
replica) in its own spawned worker process, speaking a length-prefixed,
CRC-framed pickle protocol over a Unix socketpair:

- :mod:`flock.proc.framing` — the wire format (CRC verified before any
  payload is deserialized; corruption raises typed
  :class:`~flock.errors.ProtocolError`);
- :mod:`flock.proc.supervisor` — the parent side: spawn, framed RPC with
  deadlines, EOF/heartbeat death detection, kill-on-hang;
- :mod:`flock.proc.worker` — the child entry point
  (``python -m flock.proc.worker``) hosting a durable shard engine, a
  shard-with-replicas :class:`~flock.cluster.FlockCluster`, or a
  snapshot-booted follower replica;
- :mod:`flock.proc.facade` — remote stand-ins for the ``database`` /
  ``registry`` / ``server`` attributes tests and tools reach through;
- :mod:`flock.proc.replica` — the process-backed follower driven by the
  parent-side replication subscription.

The backend seam is a single flag: ``flock.connect(path, shards=N,
process=True)`` (or ``replicas=N``), defaulting from the ``FLOCK_PROC``
environment variable so the whole test suite can run process-backed
without edits. Routing, two-phase DDL broadcast, reopen reconciliation
and the bit-identical merge discipline are reused unchanged — bring-up
runs in-process first, then the engines are handed to workers over the
same directories.
"""

from __future__ import annotations

import os

from flock.errors import (  # noqa: F401  (re-exported tier errors)
    ProcError,
    ProtocolError,
    WorkerCrashError,
    WorkerTimeoutError,
)

__all__ = [
    "ProcError",
    "ProtocolError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "proc_available",
    "proc_enabled",
]


def proc_available() -> bool:
    """True when this platform can run the worker-process backend.

    The runtime needs Unix-domain socketpairs and ``pass_fds`` — i.e. any
    POSIX host. On anything else the seam stays on the thread backend.
    """
    import socket

    return os.name == "posix" and hasattr(socket, "AF_UNIX")


def proc_enabled(explicit: bool | None = None) -> bool:
    """Resolve the backend seam: explicit flag first, then ``FLOCK_PROC``.

    ``explicit`` is the ``process=`` keyword a caller passed (None means
    "not specified"); the environment default lets CI run the entire
    existing suite process-backed (``FLOCK_PROC=1``) without touching a
    single test.
    """
    if not proc_available():
        return False
    if explicit is not None:
        return bool(explicit)
    return os.environ.get("FLOCK_PROC", "0").strip().lower() in (
        "1", "true", "yes", "on",
    )
