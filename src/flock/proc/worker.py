"""The worker child: ``python -m flock.proc.worker --fd N --config JSON``.

One worker hosts one engine stack, chosen by ``config["role"]``:

- ``shard`` — a durable engine over one shard directory (or, when the
  shard composes with replicas, a full in-worker
  :class:`~flock.cluster.FlockCluster`), serving routed statements,
  scatter ``executemany`` batches and head-version snapshots;
- ``replica`` — a follower stack booted from the primary's snapshot
  directory, applying WAL records the parent forwards from its
  replication hub and serving reads through a read-only server.

The loop is strictly request/response over the inherited socket: receive
one framed message, execute, send one ``("ok", value)`` or ``("err",
pickled-exception)`` frame. Results are scrubbed before the wire (span
traces are process-local); exceptions are pickle-round-tripped so a
non-portable one degrades to a :class:`~flock.errors.FlockError` carrying
the original type name instead of poisoning the stream.

EOF from the parent means the supervisor died or dropped us: the worker
``os._exit(0)``s immediately *without* closing the engine — a final
checkpoint racing a parent that may already be re-opening (or verifying
crash recovery on) the same directory is exactly the torn state the WAL
protocol exists to avoid. A graceful stop is always an explicit ``close``
op. Faultpoints load lazily from ``FLOCK_FAULTPOINTS`` in *this* process,
so crash tests arm points inside workers via the environment or the
``set_fault`` op — including ``action="crash"`` hard kills mid-commit.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import socket
import sys

from flock.proc.framing import dump_message, recv_message, send_frame


def _scrub(result):
    """Make a QueryResult wire-safe: span traces reference process-local
    tracer state and never survive the boundary."""
    stats = getattr(result, "stats", None)
    if stats is not None:
        stats.trace = None
    return result


def _wire_exc(exc: BaseException) -> BaseException:
    """An exception safe to ship: itself if it pickle-round-trips, else a
    FlockError preserving the type name and message. Round-tripping here
    (not just dumping) catches classes whose reconstruction fails."""
    try:
        pickle.loads(pickle.dumps(exc, pickle.HIGHEST_PROTOCOL))
        return exc
    except Exception:
        from flock.errors import FlockError

        return FlockError(f"{type(exc).__name__}: {exc}")


class _NullSubscription:
    """Stands in for the hub subscription a thread follower would own; the
    parent's forwarder is the subscription here, records arrive as
    ``apply`` ops."""

    name = "proc-forwarded"
    closed = False
    pending = 0

    def next(self, timeout=None):
        return None

    def close(self) -> None:
        self.closed = True


class _NullHub:
    lsn = 0

    def close(self) -> None:
        pass


class _State:
    """What this worker hosts; any slot may be None depending on role."""

    def __init__(self):
        self.role = "?"
        self.db = None
        self.registry = None
        self.server = None
        self.cluster = None
        self.replica = None
        self.session = None


def _build(config: dict) -> _State:
    state = _State()
    state.role = config["role"]
    path = config["path"]
    open_kwargs = config.get("open_kwargs") or {}
    if state.role == "shard":
        if config.get("replicas"):
            from flock.cluster import FlockCluster

            state.cluster = FlockCluster(
                path,
                replicas=config["replicas"],
                max_staleness=config.get("max_staleness"),
                process=False,  # one process tier is enough; no nesting
                **open_kwargs,
            )
            state.db = state.cluster.database
            state.registry = state.cluster.registry
            state.server = state.cluster.primary
        else:
            from flock.client import durable_session

            state.session = durable_session(path, None, **open_kwargs)
            state.db = state.session.db
            state.registry = state.session.registry
    elif state.role == "replica":
        from flock.cluster.cluster import build_follower_stack
        from flock.cluster.replica import FollowerReplica

        database, registry, server = build_follower_stack(
            path,
            replica_workers=config.get("replica_workers", 1),
            server_kwargs=config.get("server_kwargs"),
        )
        state.db = database
        state.registry = registry
        state.server = server
        # start=False: there is no apply thread here — the parent forwards
        # records as ``apply`` ops, reusing FollowerReplica's apply logic
        # (strip, replica apply lock, epoch bumps, registry reload).
        state.replica = FollowerReplica(
            config.get("name", "replica"), database, registry,
            _NullSubscription(), _NullHub(), server, start=False,
        )
    else:
        raise ValueError(f"unknown worker role {config['role']!r}")
    return state


def _close(state: _State) -> None:
    if state.cluster is not None:
        state.cluster.close()
        return
    if state.replica is not None:
        # No apply thread to stop (records arrive as ops); just drain the
        # read server and close the snapshot-booted engine.
        state.server.shutdown(drain=True)
        state.db.close()
        return
    if state.db is not None:
        state.db.close()


def _resolve_call(state: _State, msg: dict):
    targets = {
        "db": state.db,
        "registry": state.registry,
        "server": state.server,
        "cluster": state.cluster,
        "replica": state.replica,
    }
    obj = targets.get(msg["target"])
    if obj is None:
        raise ValueError(
            f"worker role {state.role!r} hosts no {msg['target']!r}"
        )
    for part in msg["path"].split("."):
        obj = getattr(obj, part)
    if msg.get("invoke", True):
        obj = obj(*msg.get("args") or [], **msg.get("kwargs") or {})
    attr = msg.get("attr")
    if attr is not None:
        obj = getattr(obj, attr)
    return obj


def _dispatch(state: _State, op: str, msg: dict):
    if op == "ping":
        return "pong"
    if op == "hello":
        return {"pid": os.getpid(), "role": state.role}
    if op == "execute":
        if state.cluster is not None:
            return _scrub(state.cluster.execute(
                msg["sql"], msg.get("params"), msg.get("user", "admin")
            ))
        return _scrub(state.db.execute(
            msg["sql"], msg.get("params"), user=msg.get("user", "admin")
        ))
    if op == "db_execute":
        return _scrub(state.db.execute(
            msg["sql"], msg.get("params"), user=msg.get("user", "admin")
        ))
    if op == "db_executemany":
        return _scrub(state.db.executemany(
            msg["sql"], msg["rows"], user=msg.get("user", "admin")
        ))
    if op == "server_execute":
        if state.server is None:
            raise ValueError(f"worker role {state.role!r} hosts no server")
        return _scrub(state.server.execute(
            msg["sql"], msg.get("params"), user=msg.get("user", "admin"),
            timeout=msg.get("timeout"),
        ))
    if op == "head_versions":
        # One acquisition of the statement read lock for all names: the
        # same internally-consistent per-shard snapshot the thread path
        # takes in gather_versions.
        shipped = {}
        with state.db.statement_lock.read_locked():
            for name in msg["names"]:
                head = state.db.catalog.table(name).head_version
                shipped[name.lower()] = (
                    head.version_id, head.schema, head.columns,
                    head.operation,
                )
        return shipped
    if op == "apply":
        state.replica._apply_one(msg["record"])
        state.replica.applied_lsn = msg["lsn"]
        return None
    if op == "wait_for_catchup":
        return state.cluster.wait_for_catchup(msg.get("timeout"))
    if op == "deploy_many":
        return state.registry.deploy_many(
            msg["models"], **(msg.get("kwargs") or {})
        )
    if op == "set_fault":
        from flock.testing import faultpoints

        faultpoints.set_fault(
            msg["name"], msg.get("action", "error"),
            msg.get("after", 1), msg.get("delay_ms", 1.0),
        )
        return None
    if op == "clear_faults":
        from flock.testing import faultpoints

        faultpoints.clear(msg.get("name"))
        return None
    if op == "call":
        return _resolve_call(state, msg)
    raise ValueError(f"unknown worker op {op!r}")


def _send_reply(sock: socket.socket, reply) -> None:
    try:
        payload = dump_message(reply)
    except Exception as exc:
        from flock.errors import FlockError

        payload = dump_message(("err", FlockError(
            f"worker result is not picklable: {exc!r}"
        )))
    send_frame(sock, payload)


def _serve(sock: socket.socket, state: _State) -> None:
    while True:
        msg = recv_message(sock, eof_ok=True)
        if msg is None:
            # Parent gone. Exit without closing: no checkpoint may race
            # whatever the parent (or its successor) does with our
            # directory. The WAL holds everything we acknowledged.
            os._exit(0)
        op = msg.pop("op", None) if isinstance(msg, dict) else None
        if op is None:
            from flock.errors import ProtocolError

            _send_reply(sock, ("err", ProtocolError(
                f"worker: message without an op: {type(msg).__name__}"
            )))
            continue
        if op == "close":
            _close(state)
            _send_reply(sock, ("ok", None))
            return
        try:
            value = _dispatch(state, op, msg)
        except BaseException as exc:
            _send_reply(sock, ("err", _wire_exc(exc)))
            continue
        _send_reply(sock, ("ok", value))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="flock.proc.worker")
    parser.add_argument("--fd", type=int, required=True)
    parser.add_argument("--config", required=True)
    args = parser.parse_args(argv)
    sock = socket.socket(fileno=args.fd)
    sock.settimeout(None)  # deadlines are the parent's job
    config = json.loads(args.config)
    try:
        state = _build(config)
    except BaseException as exc:
        # Fail the *open*: answer the pending hello with the bring-up
        # error so the parent re-raises it, exactly like a thread shard
        # whose directory would not recover.
        try:
            sock.settimeout(30.0)
            recv_message(sock, eof_ok=True)
            _send_reply(sock, ("err", _wire_exc(exc)))
        except Exception:
            pass
        return 1
    _serve(sock, state)
    return 0


if __name__ == "__main__":
    sys.exit(main())
