"""Remote stand-ins for the objects a worker process hosts.

The routers — and a decade of tests — reach *through* a shard or follower
into ``.database`` / ``.registry`` / ``.server`` attributes: scatter
inserts call ``shard.database.executemany``, recovery checks walk
``shard.database.catalog`` and verify the audit hash chain, the bench
harness calls ``follower.database.set_workers``. These facades keep every
one of those paths working when the object actually lives in another
process: each call becomes one framed RPC on the shard's
:class:`~flock.proc.supervisor.WorkerHandle`, results come back pickled,
and worker-side exceptions re-raise here with their original class.

Most methods ride the generic ``call`` op (dotted attribute path resolved
inside the worker); the hot paths — execute, executemany, head snapshots —
have dedicated ops so the worker can scrub and lock correctly around them.
"""

from __future__ import annotations

from typing import Any, Sequence


def rebuild_version(payload: tuple):
    """A parent-side :class:`~flock.db.storage.TableVersion` from the wire.

    Workers ship ``(version_id, schema, columns, operation)`` — never the
    live version object, whose lazily-built caches (zone maps, delta
    chains) are process-local state. Rebuilding through the constructor
    gives the merge path a version indistinguishable from a thread
    shard's head.
    """
    from flock.db.storage import TableVersion

    version_id, schema, columns, operation = payload
    return TableVersion(version_id, schema, columns, operation)


class RemoteTable:
    """``database.catalog.table(name)`` for a worker-hosted engine."""

    def __init__(self, handle, name: str):
        self._handle = handle
        self.name = name

    @property
    def row_count(self) -> int:
        return self._handle.call(
            "db", "catalog.table", [self.name], attr="row_count"
        )

    @property
    def head_version(self):
        shipped = self._handle.request("head_versions", names=[self.name])
        return rebuild_version(shipped[self.name.lower()])


class RemoteCatalog:
    """The catalog read surface, one RPC per lookup."""

    def __init__(self, handle):
        self._handle = handle

    def table(self, name: str) -> RemoteTable:
        return RemoteTable(self._handle, name)

    def table_names(self) -> list[str]:
        return self._handle.call("db", "catalog.table_names")

    def view_names(self) -> list[str]:
        return self._handle.call("db", "catalog.view_names")

    def has_table(self, name: str) -> bool:
        return self._handle.call("db", "catalog.has_table", [name])

    def has_view(self, name: str) -> bool:
        return self._handle.call("db", "catalog.has_view", [name])

    def schema(self, name: str):
        return self._handle.call("db", "catalog.schema", [name])

    def index_defs(self) -> list:
        return self._handle.call("db", "catalog.index_defs")

    def view(self, name: str):
        return self._handle.call("db", "catalog.view", [name])


class RemoteAuditLog:
    def __init__(self, handle):
        self._handle = handle

    def verify_chain(self) -> bool:
        return self._handle.call("db", "audit.log.verify_chain")

    @property
    def last_sequence(self) -> int:
        return self._handle.call(
            "db", "audit.log.last_sequence", invoke=False
        )


class RemoteAudit:
    def __init__(self, handle):
        self.log = RemoteAuditLog(handle)


class RemoteDatabaseFacade:
    """The ``.database`` attribute of a process-backed shard or follower.

    Execution goes through the worker's real engine — statement locks,
    WAL, audit chain and all — so a facade ``execute`` is observably the
    thread backend's ``execute`` plus one process hop.
    """

    def __init__(self, handle):
        self._handle = handle
        self.catalog = RemoteCatalog(handle)
        self.audit = RemoteAudit(handle)

    def execute(self, sql: str, params: Sequence[Any] | None = None,
                user: str = "admin", **_ignored: Any):
        return self._handle.request(
            "db_execute", sql=sql,
            params=None if params is None else list(params), user=user,
        )

    def executemany(self, sql: str, seq_of_params, user: str = "admin"):
        return self._handle.request(
            "db_executemany", sql=sql,
            rows=[list(p) for p in seq_of_params], user=user,
        )

    def checkpoint(self) -> None:
        self._handle.call("db", "checkpoint")

    def set_workers(self, workers: int) -> None:
        self._handle.call("db", "set_workers", [workers])

    def close(self) -> None:
        # Closing the engine without its process makes no sense; a facade
        # close is a graceful worker shutdown (final checkpoint included).
        self._handle.close()


class RemoteRegistryFacade:
    """The ``.registry`` attribute of a process-backed shard or follower.

    Model graphs pickle by reference to the flock library modules, so
    deploys cross the boundary the same way replicated deploy records
    already do.
    """

    def __init__(self, handle):
        self._handle = handle

    def deploy_many(self, models, **kwargs):
        return self._handle.request(
            "deploy_many", models=list(models), kwargs=kwargs
        )

    def deploy(self, name, graph, **kwargs):
        return self.deploy_many([(name, graph)], **kwargs)[0]

    def __getattr__(self, item):
        handle = self.__dict__["_handle"]

        def _invoke(*args, **kwargs):
            return handle.call("registry", item, list(args), kwargs)

        _invoke.__name__ = item
        return _invoke


class RemoteServerFacade:
    """The ``.server`` attribute of a process-backed follower replica.

    Read routing lands here: the cluster router picks a follower and calls
    ``server.submit``. The request runs on the worker's real read-only
    :class:`~flock.serving.FlockServer` (admission control, read-only
    enforcement), and since the reply is already complete when the RPC
    returns, ``submit`` hands back an immediately-resolved future.
    """

    def __init__(self, handle):
        self._handle = handle

    def execute(self, sql: str, params: Sequence[Any] | None = None,
                user: str = "admin", timeout: float | None = None):
        return self._handle.request(
            "server_execute", sql=sql,
            params=None if params is None else list(params),
            user=user, timeout=timeout,
        )

    def submit(self, sql: str, params: Sequence[Any] | None = None,
               user: str = "admin", timeout: float | None = None):
        from flock.client import _ImmediateFuture
        from flock.errors import FlockError

        try:
            return _ImmediateFuture(
                result=self.execute(sql, params, user, timeout)
            )
        except FlockError as exc:
            return _ImmediateFuture(error=exc)

    def stats(self) -> dict:
        return self._handle.call("server", "stats")

    @property
    def _served(self) -> int:
        return self._handle.call("server", "_served", invoke=False)

    def shutdown(self, drain: bool = True, timeout: float | None = None):
        # The worker's graceful close shuts its server down; nothing to do
        # from the parent side but tolerate the call.
        return None


class RemoteClusterFacade:
    """The ``.cluster`` attribute of a shard whose worker hosts a full
    :class:`~flock.cluster.FlockCluster` (shards composed with replicas).

    The shard router only needs routing, catch-up and stats; promotion is
    forwarded for completeness (the report dict ships back verbatim).
    """

    def __init__(self, handle):
        self._handle = handle
        self.database = RemoteDatabaseFacade(handle)
        self.registry = RemoteRegistryFacade(handle)

    def execute(self, sql: str, params: Sequence[Any] | None = None,
                user: str = "admin", timeout: float | None = None):
        return self._handle.request(
            "execute", sql=sql,
            params=None if params is None else list(params), user=user,
        )

    def wait_for_catchup(self, timeout: float | None = 10.0) -> bool:
        return self._handle.request(
            "wait_for_catchup", timeout=timeout,
            _timeout=None if timeout is None else timeout + 30.0,
        )

    def stats(self) -> dict:
        return self._handle.call("cluster", "stats")

    def promote(self, drain_timeout: float = 5.0):
        return self._handle.call(
            "cluster", "promote", kwargs={"drain_timeout": drain_timeout}
        )

    def close(self) -> None:
        self._handle.close()
