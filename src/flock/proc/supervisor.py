"""Parent side of the worker runtime: spawn, framed RPC, liveness.

:class:`Channel` is the transport half — request/response over one framed
socket, serialized by a lock, with a per-request deadline. Any transport
fault (corrupt frame, EOF, deadline) marks the channel unhealthy: a
desynced or silent stream is never reused. :class:`WorkerHandle` adds the
process half — spawn with the config on argv and the socket fd passed
down, a boot handshake that re-raises worker-side bring-up errors in the
parent, heartbeat pings, and kill-on-hang so an unresponsive worker fails
fast instead of stalling the caller (and the CI job) forever.

Worker-side errors travel back pickled and are re-raised here with their
original class, so ``ConstraintError`` from a shard engine three processes
away still reads like ``ConstraintError`` to the router and the oracles.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
from typing import Any

from flock.errors import (
    ProcError,
    ProtocolError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from flock.proc.framing import recv_message, send_message

#: Default per-request deadline (seconds); a checkpoint or a scatter block
#: fits comfortably, a hung worker does not. ``FLOCK_PROC_TIMEOUT``
#: overrides it fleet-wide (CI lanes shrink it so hangs fail fast).
DEFAULT_TIMEOUT_S = 120.0


def request_timeout() -> float:
    try:
        return float(os.environ.get("FLOCK_PROC_TIMEOUT", DEFAULT_TIMEOUT_S))
    except ValueError:
        return DEFAULT_TIMEOUT_S


class Channel:
    """Framed request/response over one socket, one in flight at a time.

    Exists separately from :class:`WorkerHandle` so the protocol-corruption
    battery can drive the exact runtime path against a scripted peer: every
    fault the wire can show — typed error replies, corrupt frames, EOF,
    silence — is classified here.
    """

    def __init__(self, sock: socket.socket, *, timeout: float | None = None,
                 label: str = "worker"):
        self.sock = sock
        self.label = label
        self.timeout = request_timeout() if timeout is None else timeout
        self.healthy = True
        self._lock = threading.RLock()
        self.sock.settimeout(self.timeout)

    def request(self, op: str, *, _timeout: float | None = None,
                **payload: Any) -> Any:
        payload["op"] = op
        with self._lock:
            if not self.healthy:
                raise WorkerCrashError(
                    f"{self.label}: channel is down (previous failure); "
                    f"reopen the cluster to recover"
                )
            if _timeout is not None:
                self.sock.settimeout(_timeout)
            try:
                send_message(self.sock, payload)
                reply = recv_message(self.sock)
            except ProcError:
                self._mark_down()
                raise
            finally:
                if _timeout is not None:
                    try:
                        self.sock.settimeout(self.timeout)
                    except OSError:
                        pass
        if (
            not isinstance(reply, tuple)
            or len(reply) != 2
            or reply[0] not in ("ok", "err")
        ):
            self._mark_down()
            raise ProtocolError(
                f"{self.label}: malformed reply {type(reply).__name__}; "
                f"stream is untrusted"
            )
        status, value = reply
        if status == "err":
            raise value
        return value

    def _mark_down(self) -> None:
        self.healthy = False

    def close(self) -> None:
        self.healthy = False
        try:
            self.sock.close()
        except OSError:
            pass


def _child_env() -> dict:
    """The worker's environment: inherit everything (``FLOCK_FAULTPOINTS``
    rides along, which is how crash tests arm points inside workers), make
    sure the flock package is importable, and pin ``FLOCK_PROC=0`` so a
    worker hosting a replica tier never recursively forks its own fleet.
    """
    env = dict(os.environ)
    import flock

    package_root = str(os.path.dirname(os.path.dirname(
        os.path.abspath(flock.__file__)
    )))
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    env["FLOCK_PROC"] = "0"
    return env


class WorkerHandle:
    """One spawned worker process plus its RPC channel.

    The boot handshake is part of the contract: the worker runs its whole
    bring-up (recovery replay, snapshot load) before sending one
    ``("ok", {"pid": ...})`` frame — or an ``("err", exc)`` frame whose
    exception re-raises here, so a corrupt shard directory fails the
    *open*, exactly like the thread backend.
    """

    def __init__(self, config: dict, *, timeout: float | None = None,
                 boot_timeout: float | None = None):
        self.config = config
        self.label = (
            f"flock-proc[{config.get('role', '?')}:"
            f"{config.get('name') or config.get('path', '?')}]"
        )
        parent_sock, child_sock = socket.socketpair(
            socket.AF_UNIX, socket.SOCK_STREAM
        )
        try:
            self.proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "flock.proc.worker",
                    "--fd",
                    str(child_sock.fileno()),
                    "--config",
                    json.dumps(config),
                ],
                pass_fds=(child_sock.fileno(),),
                env=_child_env(),
                stdin=subprocess.DEVNULL,
            )
        finally:
            child_sock.close()
        self.channel = Channel(parent_sock, timeout=timeout,
                               label=self.label)
        self._closed = False
        try:
            hello = self.channel.request(
                "hello",
                _timeout=boot_timeout or max(self.channel.timeout, 120.0),
            )
        except BaseException:
            self.kill()
            raise
        self.pid = hello["pid"]

    # -- liveness ------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    @property
    def healthy(self) -> bool:
        return self.channel.healthy and not self._closed and self.alive

    def ping(self, timeout: float = 5.0) -> bool:
        """Heartbeat: True iff the worker answered within *timeout*."""
        try:
            return self.request("ping", _timeout=timeout) == "pong"
        except ProcError:
            return False

    # -- RPC -----------------------------------------------------------
    def request(self, op: str, *, _timeout: float | None = None,
                **payload: Any) -> Any:
        if self._closed:
            raise WorkerCrashError(f"{self.label}: worker is closed")
        try:
            return self.channel.request(op, _timeout=_timeout, **payload)
        except WorkerTimeoutError:
            # The hung-worker guard: a worker past its deadline is killed,
            # not retried — its WAL already holds everything it
            # acknowledged, and a reopen recovers it.
            self.kill()
            raise
        except (WorkerCrashError, ProtocolError) as exc:
            code = self.proc.poll()
            self.kill()
            if code is not None and not isinstance(exc, ProtocolError):
                raise WorkerCrashError(
                    f"{self.label}: worker pid {self.proc.pid} exited "
                    f"with status {code} under op {op!r}"
                ) from exc
            raise

    def call(self, target: str, path: str, args: list | None = None,
             kwargs: dict | None = None, *, invoke: bool = True,
             attr: str | None = None) -> Any:
        """Invoke ``<target>.<path>(*args, **kwargs)`` inside the worker.

        The generic escape hatch behind the remote facades: *target* is
        one of the worker's hosted objects (``db``, ``registry``,
        ``server``, ``cluster``), *path* a dotted attribute chain,
        ``invoke=False`` reads the attribute instead of calling it, and
        ``attr`` plucks one attribute off the result (so e.g. a remote
        ``catalog.table(name).row_count`` ships one int, not one table).
        """
        return self.request(
            "call", target=target, path=path, args=args or [],
            kwargs=kwargs or {}, invoke=invoke, attr=attr,
        )

    # -- lifecycle -----------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Graceful stop: the worker closes its engine (WAL flushed,
        final checkpoint) and exits; falls back to SIGKILL. Never raises —
        close paths must tolerate already-dead workers.
        """
        if self._closed:
            return
        try:
            if self.channel.healthy and self.alive:
                try:
                    self.channel.request("close", _timeout=timeout)
                except ProcError:
                    pass
        finally:
            self._closed = True
            self.channel.close()
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.kill()

    def kill(self) -> None:
        """Immediate SIGKILL + reap; the channel is poisoned."""
        self.channel.healthy = False
        if self.proc.poll() is None:
            try:
                self.proc.send_signal(signal.SIGKILL)
            except OSError:
                pass
        try:
            self.proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else f"exit={self.proc.poll()}"
        return f"<WorkerHandle {self.label} pid={self.proc.pid} {state}>"
