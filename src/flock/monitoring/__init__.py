"""flock.monitoring — model monitoring and drift detection.

The paper's lifecycle demands it twice: Figure 3 lists "Model Monitoring" as
a differentiating feature (proprietary stacks have it, third-party mostly do
not), and §2 notes that "as the underlying data evolves models need to be
updated". This package watches the inputs and outputs of deployed models at
scoring time, compares them against the training-time baseline, and flags
drift so the lifecycle can retrain.
"""

from flock.monitoring.drift import (
    BaselineStats,
    DriftReport,
    FeatureBaseline,
    ModelMonitor,
    MonitorHub,
)

__all__ = [
    "BaselineStats",
    "DriftReport",
    "FeatureBaseline",
    "ModelMonitor",
    "MonitorHub",
]
