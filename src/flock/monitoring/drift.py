"""Input/output drift detection against a training-time baseline.

Per numeric feature the baseline stores decile edges from the training data;
scoring-time observations accumulate into the same bins and drift is scored
with the Population Stability Index (PSI):

    PSI = Σ_bins (p_observed − p_baseline) · ln(p_observed / p_baseline)

The conventional reading (credit-risk practice): PSI < 0.1 stable,
0.1–0.25 moderate shift, > 0.25 action required. Prediction drift uses the
same statistic over the model's score distribution.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from flock.errors import FlockError

DEFAULT_BINS = 10
_EPS = 1e-6


@dataclass(frozen=True)
class FeatureBaseline:
    """Decile histogram of one feature at training time."""

    name: str
    edges: tuple[float, ...]  # len = bins - 1 interior edges
    proportions: tuple[float, ...]  # len = bins, sums to 1
    mean: float
    std: float

    @classmethod
    def from_values(
        cls, name: str, values: np.ndarray, bins: int = DEFAULT_BINS
    ) -> "FeatureBaseline":
        values = np.asarray(values, dtype=np.float64)
        values = values[~np.isnan(values)]
        if len(values) == 0:
            raise FlockError(f"feature {name!r} has no baseline values")
        quantiles = np.linspace(0, 1, bins + 1)[1:-1]
        edges = np.unique(np.quantile(values, quantiles))
        counts = _bin_counts(values, edges)
        proportions = counts / counts.sum()
        return cls(
            name=name,
            edges=tuple(float(e) for e in edges),
            proportions=tuple(float(p) for p in proportions),
            mean=float(values.mean()),
            std=float(values.std()) or 1.0,
        )


def _bin_counts(values: np.ndarray, edges) -> np.ndarray:
    indexes = np.searchsorted(np.asarray(edges), values, side="right")
    return np.bincount(indexes, minlength=len(edges) + 1).astype(np.float64)


def population_stability_index(
    baseline: np.ndarray, observed: np.ndarray
) -> float:
    """PSI between two proportion vectors of equal length."""
    p = np.clip(np.asarray(baseline, dtype=np.float64), _EPS, None)
    q = np.clip(np.asarray(observed, dtype=np.float64), _EPS, None)
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum((q - p) * np.log(q / p)))


@dataclass(frozen=True)
class BaselineStats:
    """Training-time profile of a model: features + score distribution."""

    features: dict[str, FeatureBaseline]
    score: FeatureBaseline | None = None


@dataclass
class DriftReport:
    """Drift of the observed scoring traffic vs the baseline."""

    model_name: str
    observations: int
    feature_psi: dict[str, float] = field(default_factory=dict)
    score_psi: float | None = None

    @property
    def max_feature_psi(self) -> float:
        return max(self.feature_psi.values(), default=0.0)

    def drifted_features(self, threshold: float = 0.25) -> list[str]:
        return sorted(
            name for name, psi in self.feature_psi.items() if psi > threshold
        )

    def is_drifted(self, threshold: float = 0.25) -> bool:
        if self.max_feature_psi > threshold:
            return True
        return self.score_psi is not None and self.score_psi > threshold


class ModelMonitor:
    """Accumulates scoring-time observations for one deployed model."""

    def __init__(self, model_name: str, baseline: BaselineStats):
        self.model_name = model_name
        self.baseline = baseline
        self._lock = threading.Lock()
        self._feature_counts: dict[str, np.ndarray] = {
            name: np.zeros(len(fb.proportions))
            for name, fb in baseline.features.items()
        }
        self._score_counts: np.ndarray | None = (
            np.zeros(len(baseline.score.proportions))
            if baseline.score is not None
            else None
        )
        self.observations = 0

    # ------------------------------------------------------------------
    def observe(
        self,
        features: dict[str, np.ndarray],
        scores: np.ndarray | None = None,
    ) -> None:
        """Record one batch of scoring inputs (and optionally outputs)."""
        with self._lock:
            n = 0
            for name, values in features.items():
                fb = self.baseline.features.get(name)
                if fb is None:
                    continue
                values = np.asarray(values, dtype=np.float64)
                values = values[~np.isnan(values)]
                n = max(n, len(values))
                self._feature_counts[name] += _bin_counts(values, fb.edges)
            if (
                scores is not None
                and self._score_counts is not None
                and self.baseline.score is not None
            ):
                scores = np.asarray(scores, dtype=np.float64)
                self._score_counts += _bin_counts(
                    scores, self.baseline.score.edges
                )
                n = max(n, len(scores))
            self.observations += n

    def report(self) -> DriftReport:
        with self._lock:
            feature_psi = {}
            for name, counts in self._feature_counts.items():
                if counts.sum() == 0:
                    continue
                fb = self.baseline.features[name]
                feature_psi[name] = population_stability_index(
                    np.asarray(fb.proportions), counts / counts.sum()
                )
            score_psi = None
            if (
                self._score_counts is not None
                and self._score_counts.sum() > 0
                and self.baseline.score is not None
            ):
                score_psi = population_stability_index(
                    np.asarray(self.baseline.score.proportions),
                    self._score_counts / self._score_counts.sum(),
                )
            return DriftReport(
                model_name=self.model_name,
                observations=self.observations,
                feature_psi=feature_psi,
                score_psi=score_psi,
            )

    def reset(self) -> None:
        """Forget observations (e.g. after retraining)."""
        with self._lock:
            for counts in self._feature_counts.values():
                counts[:] = 0.0
            if self._score_counts is not None:
                self._score_counts[:] = 0.0
            self.observations = 0


class MonitorHub:
    """All monitors of a deployment; pluggable into the scorer.

    When attached to :class:`flock.inference.predict.DefaultScorer`, every
    in-DBMS PREDICT automatically feeds the matching monitor — model
    monitoring without touching application queries.
    """

    def __init__(self) -> None:
        self._monitors: dict[str, ModelMonitor] = {}
        self._lock = threading.Lock()

    def register(
        self, model_name: str, baseline: BaselineStats
    ) -> ModelMonitor:
        monitor = ModelMonitor(model_name, baseline)
        with self._lock:
            self._monitors[model_name.lower()] = monitor
        return monitor

    def monitor(self, model_name: str) -> ModelMonitor:
        with self._lock:
            try:
                return self._monitors[model_name.lower()]
            except KeyError:
                raise FlockError(
                    f"no monitor registered for model {model_name!r}"
                ) from None

    def has_monitor(self, model_name: str) -> bool:
        with self._lock:
            return model_name.lower() in self._monitors

    # Scorer hook ---------------------------------------------------------
    def on_score(
        self,
        model_name: str,
        feeds: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
        score_tensor: str | None,
    ) -> None:
        with self._lock:
            monitor = self._monitors.get(model_name.lower())
        if monitor is None:
            return
        scores = outputs.get(score_tensor) if score_tensor else None
        monitor.observe(feeds, scores)


def baseline_from_training(
    feature_names: list[str],
    X: np.ndarray,
    scores: np.ndarray | None = None,
    bins: int = DEFAULT_BINS,
) -> BaselineStats:
    """Profile a training matrix (and optionally training-time scores)."""
    X = np.asarray(X, dtype=np.float64)
    features = {
        name: FeatureBaseline.from_values(name, X[:, i], bins)
        for i, name in enumerate(feature_names)
    }
    score = (
        FeatureBaseline.from_values("__score__", np.asarray(scores), bins)
        if scores is not None
        else None
    )
    return BaselineStats(features=features, score=score)
