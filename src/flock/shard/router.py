"""flock.shard — hash-sharded tables behind ``flock.connect(shards=N)``.

One :class:`ShardedCluster` coordinates N per-shard engines, each a full
durable :class:`~flock.db.Database` (own WAL and checkpoint directory,
indexes, zone maps) — or, with ``replicas=M``, a full
:class:`~flock.cluster.FlockCluster` so every shard also gets a replicated
read tier.

Placement: rows of a table with a PRIMARY KEY hash on the key —
``crc32(repr(key)) % N`` over canonicalized key values, so INSERT routing
and SELECT shard-key extraction always agree. Tables without a primary key
have no shard key; their rows are pinned to shard 0. Every table (and every
model, view, index and principal) exists on *every* shard plus the
in-memory coordinator engine: DDL and security statements broadcast, so
shard catalogs never diverge and any shard can plan any statement.

Routing:

- point reads/writes whose WHERE pins every primary-key column by
  equality (or a single-column ``IN`` hashing to one shard) run on that
  shard alone;
- every other read scatters to all shards and merges through
  :mod:`flock.shard.merge`, whose hidden global-sequence discipline keeps
  results bit-identical to a single-engine run;
- multi-shard INSERTs scatter rows by key and compensate (delete the
  inserted sequence numbers) if any shard fails, so a failed scatter never
  leaves partial rows behind;
- DDL runs two-phase: the coordinator validates and applies first (a
  failure touches nothing), then every shard applies; a shard failure
  rolls the creates back everywhere.

Out of scope, by design (raises :class:`~flock.errors.ShardError`):
explicit transactions (statements autocommit), UPDATEs that assign to a
primary-key column (rows would have to move between shards), and
parameterized ``IN (SELECT ...)`` in UPDATE/DELETE (the rewrite to
literals cannot keep placeholder positions stable).
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import threading
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Any, Sequence

from flock.db.binder import Binder, Scope, fold_constants
from flock.db.engine import _coerce_insert_value, is_read_only
from flock.db.expr import BoundLiteral
from flock.db.result import QueryResult
from flock.db.schema import Column, TableSchema
from flock.db.sql import ast_nodes as ast
from flock.db.sql.parser import Parser, parse_statement
from flock.db.txn import ReadWriteLock
from flock.db.types import DataType
from flock.errors import BindError, FlockError, ShardError
from flock.shard.merge import SEQ_COLUMN, run_scatter

#: Cartesian-product cap for multi-valued pinned keys (IN lists): beyond
#: this a scatter is cheaper than routing per key.
_MAX_PINNED_KEYS = 64


# ----------------------------------------------------------------------
# Shard-key hashing
# ----------------------------------------------------------------------
def shard_of(key: tuple, n_shards: int) -> int:
    """The shard owning *key* (a tuple of canonicalized key values)."""
    return zlib.crc32(repr(key).encode("utf-8")) % n_shards


def canonical_key_value(column: Column, value: Any) -> Any:
    """One key value in canonical Python form, so equal keys hash equal.

    Runs the engine's own insert coercion first (DATE strings become day
    numbers, exactly as storage would hold them), then collapses numeric
    spellings — ``5``, ``5.0`` and ``numpy.int64(5)`` must land on the
    same shard whether they arrive in an INSERT row or a WHERE literal.
    """
    value = _coerce_insert_value(column, value)
    if value is None:
        return None
    if column.dtype in (DataType.INTEGER, DataType.DATE):
        return int(value)
    if column.dtype is DataType.FLOAT:
        return float(value)
    if column.dtype is DataType.BOOLEAN:
        return bool(value)
    if column.dtype is DataType.TEXT:
        return str(value)
    return value


# ----------------------------------------------------------------------
# Shard-key extraction (sits next to the read/write classification)
# ----------------------------------------------------------------------
def _conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op.upper() == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _constant_value(
    expr: ast.Expr, params: Sequence[Any] | None
) -> tuple[bool, Any]:
    if isinstance(expr, ast.Literal):
        return True, expr.value
    if isinstance(expr, ast.Parameter):
        if params is not None and expr.index < len(params):
            return True, params[expr.index]
    return False, None


def _match_pin(
    schema: TableSchema, expr: ast.Expr, params: Sequence[Any] | None
) -> tuple[int | None, list[Any]]:
    """``(column position, candidate values)`` pinned by one conjunct."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "=":
        for column_side, value_side in (
            (expr.left, expr.right),
            (expr.right, expr.left),
        ):
            if not isinstance(column_side, ast.ColumnRef):
                continue
            known, value = _constant_value(value_side, params)
            if known and schema.has_column(column_side.name):
                return schema.index_of(column_side.name), [value]
    if (
        isinstance(expr, ast.InList)
        and not expr.negated
        and isinstance(expr.operand, ast.ColumnRef)
        and schema.has_column(expr.operand.name)
    ):
        values = []
        for item in expr.items:
            known, value = _constant_value(item, params)
            if not known:
                return None, []
            values.append(value)
        if values:
            return schema.index_of(expr.operand.name), values
    return None, []


def pinned_keys(
    schema: TableSchema,
    where: ast.Expr | None,
    params: Sequence[Any] | None,
) -> list[tuple] | None:
    """Every key the WHERE clause restricts the statement to, or None.

    Keys are pinned only by *top-level AND conjuncts* — a disjunction over
    the key never pins. Multi-valued pins (IN lists) are allowed on a
    single conjunct; the cartesian product is capped, past which the
    caller falls back to scatter/broadcast.
    """
    key_positions = schema.primary_key_indexes
    if where is None or not key_positions:
        return None
    pinned: dict[int, list[Any]] = {}
    for conjunct in _conjuncts(where):
        position, values = _match_pin(schema, conjunct, params)
        if position is not None and position not in pinned:
            pinned[position] = values
    if not set(key_positions) <= set(pinned):
        return None
    candidates = [pinned[p] for p in key_positions]
    total = 1
    for values in candidates:
        total *= len(values)
    if total > _MAX_PINNED_KEYS:
        return None
    keys = []
    for combo in itertools.product(*candidates):
        keys.append(
            tuple(
                canonical_key_value(schema.columns[p], value)
                for p, value in zip(key_positions, combo)
            )
        )
    return keys


def _has_in_query(statement: ast.Select) -> bool:
    subquery_nodes = (ast.InQuery, ast.Exists, ast.ScalarSubquery)
    for expr in _select_exprs(statement):
        if any(isinstance(node, subquery_nodes) for node in expr.walk()):
            return True
    return False


def _select_exprs(statement: ast.Select):
    for item in statement.items:
        yield item.expr
    if statement.where is not None:
        yield statement.where
    yield from statement.group_by
    if statement.having is not None:
        yield statement.having
    for order in statement.order_by:
        yield order.expr


# ----------------------------------------------------------------------
# One shard
# ----------------------------------------------------------------------
class _Shard:
    """One hash partition: a durable engine, optionally replicated.

    ``database`` is always the shard's *primary* engine — the scatter
    paths write and snapshot there. ``execute`` goes through the shard's
    replication router when replicas are attached, so single-shard reads
    still fan across that shard's followers.
    """

    def __init__(self, index: int, path: Path, *, session=None, cluster=None):
        self.index = index
        self.path = path
        self.cluster = cluster
        if cluster is not None:
            self.database = cluster.database
            self.registry = cluster.registry
        else:
            self.database = session.db
            self.registry = session.registry

    def execute(self, sql, params=None, user="admin") -> QueryResult:
        if self.cluster is not None:
            return self.cluster.execute(sql, params, user)
        return self.database.execute(sql, params, user=user)

    def head_versions(self, names) -> dict:
        """Head snapshots for *names* under ONE statement read lock
        acquisition — one internally consistent per-shard snapshot (the
        merge path's gather contract; see flock.shard.merge)."""
        database = self.database
        heads = {}
        with database.statement_lock.read_locked():
            for name in names:
                heads[name.lower()] = database.catalog.table(
                    name
                ).head_version
        return heads

    def close(self) -> None:
        if self.cluster is not None:
            self.cluster.close()
        else:
            self.database.close()


class _ProcessShard:
    """One hash partition hosted by a worker process (see flock.proc).

    Mirrors :class:`_Shard`'s whole surface — ``execute`` routes inside
    the worker (through its in-worker FlockCluster when the shard carries
    replicas), ``database``/``registry``/``cluster`` are remote facades,
    ``head_versions`` ships snapshot tuples rebuilt parent-side — so the
    router, the merge path and every test reaching into a shard work
    unchanged across the process boundary.
    """

    def __init__(self, index: int, path: Path, config: dict):
        from flock.proc.facade import (
            RemoteClusterFacade,
            RemoteDatabaseFacade,
            RemoteRegistryFacade,
        )
        from flock.proc.supervisor import WorkerHandle

        self.index = index
        self.path = path
        self.handle = WorkerHandle(config)
        self.database = RemoteDatabaseFacade(self.handle)
        self.registry = RemoteRegistryFacade(self.handle)
        self.cluster = (
            RemoteClusterFacade(self.handle)
            if config.get("replicas")
            else None
        )

    @property
    def pid(self) -> int:
        return self.handle.pid

    @property
    def healthy(self) -> bool:
        return self.handle.healthy

    def execute(self, sql, params=None, user="admin") -> QueryResult:
        return self.handle.request(
            "execute", sql=sql,
            params=None if params is None else list(params), user=user,
        )

    def head_versions(self, names) -> dict:
        from flock.proc.facade import rebuild_version

        shipped = self.handle.request("head_versions", names=list(names))
        return {
            name: rebuild_version(payload)
            for name, payload in shipped.items()
        }

    def set_fault(self, name: str, action: str = "error", after: int = 1,
                  delay_ms: float = 1.0) -> None:
        """Arm a faultpoint inside this shard's worker (test control)."""
        self.handle.request(
            "set_fault", name=name, action=action, after=after,
            delay_ms=delay_ms,
        )

    def close(self) -> None:
        self.handle.close()


# ----------------------------------------------------------------------
# The registry facade: deploys broadcast, reads hit the coordinator
# ----------------------------------------------------------------------
class ShardRegistry:
    """Model registry over a sharded cluster.

    Deploys broadcast to the coordinator and every shard (so any shard can
    score single-shard PREDICT queries and the coordinator can score
    scattered ones); version numbering is deterministic, so all registries
    assign the same versions. Everything else delegates to the
    coordinator's registry.
    """

    def __init__(self, cluster: "ShardedCluster"):
        self._cluster = cluster

    def deploy(self, name, graph, **kwargs):
        return self.deploy_many([(name, graph)], **kwargs)[0]

    def deploy_many(self, models, **kwargs):
        cluster = self._cluster
        with cluster._ops.write_locked():
            versions = cluster._coordinator_registry.deploy_many(
                models, **kwargs
            )
            for shard in cluster.shards:
                shard.registry.deploy_many(models, **kwargs)
        return versions

    def __getattr__(self, item):
        return getattr(self._cluster._coordinator_registry, item)


# ----------------------------------------------------------------------
# The cluster
# ----------------------------------------------------------------------
class ShardedCluster:
    """N hash shards behind one ``execute()`` — see the module docstring."""

    def __init__(
        self,
        path,
        *,
        shards: int = 2,
        replicas: int = 0,
        cross_optimizer=None,
        sync_mode: str = "commit",
        group_window_ms: float = 1.0,
        checkpoint_bytes: int | None = None,
        max_staleness: int | None = None,
        process: bool | None = None,
    ):
        if path is None:
            raise ShardError(
                "ShardedCluster needs a database directory: every shard "
                "keeps its own write-ahead log"
            )
        if shards < 1:
            raise ShardError(f"shards must be >= 1, got {shards}")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.n_shards = shards
        self.replicas = replicas
        self._open_kwargs = dict(
            sync_mode=sync_mode,
            group_window_ms=group_window_ms,
            checkpoint_bytes=checkpoint_bytes,
        )
        self._max_staleness = max_staleness
        from flock.proc import proc_enabled

        #: The backend seam: explicit ``process=`` wins, else FLOCK_PROC.
        self._process = proc_enabled(process)
        self._check_manifest()

        import flock
        from flock.client import memory_session

        coordinator_session = memory_session(cross_optimizer)
        self.coordinator = coordinator_session.db
        self._coordinator_registry = coordinator_session.registry
        self.cross_optimizer = coordinator_session.cross_optimizer

        self.shards = [self._open_shard(i) for i in range(shards)]

        # Writes and DDL exclusive, scattered reads shared: a gather must
        # never observe shard A before and shard B after one scatter write.
        # Always acquired before any engine lock, so ordering is acyclic.
        self._ops = ReadWriteLock()
        self._seq_lock = threading.Lock()
        self._next_seq: dict[str, int] = {}
        self._parse_lock = threading.Lock()
        self._parse_cache: OrderedDict[str, tuple[ast.Statement, int]] = (
            OrderedDict()
        )
        self._routes_lock = threading.Lock()
        self._routes = {"single": 0, "scatter": 0, "broadcast": 0, "ddl": 0}
        self._closed = False

        self.registry = ShardRegistry(self)
        self.session = flock.FlockSession(
            self.coordinator, self.registry, self.cross_optimizer
        )
        self._reconcile_shards()
        self._mirror_catalog()
        self._recover_sequences()
        if self._process:
            self._swap_to_process_backend()

    @property
    def backend(self) -> str:
        return "process" if self._process else "thread"

    # -- bring-up ------------------------------------------------------
    def _check_manifest(self) -> None:
        manifest = self.path / "shards.json"
        if manifest.exists():
            recorded = json.loads(manifest.read_text()).get("shards")
            if recorded != self.n_shards:
                raise ShardError(
                    f"{self.path} was created with shards={recorded}; "
                    f"reopening with shards={self.n_shards} would strand "
                    f"rows on missing shards"
                )
        else:
            manifest.write_text(json.dumps({"shards": self.n_shards}))

    def _open_shard(self, index: int) -> _Shard:
        shard_path = self.path / f"shard-{index}"
        if self.replicas:
            from flock.cluster import FlockCluster

            return _Shard(
                index,
                shard_path,
                cluster=FlockCluster(
                    shard_path,
                    replicas=self.replicas,
                    max_staleness=self._max_staleness,
                    # When this cluster is about to swap to the process
                    # backend, the throwaway bring-up tier must not fork
                    # its own follower workers.
                    process=False if self._process else None,
                    **self._open_kwargs,
                ),
            )
        from flock.client import durable_session

        return _Shard(
            index,
            shard_path,
            session=durable_session(shard_path, None, **self._open_kwargs),
        )

    def _spawn_shard(self, index: int) -> _ProcessShard:
        shard_path = self.path / f"shard-{index}"
        return _ProcessShard(
            index,
            shard_path,
            {
                "role": "shard",
                "name": f"shard-{index}",
                "path": str(shard_path),
                "open_kwargs": dict(self._open_kwargs),
                "replicas": self.replicas,
                "max_staleness": self._max_staleness,
            },
        )

    def _swap_to_process_backend(self) -> None:
        """Hand the shard directories to worker processes.

        Bring-up always runs on the thread backend first — reconcile,
        catalog mirror, sequence recovery are *cross-shard* passes that
        need direct engine access and stay reused unchanged. Once the
        fleet is consistent, each thread engine is closed (WAL flushed)
        and a worker re-opens the same directory; from here on every
        shard runs on its own interpreter, its commit fsyncs and scans
        unserialized by this process's GIL.
        """
        for shard in self.shards:
            shard.close()
        self.shards = [
            self._spawn_shard(index) for index in range(self.n_shards)
        ]

    def _reconcile_shards(self) -> None:
        """Resume any DDL or deploy broadcast a crash cut short mid-fleet.

        Broadcasts apply to shard 0 first, then 1..N-1 in order, so after
        a crash shard 0 always holds the longest-applied prefix. Replaying
        the missing tail onto the lagging shards — through their engines,
        so the repair itself is WAL-logged — restores the broadcast
        invariant (tables, views, indexes, model deploys) before the
        coordinator mirrors shard 0's catalog.
        """
        source = self.shards[0]
        src_db = source.database
        src_tables = set(src_db.catalog.table_names())
        src_views = set(src_db.catalog.view_names())
        src_indexes = {d.name: d for d in src_db.catalog.index_defs()}
        for shard in self.shards[1:]:
            db = shard.database
            # Drops first (views before the tables they may reference):
            # an interrupted DROP broadcast resumes forward.
            for name in set(db.catalog.view_names()) - src_views:
                db.execute(f"DROP VIEW IF EXISTS {name}")
            for name in set(db.catalog.table_names()) - src_tables:
                db.execute(f"DROP TABLE IF EXISTS {name}")
            for name in sorted(src_tables - set(db.catalog.table_names())):
                columns = [
                    ast.ColumnDef(
                        c.name,
                        str(c.dtype),
                        nullable=c.nullable,
                        primary_key=c.primary_key,
                        hidden=c.hidden,
                    )
                    for c in src_db.catalog.schema(name).columns
                ]
                db.execute(str(ast.CreateTable(name, columns)))
            for name in sorted(src_views - set(db.catalog.view_names())):
                db.execute(
                    f"CREATE VIEW {name} AS {src_db.catalog.view(name)}"
                )
            have = {d.name for d in db.catalog.index_defs()}
            for name in have - set(src_indexes):
                db.execute(f"DROP INDEX IF EXISTS {name}")
            for name in sorted(set(src_indexes) - have):
                defn = src_indexes[name]
                db.execute(
                    f"CREATE INDEX {name} ON {defn.table} ({defn.column})"
                )
            for model in source.registry.model_names():
                known = (
                    {v.version for v in shard.registry.versions(model)}
                    if shard.registry.has_model(model)
                    else set()
                )
                # Missing versions are always a suffix (deploys broadcast
                # in shard order), so redeploying in version order keeps
                # the deterministic numbering aligned.
                for version in source.registry.versions(model):
                    if version.version in known:
                        continue
                    shard.registry.deploy(
                        model,
                        version.graph,
                        user=version.created_by,
                        description=version.description,
                        metrics=dict(version.metrics),
                        training_run_id=version.training_run_id,
                    )

    def _mirror_catalog(self) -> None:
        """Rebuild the coordinator's catalog from shard 0 on reopen.

        The coordinator is in-memory (it holds no rows, so there is
        nothing to make durable); its schema authority is reconstructed
        from shard 0, whose catalog is — by the broadcast invariant —
        identical to every other shard's, minus the hidden sequence
        column.
        """
        source = self.shards[0].database
        coordinator = self.coordinator
        for name in source.catalog.table_names():
            if coordinator.catalog.has_table(name):
                continue  # flock_models, pre-bound by the registry
            schema = source.catalog.schema(name)
            coordinator.catalog.create_table(
                TableSchema.of(
                    name,
                    [
                        Column(
                            c.name,
                            c.dtype,
                            nullable=c.nullable,
                            primary_key=c.primary_key,
                        )
                        for c in schema.visible_columns
                    ],
                )
            )
        for view_name in source.catalog.view_names():
            if not coordinator.catalog.has_view(view_name):
                coordinator.catalog.create_view(
                    view_name,
                    parse_statement(str(source.catalog.view(view_name))),
                )
        for defn in source.catalog.index_defs():
            if defn.column.lower() == SEQ_COLUMN:
                continue
            coordinator.catalog.create_index(
                defn.name, defn.table, defn.column, if_not_exists=True
            )
        # Principals and grants, exactly as persist restores them.
        for principal in source.security._principals.values():
            if principal.name == "admin":
                continue
            if principal.is_role:
                coordinator.security.create_role(principal.name)
            else:
                coordinator.security.create_user(principal.name)
        for principal in source.security._principals.values():
            mirrored = coordinator.security.principal(principal.name)
            mirrored.roles = set(principal.roles)
            mirrored.grants = {
                obj: set(privs)
                for obj, privs in principal.grants.items()
            }
        self._coordinator_registry.load_from_database(source)

    def _recover_sequences(self) -> None:
        """Next global sequence per table: max over shards, plus one."""
        for name in self.coordinator.catalog.table_names():
            schema = self.coordinator.catalog.schema(name)
            if not schema.primary_key_indexes:
                continue
            top = 0
            for shard in self.shards:
                head = shard.database.catalog.table(name).head_version
                if head.row_count:
                    sequences = head.columns[len(schema.columns)].values
                    top = max(top, int(sequences.max()) + 1)
            self._next_seq[name.lower()] = top

    def _take_sequences(self, table_name: str, count: int) -> int:
        with self._seq_lock:
            start = self._next_seq.setdefault(table_name.lower(), 0)
            self._next_seq[table_name.lower()] = start + count
        return start

    def _count_route(self, kind: str) -> None:
        with self._routes_lock:
            self._routes[kind] += 1

    # -- parsing -------------------------------------------------------
    def _parse(self, sql: str) -> tuple[ast.Statement, int]:
        with self._parse_lock:
            hit = self._parse_cache.get(sql)
            if hit is not None:
                self._parse_cache.move_to_end(sql)
                return hit
        parser = Parser(sql)
        statement = parser.parse()
        entry = (statement, parser.parameter_count)
        with self._parse_lock:
            self._parse_cache[sql] = entry
            if len(self._parse_cache) > 256:
                self._parse_cache.popitem(last=False)
        return entry

    # -- the execution surface -----------------------------------------
    def execute(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        user: str = "admin",
        timeout: float | None = None,
    ) -> QueryResult:
        self._check_open()
        statement, placeholders = self._parse(sql)
        given = 0 if params is None else len(params)
        if placeholders != given:
            # Same contract as Connection.execute, checked before routing
            # so every shard sees only well-bound statements.
            raise BindError(
                f"statement has {placeholders} '?' placeholder(s) "
                f"but {given} parameter value(s) were supplied"
            )
        if isinstance(statement, (ast.Begin, ast.Commit, ast.Rollback)):
            raise ShardError(
                "explicit transactions are not supported through the shard "
                "router; statements autocommit"
            )
        if is_read_only(statement):
            return self._execute_read(statement, sql, params, user)
        if isinstance(statement, ast.Insert):
            with self._ops.write_locked():
                return self._execute_insert(statement, params, user)
        if isinstance(statement, (ast.Update, ast.Delete)):
            with self._ops.write_locked():
                return self._execute_update_delete(
                    statement, sql, params, user
                )
        with self._ops.write_locked():
            return self._broadcast_ddl(statement, sql, params, user)

    def submit(
        self,
        sql: str,
        params: Sequence[Any] | None = None,
        user: str = "admin",
        timeout: float | None = None,
    ):
        from flock.client import _ImmediateFuture

        try:
            return _ImmediateFuture(
                result=self.execute(sql, params, user=user)
            )
        except FlockError as exc:
            return _ImmediateFuture(error=exc)

    def executemany(
        self, sql: str, seq_of_params, user: str = "admin"
    ) -> QueryResult:
        """Bulk-bind scatter: one executemany per shard, one route pass."""
        self._check_open()
        statement, placeholders = self._parse(sql)
        rows_params = [list(p) for p in seq_of_params]
        if (
            isinstance(statement, ast.Insert)
            and statement.select is None
            and len(statement.rows) == 1
        ):
            for row_params in rows_params:
                if len(row_params) != placeholders:
                    raise BindError(
                        f"statement has {placeholders} '?' placeholder(s) "
                        f"but {len(row_params)} parameter value(s) were "
                        f"supplied"
                    )
            with self._ops.write_locked():
                rows = [
                    self._fold_insert_row(statement, row_params)
                    for row_params in rows_params
                ]
                return self._scatter_rows(statement, rows, user)
        total = 0
        statement_type = "INSERT"
        for row_params in rows_params:
            result = self.execute(sql, row_params, user=user)
            statement_type = result.statement_type
            total += result.affected_rows
        return QueryResult(statement_type, affected_rows=total)

    # -- reads ---------------------------------------------------------
    def _execute_read(self, statement, sql, params, user) -> QueryResult:
        target = self._single_shard_target(statement, params)
        if target is not None:
            self._count_route("single")
            return self.shards[target].execute(sql, params, user)
        self._count_route("scatter")
        with self._ops.read_locked():
            return run_scatter(self, statement, sql, params, user)

    def _single_shard_target(self, statement, params) -> int | None:
        """The one shard that can answer *statement* alone, or None.

        Routing must be a *sound under-approximation*: answering on one
        shard is only legal when every matching row provably lives there
        — single plain-table FROM, no subqueries, and either a keyless
        (shard-0-pinned) table or a WHERE that pins the whole key to one
        shard. Equal keys co-locate, and within a shard the hidden
        sequence order is the global order restricted to that shard's
        rows, so even LIMIT without ORDER BY stays bit-identical.
        """
        if not isinstance(statement, ast.Select):
            return None
        if getattr(statement, "ctes", None):
            return None
        if not isinstance(statement.from_clause, ast.TableRef):
            return None
        name = statement.from_clause.name
        catalog = self.coordinator.catalog
        if catalog.has_view(name) or not catalog.has_table(name):
            return None
        if _has_in_query(statement):
            return None
        schema = catalog.schema(name)
        if not schema.primary_key_indexes:
            return 0
        keys = pinned_keys(schema, statement.where, params)
        if keys is None:
            return None
        owners = {shard_of(key, self.n_shards) for key in keys}
        if len(owners) == 1:
            return owners.pop()
        return None

    # -- INSERT --------------------------------------------------------
    def _execute_insert(self, statement, params, user) -> QueryResult:
        if statement.select is not None:
            select_result = self._execute_read(
                statement.select, str(statement.select), params, user
            )
            schema = self.coordinator.catalog.schema(statement.table)
            positions = self._insert_positions(statement, schema)
            source = select_result.batch
            if source.num_columns != len(positions):
                raise BindError(
                    f"INSERT column count {len(positions)} does not match "
                    f"SELECT column count {source.num_columns}"
                )
            rows = [list(row) for row in source.rows()]
            return self._scatter_rows(statement, rows, user)
        rows = [
            self._fold_insert_row(statement, params, row)
            for row in statement.rows
        ]
        return self._scatter_rows(statement, rows, user)

    def _insert_positions(self, statement, schema) -> list[int]:
        if statement.columns:
            return [schema.index_of(c) for c in statement.columns]
        return list(range(len(schema)))

    def _fold_insert_row(
        self, statement, params, row: list | None = None
    ) -> list[Any]:
        """One VALUES row as constants, exactly as the engine folds them."""
        if row is None:
            row = statement.rows[0]
        schema = self.coordinator.catalog.schema(statement.table)
        positions = self._insert_positions(statement, schema)
        if len(row) != len(positions):
            raise BindError(
                f"INSERT row has {len(row)} values, expected "
                f"{len(positions)}"
            )
        binder = Binder(
            self.coordinator, None if params is None else list(params)
        )
        empty_scope = Scope([])
        values = []
        for expr in row:
            bound = fold_constants(binder._bind_expr(expr, empty_scope))
            if not isinstance(bound, BoundLiteral):
                raise BindError("INSERT VALUES must be constant expressions")
            values.append(bound.value)
        return values

    def _scatter_rows(self, statement, rows, user) -> QueryResult:
        """Route value rows by key hash and insert shard-by-shard."""
        name = statement.table
        # Coordinator privileges mirror the shards'; checking here keeps
        # denials from reaching any shard.
        self.coordinator.security.check(user, "INSERT", name)
        schema = self.coordinator.catalog.schema(name)
        if not rows:
            return QueryResult("INSERT", affected_rows=0)
        positions = self._insert_positions(statement, schema)
        column_names = (
            list(statement.columns)
            if statement.columns
            else [c.name for c in schema.columns]
        )
        key_positions = schema.primary_key_indexes
        if not key_positions:
            placeholders = ", ".join("?" for _ in column_names)
            insert_sql = (
                f"INSERT INTO {name} ({', '.join(column_names)}) "
                f"VALUES ({placeholders})"
            )
            self.shards[0].database.executemany(
                insert_sql, [list(row) for row in rows], user=user
            )
            return QueryResult("INSERT", affected_rows=len(rows))

        slot_of = {p: i for i, p in enumerate(positions)}
        start = self._take_sequences(name, len(rows))
        groups: dict[int, list[list[Any]]] = {}
        for offset, row in enumerate(rows):
            key = tuple(
                canonical_key_value(
                    schema.columns[p],
                    row[slot_of[p]] if p in slot_of else None,
                )
                for p in key_positions
            )
            owner = shard_of(key, self.n_shards)
            groups.setdefault(owner, []).append(list(row) + [start + offset])

        placeholders = ", ".join("?" for _ in range(len(column_names) + 1))
        insert_sql = (
            f"INSERT INTO {name} "
            f"({', '.join(column_names + [SEQ_COLUMN])}) "
            f"VALUES ({placeholders})"
        )
        applied: list[tuple[int, list[int]]] = []
        applied_lock = threading.Lock()
        failures: list[FlockError] = []

        def _apply(owner: int, shard_rows: list[list[Any]]) -> None:
            try:
                self.shards[owner].database.executemany(
                    insert_sql, shard_rows, user=user
                )
            except FlockError as exc:
                failures.append(exc)
                return
            with applied_lock:
                applied.append((owner, [r[-1] for r in shard_rows]))

        if len(groups) == 1:
            owner, shard_rows = next(iter(groups.items()))
            _apply(owner, shard_rows)
        else:
            # Per-shard appends run concurrently: the router's exclusive
            # ops lock already serializes whole statements, each worker
            # owns exactly one shard engine, and commit fsyncs hit N
            # independent write-ahead logs — this is where sharded write
            # throughput actually scales.
            workers = [
                threading.Thread(target=_apply, args=(owner, groups[owner]))
                for owner in sorted(groups)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        if failures:
            # Compensate: a failed scatter must leave no partial rows.
            # The hidden sequence numbers identify exactly the rows this
            # statement created (they are addressable in WHERE even
            # though SELECT never sees them).
            for owner, sequences in applied:
                in_list = ", ".join(str(s) for s in sequences)
                self.shards[owner].database.execute(
                    f"DELETE FROM {name} WHERE {SEQ_COLUMN} IN ({in_list})",
                    user="admin",
                )
            raise failures[0]
        return QueryResult("INSERT", affected_rows=len(rows))

    # -- UPDATE / DELETE -----------------------------------------------
    def _execute_update_delete(
        self, statement, sql, params, user
    ) -> QueryResult:
        name = statement.table
        schema = self.coordinator.catalog.schema(name)
        key_positions = set(schema.primary_key_indexes)
        if isinstance(statement, ast.Update) and key_positions:
            key_names = {
                schema.columns[p].name.lower() for p in key_positions
            }
            for column_name, _ in statement.assignments:
                if column_name.lower() in key_names:
                    raise ShardError(
                        f"UPDATE may not assign to primary-key column "
                        f"{column_name!r} on a sharded table (rows would "
                        f"migrate between shards); DELETE and re-INSERT "
                        f"instead"
                    )
        send_sql, send_params = sql, params
        if statement.where is not None and any(
            isinstance(node, ast.InQuery) for node in statement.where.walk()
        ):
            if params:
                raise ShardError(
                    "parameterized IN (SELECT ...) is not supported in "
                    "sharded UPDATE/DELETE; inline the values or drop "
                    "the parameters"
                )
            statement = dataclasses.replace(
                statement,
                where=self._resolve_in_queries(statement.where, user),
            )
            send_sql, send_params = str(statement), None
        if not key_positions:
            self._count_route("single")
            return self.shards[0].execute(send_sql, send_params, user)
        keys = pinned_keys(schema, statement.where, send_params)
        if keys is not None:
            owners = {shard_of(key, self.n_shards) for key in keys}
            if len(owners) == 1:
                self._count_route("single")
                return self.shards[owners.pop()].execute(
                    send_sql, send_params, user
                )
        self._count_route("broadcast")
        statement_type = (
            "UPDATE" if isinstance(statement, ast.Update) else "DELETE"
        )
        affected = 0
        for shard in self.shards:
            result = shard.execute(send_sql, send_params, user)
            affected += result.affected_rows
        return QueryResult(statement_type, affected_rows=affected)

    def _resolve_in_queries(self, expr: ast.Expr, user: str) -> ast.Expr:
        """Rewrite ``IN (SELECT ...)`` to a literal IN list.

        The subquery runs once through the sharded read path (so it sees
        the same globally merged snapshot a single engine would), and the
        broadcast statement carries plain literals every shard can
        evaluate locally.
        """
        if isinstance(expr, ast.InQuery):
            result = self._execute_read(
                expr.query, str(expr.query), None, user
            )
            batch = result.batch
            if batch.num_columns != 1:
                raise BindError("IN subquery must return exactly one column")
            values = [v for v in batch.columns[0].to_pylist() if v is not None]
            operand = self._resolve_in_queries(expr.operand, user)
            if not values:
                # x IN () is never true; x NOT IN () always is.
                return ast.Literal(bool(expr.negated))
            return ast.InList(
                operand, [ast.Literal(v) for v in values], expr.negated
            )
        if isinstance(expr, ast.Expr):
            changes = {}
            for field in dataclasses.fields(expr):
                value = getattr(expr, field.name)
                if isinstance(value, ast.Expr):
                    rewritten = self._resolve_in_queries(value, user)
                    if rewritten is not value:
                        changes[field.name] = rewritten
                elif isinstance(value, list) and any(
                    isinstance(item, ast.Expr) for item in value
                ):
                    rewritten_list = [
                        self._resolve_in_queries(item, user)
                        if isinstance(item, ast.Expr)
                        else item
                        for item in value
                    ]
                    if any(
                        a is not b for a, b in zip(rewritten_list, value)
                    ):
                        changes[field.name] = rewritten_list
            if changes:
                return dataclasses.replace(expr, **changes)
        return expr

    # -- DDL / security / settings -------------------------------------
    def _broadcast_ddl(self, statement, sql, params, user) -> QueryResult:
        """Two-phase broadcast: validate-and-apply on the coordinator,
        then apply on every shard, undoing creates on failure.

        Phase 1 runs the statement on the coordinator, which performs the
        full validation the shards would (parse and bind errors, duplicate
        names, privileges) — a failure here touches no shard. Phase 2
        applies shard by shard; shards are deterministic copies of the
        coordinator's catalog, so a divergent outcome means a shard-local
        fault, and the applied prefix is rolled back with the statement's
        inverse so no two shards disagree about the schema.
        """
        self._count_route("ddl")
        result = self.coordinator.execute(sql, params, user=user)
        shard_sql = sql
        if isinstance(statement, ast.CreateTable):
            shard_sql = self._augment_create_table(statement)
        applied: list[_Shard] = []
        try:
            for shard in self.shards:
                shard.execute(shard_sql, params, user)
                applied.append(shard)
        except FlockError as exc:
            inverse = _inverse_ddl(statement)
            try:
                if inverse is not None:
                    for shard in applied:
                        shard.execute(inverse, None, "admin")
                    self.coordinator.execute(inverse, user="admin")
            except FlockError:
                raise ShardError(
                    f"DDL broadcast failed on shard {len(applied)} and its "
                    f"undo also failed; shard catalogs may be divergent: "
                    f"{exc}"
                ) from exc
            if inverse is None:
                raise ShardError(
                    f"DDL broadcast failed on shard {len(applied)} with no "
                    f"inverse to roll back; shard catalogs may be "
                    f"divergent: {exc}"
                ) from exc
            raise
        if isinstance(statement, ast.CreateTable):
            with self._seq_lock:
                self._next_seq.setdefault(statement.name.lower(), 0)
        if isinstance(statement, ast.DropTable):
            with self._seq_lock:
                self._next_seq.pop(statement.name.lower(), None)
        return result

    def _augment_create_table(self, statement: ast.CreateTable) -> str:
        """The shard-side DDL: keyed tables grow the sequence column."""
        if not any(c.primary_key for c in statement.columns):
            return str(statement)
        augmented = ast.CreateTable(
            statement.name,
            list(statement.columns)
            + [
                ast.ColumnDef(
                    SEQ_COLUMN,
                    "BIGINT",
                    nullable=False,
                    primary_key=False,
                    hidden=True,
                )
            ],
            statement.if_not_exists,
        )
        return str(augmented)

    # -- lifecycle ------------------------------------------------------
    def restart_shard(self, index: int) -> None:
        """Crash-recover one shard through ``Database.open``.

        On the process backend the old worker is stopped (or was already
        SIGKILLed — close tolerates a dead peer) and a fresh worker
        re-opens the directory, running the same recovery in its own
        process."""
        with self._ops.write_locked():
            self.shards[index].close()
            self.shards[index] = (
                self._spawn_shard(index)
                if self._process
                else self._open_shard(index)
            )

    def wait_for_catchup(self, timeout: float | None = 10.0) -> bool:
        """With replicas: block until every shard's followers caught up."""
        return all(
            shard.cluster.wait_for_catchup(timeout)
            for shard in self.shards
            if shard.cluster is not None
        )

    def stats(self) -> dict:
        with self._routes_lock:
            routes = dict(self._routes)
        per_shard = []
        for shard in self.shards:
            database = shard.database
            per_shard.append(
                {
                    "path": str(shard.path),
                    "rows": {
                        name: database.catalog.table(name).row_count
                        for name in database.catalog.table_names()
                    },
                }
            )
        return {
            "shards": self.n_shards,
            "replicas": self.replicas,
            "backend": self.backend,
            "routes": routes,
            "next_sequence": dict(self._next_seq),
            "per_shard": per_shard,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close()
        self.coordinator.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ShardError("sharded cluster is closed")

    def __enter__(self) -> "ShardedCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<flock.shard.ShardedCluster path={self.path} "
            f"shards={self.n_shards} replicas={self.replicas}>"
        )


def _inverse_ddl(statement: ast.Statement) -> str | None:
    """The statement that undoes *statement* on an applied shard."""
    if isinstance(statement, ast.CreateTable):
        return f"DROP TABLE IF EXISTS {statement.name}"
    if isinstance(statement, ast.CreateView):
        return f"DROP VIEW IF EXISTS {statement.name}"
    if isinstance(statement, ast.CreateIndex):
        return f"DROP INDEX IF EXISTS {statement.name}"
    return None
