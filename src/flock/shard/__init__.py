"""flock.shard — hash-sharded tables with scatter-gather execution.

The horizontal-scaling tier: ``flock.connect(path, shards=N)`` partitions
every keyed table across N durable engines and keeps all results
bit-identical to a single-engine run. See :mod:`flock.shard.router` for
the routing rules and :mod:`flock.shard.merge` for the order discipline.
"""

from flock.shard.merge import SEQ_COLUMN, gather_versions, run_scatter
from flock.shard.router import (
    ShardedCluster,
    ShardRegistry,
    canonical_key_value,
    pinned_keys,
    shard_of,
)

__all__ = [
    "SEQ_COLUMN",
    "ShardRegistry",
    "ShardedCluster",
    "canonical_key_value",
    "gather_versions",
    "pinned_keys",
    "run_scatter",
    "shard_of",
]
