"""Scatter-gather reads over a sharded cluster, bit-identical to one engine.

The merge discipline: every sharded table carries a hidden ``_flock_seq``
column assigned by the router from one per-table monotonic counter, in the
order rows were presented by the client. Concatenating the per-shard
snapshots and sorting by that sequence therefore reconstructs *exactly* the
row order a single engine would hold — after which the coordinator's own
binder, optimizer and morsel executor (whose merge step is already exact
serial order, see :mod:`flock.db.exec`) produce bit-identical results.

The coordinator engine is an in-memory :class:`~flock.db.Database` whose
catalog mirrors the user-visible schema but whose tables stay empty; merged
snapshots are served to the executor through a custom execution context
instead of being loaded into coordinator tables, so concurrent scattered
reads never contend on coordinator storage.
"""

from __future__ import annotations

import time

import numpy as np

from flock.db.binder import Binder
from flock.db.engine import _collect_reads
from flock.db.exec.executor import Executor, render_analyzed_plan
from flock.db.result import QueryResult
from flock.db.sql import ast_nodes as ast
from flock.db.storage import TableVersion
from flock.db.types import DataType
from flock.db.vector import Batch, ColumnVector

#: Hidden global-sequence column appended to every sharded table. The
#: router assigns it; SELECT never sees it (see flock.db.binder).
SEQ_COLUMN = "_flock_seq"


def gather_versions(cluster, names) -> dict:
    """One merged :class:`TableVersion` per table in *names*.

    Per shard, all heads are read under a single acquisition of that
    shard's statement read lock, so each shard contributes one internally
    consistent snapshot; cross-shard consistency comes from the cluster's
    operation lock held by the caller (writes are excluded while any
    scattered read is gathering).
    """
    wanted = [n.lower() for n in names]
    snapshots: dict[str, list[TableVersion]] = {n: [] for n in wanted}
    for shard in cluster.shards:
        # The backend seam: a thread shard locks and reads its heads in
        # place; a process shard ships (version_id, schema, columns,
        # operation) snapshots over the wire, rebuilt as TableVersions on
        # this side. Either way, one consistent snapshot per shard.
        heads = shard.head_versions(wanted)
        for name in wanted:
            snapshots[name].append(heads[name])
    return {
        name: _merge(cluster, name, parts)
        for name, parts in snapshots.items()
    }


def _merge(cluster, name: str, parts: list[TableVersion]) -> TableVersion:
    coordinator_schema = cluster.coordinator.catalog.schema(name)
    if not coordinator_schema.primary_key_indexes:
        # Tables without a primary key have no shard key: their rows are
        # pinned to shard 0 and carry no sequence column, so shard 0's
        # snapshot *is* the single-engine state.
        return parts[0]
    n_visible = len(coordinator_schema.columns)
    sequences = np.concatenate([p.columns[n_visible].values for p in parts])
    order = np.argsort(sequences, kind="stable")
    merged = []
    for position in range(n_visible):
        vector = parts[0].columns[position]
        for part in parts[1:]:
            vector = vector.concat(part.columns[position])
        merged.append(vector.take(order))
    return TableVersion(-1, coordinator_schema, merged, "SHARD-MERGE")


class _MergedContext:
    """Execution context serving merged snapshots to the executor.

    Deliberately has no ``index_lookup``: coordinator index metadata
    describes per-shard buckets, not the merged snapshot, so index access
    paths degrade to scans here (the lookup contract allows any superset;
    absence is the safe superset). ``table_version`` is provided, so
    zone-map pruning still works — zones are built lazily from the merged
    columns themselves.
    """

    def __init__(self, database, versions: dict):
        self.database = database
        self.versions = versions

    def table_batch(self, table_name: str) -> Batch:
        return self.versions[table_name.lower()].batch()

    def table_version(self, table_name: str) -> TableVersion:
        return self.versions[table_name.lower()]

    def score(self, node, inputs):
        return self.database.scorer.score(
            node, inputs, self.database.model_store
        )


def run_scatter(cluster, statement, sql, params, user) -> QueryResult:
    """Execute a read-only statement across every shard and merge.

    Mirrors ``Database._execute_select`` / ``_execute_explain`` — bind and
    privilege-check on the coordinator, optimize, run — except the executor
    reads merged snapshots. Wrapped in the coordinator's per-statement
    observability envelope so scattered reads appear in its query log,
    audit trail and metrics exactly like local ones.
    """
    coordinator = cluster.coordinator
    statement_type = type(statement).__name__.upper()

    def runner() -> QueryResult:
        return _run(cluster, coordinator, statement, params, user)

    with coordinator.statement_lock.read_locked():
        return coordinator._observed_statement(
            sql, user, statement_type, runner
        )


def _run(cluster, coordinator, statement, params, user) -> QueryResult:
    explain = isinstance(statement, ast.Explain)
    query = statement.query if explain else statement
    binder = Binder(coordinator, None if params is None else list(params))
    bound = binder.bind_query(query)
    coordinator._check_plan_privileges(bound, user)
    reads = _collect_reads(bound)
    plan = coordinator.optimizer.optimize(bound, coordinator)
    context = _MergedContext(
        coordinator, gather_versions(cluster, reads[0])
    )
    if explain and not statement.analyze:
        lines = plan.explain().splitlines()
        return _plan_result(lines)
    executor = Executor(
        context,
        collect_stats=explain,
        pool=coordinator._acquire_pool(),
        parallel=coordinator.parallel,
    )
    start_ns = time.perf_counter_ns()
    batch = executor.run(plan)
    coordinator._audit_reads(reads, user)
    if explain:
        total_ms = (time.perf_counter_ns() - start_ns) / 1e6
        lines = render_analyzed_plan(plan, executor.node_stats).splitlines()
        lines.append(f"Execution: {total_ms:.3f} ms, {batch.num_rows} row(s)")
        return _plan_result(lines)
    return QueryResult("SELECT", batch=batch)


def _plan_result(lines: list[str]) -> QueryResult:
    batch = Batch(
        ["plan"], [ColumnVector.from_values(DataType.TEXT, lines)]
    )
    return QueryResult("EXPLAIN", batch=batch)
