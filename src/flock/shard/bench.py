"""Shard write-scaling benchmark: bulk-load write QPS versus shard count.

The workload is the sharded tier's reason to exist: keyed bulk loads
(``executemany`` blocks of single-row parameterized INSERTs) whose rows
hash across every shard. The router folds and routes once, then applies
each shard's slice concurrently — N engines appending to N independent
write-ahead logs — so the shard count is the write-parallelism axis being
measured. Reads do not belong here: the scatter-gather read path is
measured by its bit-identity oracle, and read *scaling* is the replica
tier's axis (:mod:`flock.cluster.bench`).

Each topology loads the same rows into a fresh directory; the measured
window covers only the post-warmup blocks. Correctness rides along: every
topology must report the same row count and the same aggregate over what
it loaded.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

#: Rows per executemany block when loading (one commit per block per shard).
TABLE_BLOCK_SIZE = 2_000

#: Aggregate every topology must answer identically after its load.
CHECK_QUERY = (
    "SELECT COUNT(*) AS n, MIN(id) AS lo, MAX(id) AS hi, "
    "SUM(amount) AS total FROM shipments"
)


def usable_cores() -> int:
    from flock.cluster.bench import usable_cores as cores

    return cores()


def build_rows(n_rows: int, random_state: int = 0) -> list[tuple]:
    """Keyed shipment rows; ids dense so every shard gets an even slice."""
    import numpy as np

    rng = np.random.default_rng(random_state)
    amounts = rng.uniform(1.0, 500.0, n_rows)
    regions = ["north", "south", "east", "west"]
    return [
        (
            int(i + 1),
            f"order-{i + 1}",
            regions[int(i) % len(regions)],
            float(amounts[i]),
        )
        for i in range(n_rows)
    ]


def run_shard_scaling_benchmark(
    shard_counts=(1, 2, 4),
    n_rows: int = 24_000,
    block_rows: int = TABLE_BLOCK_SIZE,
    seed: int = 7,
    data_dir: str | None = None,
    process: bool | None = None,
) -> dict:
    """Bulk-load write QPS (rows/s) through the shard router per count.

    Every topology gets a fresh directory (shard manifests pin the count,
    so topologies cannot share one), loads one warmup block outside the
    measured window, then the remaining blocks inside it. ``scaling`` is
    write QPS relative to the single-shard topology. ``cores`` records
    the host's usable CPUs — concurrent per-shard appends cannot scale on
    one core, and the gate must skip there instead of passing vacuously.

    *process* selects the worker backend: ``None`` (the default) uses
    process-backed shards whenever the platform supports them — thread
    shards share one GIL, so only worker processes can show real write
    scaling — and the resolved choice is recorded as ``backend`` so the
    artifact says which tier produced its numbers.
    """
    import flock
    from flock.proc import proc_available

    use_process = proc_available() if process is None else bool(process)
    rows = build_rows(n_rows, random_state=seed)
    owned = data_dir is None
    root = Path(data_dir or tempfile.mkdtemp(prefix="flock-shard-bench-"))
    results = []
    try:
        for count in shard_counts:
            path = root / f"shards-{count}"
            client = flock.connect(path, shards=count, process=use_process)
            try:
                client.execute(
                    "CREATE TABLE shipments (id INT PRIMARY KEY, "
                    "ref TEXT, region TEXT, amount FLOAT)"
                )
                client.executemany(
                    "INSERT INTO shipments VALUES (?, ?, ?, ?)",
                    rows[:block_rows],
                )
                measured = rows[block_rows:]
                started = time.perf_counter()
                for start in range(0, len(measured), block_rows):
                    client.executemany(
                        "INSERT INTO shipments VALUES (?, ?, ?, ?)",
                        measured[start : start + block_rows],
                    )
                elapsed = time.perf_counter() - started
                check = repr(client.execute(CHECK_QUERY).rows())
                stats = client.stats()
                results.append(
                    {
                        "shards": count,
                        "write_qps": len(measured) / elapsed,
                        "elapsed_s": elapsed,
                        "rows_loaded": n_rows,
                        "check": check,
                        "routes": stats["routes"],
                        "per_shard_rows": [
                            entry["rows"].get("shipments", 0)
                            for entry in stats["per_shard"]
                        ],
                    }
                )
            finally:
                client.close()
    finally:
        if owned:
            shutil.rmtree(root, ignore_errors=True)

    base_qps = results[0]["write_qps"] if results else 0.0
    for entry in results:
        entry["scaling"] = (
            entry["write_qps"] / base_qps if base_qps else 0.0
        )
    checks = {entry["check"] for entry in results}
    return {
        "n_rows": n_rows,
        "block_rows": block_rows,
        "cores": usable_cores(),
        "backend": "process" if use_process else "thread",
        "shard_counts": list(shard_counts),
        "results_match": len(checks) == 1,
        "results": results,
    }


def render_shard_benchmark(report: dict) -> list[str]:
    """Human-readable lines for a run_shard_scaling_benchmark() report."""
    lines = [
        "Shard write scaling: bulk-load write QPS through the shard router",
        f"  workload: {report['n_rows']} keyed rows in blocks of "
        f"{report['block_rows']}, {report['cores']} usable core(s), "
        f"{report.get('backend', 'thread')} shard backend",
    ]
    for entry in report["results"]:
        spread = "/".join(str(n) for n in entry["per_shard_rows"])
        lines.append(
            f"  {entry['shards']} shard(s): {entry['write_qps']:9.0f} "
            f"rows/s ({entry['scaling']:.2f}x), rows per shard {spread}"
        )
    lines.append(
        "  aggregates identical across topologies: "
        + ("yes" if report["results_match"] else "NO")
    )
    if report["cores"] < 4:
        lines.append(
            f"  note: {report['cores']} usable core(s) — concurrent "
            f"per-shard appends cannot scale here; the >=2x gate skips "
            f"on this host"
        )
    return lines
