"""Flock: Enterprise-Grade ML on a DBMS.

A reproduction of "Cloudy with high chance of DBMS: a 10-year prediction for
Enterprise-Grade ML" (Agrawal et al., CIDR 2020). The package implements the
paper's reference architecture end to end:

- :mod:`flock.db` — in-memory relational engine (SQL, optimizer, vectorized
  executor, versioned storage, transactions, access control, audit);
- :mod:`flock.ml` — from-scratch numpy training library (the sklearn
  stand-in);
- :mod:`flock.mlgraph` — ONNX-like model graph IR + runtime;
- :mod:`flock.inference` — in-DBMS inference: PREDICT as a relational
  operator plus the SQL×ML cross-optimizer;
- :mod:`flock.provenance` — end-to-end provenance (SQL + Python capture,
  versioned catalog);
- :mod:`flock.policy` — the model→decision policy engine;
- :mod:`flock.registry` — models as governed, versioned first-class data;
- :mod:`flock.lifecycle` — train-in-cloud / score-in-DBMS orchestration;
- :mod:`flock.corpus`, :mod:`flock.landscape`, :mod:`flock.workloads` —
  evaluation substrates (notebook corpora, the systems landscape, TPC-H/C).
"""

__version__ = "0.1.0"

from dataclasses import dataclass
from typing import Any, Iterator

from flock.db import Database
from flock.errors import FlockError

__all__ = [
    "Client",
    "Database",
    "FlockError",
    "FlockSession",
    "__version__",
    "connect",
    "create_database",
    "open_session",
]


@dataclass
class FlockSession:
    """The handles returned by :func:`create_database`.

    A named bundle instead of a bare tuple: ``.db`` is the engine,
    ``.registry`` the model store, ``.cross_optimizer`` the SQL×ML
    cross-optimizer wired into the engine's rule pass.  Iterating yields
    ``(db, registry)`` so existing ``database, registry = create_database()``
    call sites keep working.

    (Distinct from :class:`flock.lifecycle.FlockSession`, the full
    train-in-cloud/score-in-DBMS deployment object, which builds on this.)
    """

    db: Database
    registry: Any
    cross_optimizer: Any

    @property
    def database(self) -> Database:
        """Alias for :attr:`db`."""
        return self.db

    def __iter__(self) -> Iterator[Any]:
        yield self.db
        yield self.registry


from flock.client import Client  # noqa: E402  (needs FlockSession-free deps)


def connect(path=None, **kwargs) -> "Client":
    """Open a Flock stack — embedded, serving or replicated — behind one
    uniform :class:`~flock.client.Client`.

    The preferred entry point::

        flock.connect()                           # embedded, in-memory
        flock.connect("churn.db")                 # embedded, durable
        flock.connect("churn.db", serving=True)   # one serving node
        flock.connect("churn.db", replicas=4)     # replicated read tier
        flock.connect("churn.db", shards=4)       # hash-sharded tier

    See :func:`flock.client.connect` for every keyword.
    """
    from flock.client import connect as _connect

    return _connect(path, **kwargs)


def create_database(cross_optimizer=None) -> FlockSession:
    """Compatibility shim over :func:`connect`: an in-memory session.

    A :class:`~flock.db.Database` wired with a model registry, the
    inference scorer and the SQL×ML cross-optimizer. Returns a
    :class:`FlockSession`; unpack it as ``db, registry = ...`` or keep the
    object. New code should call ``flock.connect()``, which returns the
    uniform :class:`~flock.client.Client` instead (reach the same handles
    via ``client.db`` / ``client.registry`` / ``client.session``).
    """
    from flock.client import memory_session

    return memory_session(cross_optimizer)


def open_session(
    path,
    cross_optimizer=None,
    *,
    sync_mode: str = "commit",
    group_window_ms: float = 1.0,
    checkpoint_bytes: int | None = None,
) -> FlockSession:
    """Compatibility shim over :func:`connect`: a durable session.

    Opens (or creates) the database directory *path* with write-ahead
    logging and crash recovery (see :mod:`flock.db.wal`). ``sync_mode`` is
    ``"commit"`` (fsync before every acknowledgement), ``"group"``
    (batched fsyncs across concurrent commits) or ``"off"``. The recovery
    details are on ``session.db.wal.last_recovery``. New code should call
    ``flock.connect(path, ...)``; this shim stays for the existing
    ``session = open_session(...)`` call sites and returns the raw
    :class:`FlockSession` (no server, no replicas).
    """
    from flock.client import durable_session

    return durable_session(
        path,
        cross_optimizer,
        sync_mode=sync_mode,
        group_window_ms=group_window_ms,
        checkpoint_bytes=checkpoint_bytes,
    )
