"""Flock: Enterprise-Grade ML on a DBMS.

A reproduction of "Cloudy with high chance of DBMS: a 10-year prediction for
Enterprise-Grade ML" (Agrawal et al., CIDR 2020). The package implements the
paper's reference architecture end to end:

- :mod:`flock.db` — in-memory relational engine (SQL, optimizer, vectorized
  executor, versioned storage, transactions, access control, audit);
- :mod:`flock.ml` — from-scratch numpy training library (the sklearn
  stand-in);
- :mod:`flock.mlgraph` — ONNX-like model graph IR + runtime;
- :mod:`flock.inference` — in-DBMS inference: PREDICT as a relational
  operator plus the SQL×ML cross-optimizer;
- :mod:`flock.provenance` — end-to-end provenance (SQL + Python capture,
  versioned catalog);
- :mod:`flock.policy` — the model→decision policy engine;
- :mod:`flock.registry` — models as governed, versioned first-class data;
- :mod:`flock.lifecycle` — train-in-cloud / score-in-DBMS orchestration;
- :mod:`flock.corpus`, :mod:`flock.landscape`, :mod:`flock.workloads` —
  evaluation substrates (notebook corpora, the systems landscape, TPC-H/C).
"""

__version__ = "0.1.0"

from dataclasses import dataclass
from typing import Any, Iterator

from flock.db import Database
from flock.errors import FlockError

__all__ = [
    "Database",
    "FlockError",
    "FlockSession",
    "__version__",
    "create_database",
    "open_session",
]


@dataclass
class FlockSession:
    """The handles returned by :func:`create_database`.

    A named bundle instead of a bare tuple: ``.db`` is the engine,
    ``.registry`` the model store, ``.cross_optimizer`` the SQL×ML
    cross-optimizer wired into the engine's rule pass.  Iterating yields
    ``(db, registry)`` so existing ``database, registry = create_database()``
    call sites keep working.

    (Distinct from :class:`flock.lifecycle.FlockSession`, the full
    train-in-cloud/score-in-DBMS deployment object, which builds on this.)
    """

    db: Database
    registry: Any
    cross_optimizer: Any

    @property
    def database(self) -> Database:
        """Alias for :attr:`db`."""
        return self.db

    def __iter__(self) -> Iterator[Any]:
        yield self.db
        yield self.registry


def create_database(cross_optimizer=None) -> FlockSession:
    """A :class:`~flock.db.Database` wired with a model registry, the
    inference scorer and the SQL×ML cross-optimizer — the one-call entry
    point used by the examples.

    Pass a configured :class:`flock.inference.CrossOptimizer` to control
    which cross-optimizations run (the ablation benchmarks do this).
    Returns a :class:`FlockSession`; unpack it as ``db, registry = ...``
    or keep the object and use ``.db`` / ``.registry`` /
    ``.cross_optimizer``.
    """
    from flock.db.optimizer.rules import Optimizer
    from flock.inference.optimizer import CrossOptimizer
    from flock.inference.predict import DefaultScorer
    from flock.registry import ModelRegistry

    if cross_optimizer is None:
        cross_optimizer = CrossOptimizer()
    registry = ModelRegistry()
    database = Database(
        model_store=registry,
        scorer=DefaultScorer(),
        optimizer=Optimizer(extra_rules=cross_optimizer.rules()),
    )
    database.cross_optimizer = cross_optimizer
    registry.bind_database(database)
    return FlockSession(database, registry, cross_optimizer)


def open_session(
    path,
    cross_optimizer=None,
    *,
    sync_mode: str = "commit",
    group_window_ms: float = 1.0,
    checkpoint_bytes: int | None = None,
) -> FlockSession:
    """The durable counterpart of :func:`create_database`.

    Opens (or creates) the database directory *path* with write-ahead
    logging and crash recovery (see :mod:`flock.db.wal`), wired with the
    same registry/scorer/cross-optimizer stack. ``sync_mode`` is
    ``"commit"`` (fsync before every acknowledgement), ``"group"``
    (batched fsyncs across concurrent commits) or ``"off"``. The recovery
    details are on ``session.db.wal.last_recovery``.
    """
    from flock.db.optimizer.rules import Optimizer
    from flock.inference.optimizer import CrossOptimizer
    from flock.inference.predict import DefaultScorer
    from flock.registry import ModelRegistry

    if cross_optimizer is None:
        cross_optimizer = CrossOptimizer()
    registry = ModelRegistry()
    database = Database.open(
        path,
        model_store=registry,
        scorer=DefaultScorer(),
        optimizer=Optimizer(extra_rules=cross_optimizer.rules()),
        sync_mode=sync_mode,
        group_window_ms=group_window_ms,
        checkpoint_bytes=checkpoint_bytes,
    )
    database.cross_optimizer = cross_optimizer
    return FlockSession(database, registry, cross_optimizer)
