"""Fairness metrics and group reports for responsible AI.

The paper's enterprise requirements put "model fairness" next to privacy and
auditability (§1), and its survey of the field finds "interest in bias,
fairness and responsible use of machine learning is exploding, though only
limited solutions exist" (§3). These are the standard group-fairness
measures, computed per protected group with the same from-scratch discipline
as the rest of :mod:`flock.ml`:

- **demographic parity**: P(ŷ=1 | group) equal across groups;
- **equal opportunity**: TPR equal across groups;
- **predictive equality**: FPR equal across groups.

Ratios follow the four-fifths convention: a min/max ratio below 0.8 flags
disparate impact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from flock.errors import ModelError

FOUR_FIFTHS = 0.8


@dataclass(frozen=True)
class GroupStats:
    """Confusion-matrix-derived rates for one protected group."""

    group: object
    size: int
    positive_rate: float  # P(ŷ=1)
    true_positive_rate: float | None  # None when the group has no positives
    false_positive_rate: float | None  # None when no negatives


@dataclass
class FairnessReport:
    """Per-group stats plus cross-group disparity ratios."""

    groups: list[GroupStats] = field(default_factory=list)

    def _rates(self, attribute: str) -> list[float]:
        return [
            getattr(g, attribute)
            for g in self.groups
            if getattr(g, attribute) is not None
        ]

    def _ratio(self, attribute: str) -> float | None:
        rates = self._rates(attribute)
        if len(rates) < 2:
            return None
        top = max(rates)
        if top == 0.0:
            return 1.0
        return min(rates) / top

    @property
    def demographic_parity_ratio(self) -> float | None:
        return self._ratio("positive_rate")

    @property
    def equal_opportunity_ratio(self) -> float | None:
        return self._ratio("true_positive_rate")

    @property
    def predictive_equality_ratio(self) -> float | None:
        return self._ratio("false_positive_rate")

    def violations(self, threshold: float = FOUR_FIFTHS) -> list[str]:
        """Named criteria whose disparity ratio falls below *threshold*."""
        out = []
        for name, value in (
            ("demographic_parity", self.demographic_parity_ratio),
            ("equal_opportunity", self.equal_opportunity_ratio),
            ("predictive_equality", self.predictive_equality_ratio),
        ):
            if value is not None and value < threshold:
                out.append(name)
        return out

    def is_fair(self, threshold: float = FOUR_FIFTHS) -> bool:
        return not self.violations(threshold)

    def summary(self) -> str:
        lines = ["Fairness report (four-fifths threshold):"]
        for g in self.groups:
            tpr = "n/a" if g.true_positive_rate is None else (
                f"{g.true_positive_rate:.3f}"
            )
            fpr = "n/a" if g.false_positive_rate is None else (
                f"{g.false_positive_rate:.3f}"
            )
            lines.append(
                f"  group={g.group!r:<12} n={g.size:<5} "
                f"P(yhat=1)={g.positive_rate:.3f} TPR={tpr} FPR={fpr}"
            )
        for name, value in (
            ("demographic parity", self.demographic_parity_ratio),
            ("equal opportunity", self.equal_opportunity_ratio),
            ("predictive equality", self.predictive_equality_ratio),
        ):
            if value is not None:
                flag = "" if value >= FOUR_FIFTHS else "  <-- VIOLATION"
                lines.append(f"  {name} ratio: {value:.3f}{flag}")
        return "\n".join(lines)


def fairness_report(
    y_true,
    y_pred,
    groups,
    positive=1,
) -> FairnessReport:
    """Group-fairness report for binary predictions.

    *groups* holds the protected-attribute value of each row; *positive* is
    the favourable outcome label.
    """
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    groups = np.asarray(groups).ravel()
    if not (len(y_true) == len(y_pred) == len(groups)):
        raise ModelError("y_true, y_pred and groups must align")
    if len(y_true) == 0:
        raise ModelError("fairness_report needs at least one row")

    report = FairnessReport()
    for group in sorted(set(groups.tolist()), key=repr):
        mask = groups == group
        truth = y_true[mask] == positive
        predicted = y_pred[mask] == positive
        size = int(mask.sum())
        positive_rate = float(predicted.mean())
        positives = int(truth.sum())
        negatives = size - positives
        tpr = (
            float(predicted[truth].mean()) if positives else None
        )
        fpr = (
            float(predicted[~truth].mean()) if negatives else None
        )
        report.groups.append(
            GroupStats(group, size, positive_rate, tpr, fpr)
        )
    return report


def fairness_report_from_sql(
    database,
    table: str,
    model_name: str,
    group_column: str,
    label_column: str,
    positive=1,
    cutoff: float = 0.5,
) -> FairnessReport:
    """Score *table* in the DBMS and audit the predictions for fairness.

    The whole check runs through governed channels: the query is audited,
    PREDICT requires the model privilege, and the report can be stored as
    evidence.
    """
    from flock.errors import BindError

    try:
        # Prefer the calibrated probability output when the model has one
        # (classifier graphs may put the label first).
        result = database.execute(
            f"SELECT {group_column}, {label_column}, "
            f"PREDICT({model_name}) WITH probability AS p FROM {table}"
        )
    except BindError:
        result = database.execute(
            f"SELECT {group_column}, {label_column}, "
            f"PREDICT({model_name}) AS p FROM {table}"
        )
    rows = result.rows()
    groups = [r[0] for r in rows]
    y_true = [r[1] for r in rows]
    y_pred = [positive if r[2] >= cutoff else None for r in rows]
    # Non-positive predictions need a concrete non-positive label:
    negative = 0 if positive == 1 else f"not-{positive}"
    y_pred = [negative if p is None else p for p in y_pred]
    return fairness_report(y_true, y_pred, groups, positive=positive)
