"""Estimator protocol and shared validation helpers."""

from __future__ import annotations

from typing import Any

import numpy as np

from flock.errors import ModelError, NotFittedError


class BaseEstimator:
    """Base class for everything with a ``fit`` method.

    Subclasses set ``self._fitted = True`` at the end of ``fit`` and call
    :meth:`_check_fitted` at the start of ``predict``/``transform``.
    """

    _fitted: bool = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before use"
            )

    def get_params(self) -> dict[str, Any]:
        """Constructor-style hyperparameters (public attributes that do not
        end in an underscore)."""
        return {
            k: v
            for k, v in vars(self).items()
            if not k.startswith("_") and not k.endswith("_")
        }

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


class Transformer(BaseEstimator):
    """Estimators with a ``transform`` method."""

    def transform(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        self.fit(X, y)  # type: ignore[attr-defined]
        return self.transform(X)


def check_2d(X: Any, name: str = "X") -> np.ndarray:
    """Coerce to a 2-D float-capable array; raise ModelError otherwise."""
    arr = np.asarray(X)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ModelError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ModelError(f"{name} has no rows")
    return arr


def check_numeric_2d(X: Any, name: str = "X") -> np.ndarray:
    arr = check_2d(X, name)
    try:
        return arr.astype(np.float64)
    except (TypeError, ValueError):
        raise ModelError(f"{name} must be numeric") from None


def check_consistent(X: np.ndarray, y: np.ndarray) -> None:
    if len(X) != len(y):
        raise ModelError(
            f"X has {len(X)} rows but y has {len(y)} values"
        )


def check_feature_count(estimator: BaseEstimator, X: np.ndarray, expected: int) -> None:
    if X.shape[1] != expected:
        raise ModelError(
            f"{type(estimator).__name__} was fitted with {expected} features "
            f"but got {X.shape[1]}"
        )
