"""flock.ml — a from-scratch, numpy-only ML training library.

The "training framework" substrate of the Flock architecture. Estimators
follow the familiar fit/predict/transform protocol; fitted estimators can be
converted to :mod:`flock.mlgraph` graphs for deployment into the DBMS.
"""

from flock.ml.base import BaseEstimator, Transformer
from flock.ml.ensemble import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from flock.ml.linear import LinearRegression, LogisticRegression, RidgeRegression
from flock.ml.pipeline import ColumnTransformer, Pipeline
from flock.ml.preprocess import (
    MinMaxScaler,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
    TextHasher,
)
from flock.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "ColumnTransformer",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "LinearRegression",
    "LogisticRegression",
    "MinMaxScaler",
    "OneHotEncoder",
    "Pipeline",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "RidgeRegression",
    "SimpleImputer",
    "StandardScaler",
    "TextHasher",
    "Transformer",
]
