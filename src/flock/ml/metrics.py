"""Evaluation metrics for regression and binary classification."""

from __future__ import annotations

import numpy as np

from flock.errors import ModelError


def _as_1d(values) -> np.ndarray:
    arr = np.asarray(values).ravel()
    if arr.size == 0:
        raise ModelError("metric input is empty")
    return arr


def _check_same_length(a: np.ndarray, b: np.ndarray) -> None:
    if len(a) != len(b):
        raise ModelError(f"length mismatch: {len(a)} vs {len(b)}")


# -- regression -----------------------------------------------------------
def mean_squared_error(y_true, y_pred) -> float:
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    _check_same_length(y_true, y_pred)
    return float(np.mean((y_true.astype(float) - y_pred.astype(float)) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred) -> float:
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    _check_same_length(y_true, y_pred)
    return float(np.mean(np.abs(y_true.astype(float) - y_pred.astype(float))))


def r2_score(y_true, y_pred) -> float:
    y_true, y_pred = _as_1d(y_true).astype(float), _as_1d(y_pred).astype(float)
    _check_same_length(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


# -- classification ---------------------------------------------------------
def accuracy_score(y_true, y_pred) -> float:
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    _check_same_length(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_counts(y_true, y_pred, positive) -> tuple[int, int, int, int]:
    """(tp, fp, tn, fn) for the given positive label."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    _check_same_length(y_true, y_pred)
    actual = y_true == positive
    predicted = y_pred == positive
    tp = int(np.sum(actual & predicted))
    fp = int(np.sum(~actual & predicted))
    tn = int(np.sum(~actual & ~predicted))
    fn = int(np.sum(actual & ~predicted))
    return tp, fp, tn, fn


def precision_score(y_true, y_pred, positive=1) -> float:
    tp, fp, _, _ = confusion_counts(y_true, y_pred, positive)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(y_true, y_pred, positive=1) -> float:
    tp, _, _, fn = confusion_counts(y_true, y_pred, positive)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true, y_pred, positive=1) -> float:
    precision = precision_score(y_true, y_pred, positive)
    recall = recall_score(y_true, y_pred, positive)
    if precision + recall == 0.0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def log_loss(y_true, probabilities, eps: float = 1e-12) -> float:
    """Binary cross-entropy; *probabilities* are P(positive class)."""
    y = _as_1d(y_true).astype(float)
    p = np.clip(_as_1d(probabilities).astype(float), eps, 1.0 - eps)
    _check_same_length(y, p)
    return float(-np.mean(y * np.log(p) + (1.0 - y) * np.log(1.0 - p)))


def roc_auc_score(y_true, scores) -> float:
    """AUC via the rank statistic (handles score ties)."""
    y = _as_1d(y_true).astype(float)
    s = _as_1d(scores).astype(float)
    _check_same_length(y, s)
    n_pos = float(np.sum(y == 1))
    n_neg = float(np.sum(y == 0))
    if n_pos == 0 or n_neg == 0:
        raise ModelError("roc_auc_score needs both classes present")
    order = np.argsort(s, kind="stable")
    ranks = np.empty(len(s))
    sorted_scores = s[order]
    # average ranks over ties
    i = 0
    position = 1.0
    while i < len(s):
        j = i
        while j + 1 < len(s) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        average = (position + position + (j - i)) / 2.0
        ranks[order[i : j + 1]] = average
        position += j - i + 1
        i = j + 1
    rank_sum = float(ranks[y == 1].sum())
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def train_test_split(
    X, y, test_fraction: float = 0.25, random_state: int | None = None
):
    """Random split into (X_train, X_test, y_train, y_test)."""
    X = np.asarray(X)
    y = np.asarray(y)
    if not 0.0 < test_fraction < 1.0:
        raise ModelError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(random_state)
    order = rng.permutation(len(X))
    cut = int(round(len(X) * (1.0 - test_fraction)))
    train, test = order[:cut], order[cut:]
    return X[train], X[test], y[train], y[test]
