"""Tree ensembles: random forests and gradient boosting."""

from __future__ import annotations

import numpy as np

from flock.errors import ModelError
from flock.ml.base import (
    BaseEstimator,
    check_consistent,
    check_feature_count,
    check_numeric_2d,
)
from flock.ml.linear import sigmoid
from flock.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, predict_tree


class RandomForestRegressor(BaseEstimator):
    """Bagged regression trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        max_features: str | int | None = "sqrt",
        random_state: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestRegressor":
        X = check_numeric_2d(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        check_consistent(X, y)
        rng = np.random.default_rng(self.random_state)
        n, d = X.shape
        feature_budget = _resolve_max_features(self.max_features, d)
        self.estimators_: list[DecisionTreeRegressor] = []
        for _ in range(self.n_estimators):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=feature_budget,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)
        self.n_features_ = d
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_numeric_2d(X)
        check_feature_count(self, X, self.n_features_)
        preds = np.stack([t.predict(X) for t in self.estimators_])
        return preds.mean(axis=0)


class RandomForestClassifier(BaseEstimator):
    """Bagged classification trees; predicts by averaged probabilities."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        max_features: str | int | None = "sqrt",
        random_state: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        X = check_numeric_2d(X)
        y = np.asarray(y).ravel()
        check_consistent(X, y)
        self.classes_ = np.unique(y)
        rng = np.random.default_rng(self.random_state)
        n, d = X.shape
        feature_budget = _resolve_max_features(self.max_features, d)
        self.estimators_: list[DecisionTreeClassifier] = []
        for _ in range(self.n_estimators):
            sample = rng.integers(0, n, size=n)
            while len(np.unique(y[sample])) < len(self.classes_):
                sample = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=feature_budget,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)
        self.n_features_ = d
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_numeric_2d(X)
        check_feature_count(self, X, self.n_features_)
        probas = np.stack([t.predict_proba(X) for t in self.estimators_])
        return probas.mean(axis=0)

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class GradientBoostingRegressor(BaseEstimator):
    """Gradient boosting on squared loss with shallow regression trees."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        random_state: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state

    def fit(self, X, y) -> "GradientBoostingRegressor":
        X = check_numeric_2d(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        check_consistent(X, y)
        self.init_ = float(y.mean())
        residual = y - self.init_
        self.estimators_: list[DecisionTreeRegressor] = []
        rng = np.random.default_rng(self.random_state)
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X, residual)
            update = tree.predict(X)
            residual = residual - self.learning_rate * update
            self.estimators_.append(tree)
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_numeric_2d(X)
        check_feature_count(self, X, self.n_features_)
        out = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            out += self.learning_rate * predict_tree(tree.tree_, X)[:, 0]
        return out


class GradientBoostingClassifier(BaseEstimator):
    """Binary gradient boosting on logistic loss.

    The additive model produces a log-odds score; ``predict_proba`` applies
    the logistic function. This is the model family used by the Figure 4
    inference benchmark (a GBM over featurized tabular data).
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        random_state: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state

    def fit(self, X, y) -> "GradientBoostingClassifier":
        X = check_numeric_2d(X)
        y = np.asarray(y).ravel()
        check_consistent(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ModelError(
                f"GradientBoostingClassifier is binary; got "
                f"{len(self.classes_)} classes"
            )
        target = (y == self.classes_[1]).astype(np.float64)
        positive_rate = float(np.clip(target.mean(), 1e-6, 1 - 1e-6))
        self.init_ = float(np.log(positive_rate / (1.0 - positive_rate)))
        score = np.full(X.shape[0], self.init_)
        self.estimators_: list[DecisionTreeRegressor] = []
        rng = np.random.default_rng(self.random_state)
        for _ in range(self.n_estimators):
            gradient = target - sigmoid(score)  # negative gradient of logloss
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X, gradient)
            score = score + self.learning_rate * tree.predict(X)
            self.estimators_.append(tree)
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_numeric_2d(X)
        check_feature_count(self, X, self.n_features_)
        score = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            score += self.learning_rate * predict_tree(tree.tree_, X)[:, 0]
        return score

    def predict_proba(self, X) -> np.ndarray:
        p1 = sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        p1 = sigmoid(self.decision_function(X))
        return np.where(p1 >= 0.5, self.classes_[1], self.classes_[0])


def _resolve_max_features(spec: str | int | None, n_features: int) -> int | None:
    if spec is None:
        return None
    if spec == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if spec == "log2":
        return max(1, int(np.log2(n_features)))
    if isinstance(spec, int):
        if spec <= 0:
            raise ModelError("max_features must be positive")
        return min(spec, n_features)
    raise ModelError(f"unknown max_features spec {spec!r}")
