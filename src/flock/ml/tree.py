"""CART decision trees (regression and binary/multiclass classification)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from flock.errors import ModelError
from flock.ml.base import (
    BaseEstimator,
    check_consistent,
    check_feature_count,
    check_numeric_2d,
)


@dataclass
class TreeNode:
    """One node of a fitted tree.

    Internal nodes carry ``feature``/``threshold`` (go left when
    ``x[feature] <= threshold``); leaves carry ``value`` (the mean target
    for regression, class-probability vector for classification).
    """

    feature: int = -1
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    value: Optional[np.ndarray] = None
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())

    def node_count(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + self.left.node_count() + self.right.node_count()

    def used_features(self) -> set[int]:
        """Indexes of every feature this subtree actually splits on —
        the tree-model half of the sparsity analysis used for input
        column pruning in the inference optimizer."""
        if self.is_leaf:
            return set()
        assert self.left is not None and self.right is not None
        return {self.feature} | self.left.used_features() | self.right.used_features()


class _TreeBuilder:
    """Greedy best-first CART builder shared by both tree estimators."""

    def __init__(
        self,
        criterion: str,
        max_depth: int,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: int | None,
        rng: np.random.Generator,
    ):
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng

    def build(self, X: np.ndarray, y: np.ndarray, n_classes: int) -> TreeNode:
        return self._grow(X, y, n_classes, depth=0)

    def _leaf_value(self, y: np.ndarray, n_classes: int) -> np.ndarray:
        if self.criterion == "mse":
            return np.array([float(y.mean())])
        counts = np.bincount(y.astype(np.int64), minlength=n_classes)
        return counts / counts.sum()

    def _impurity_reduction(
        self, y: np.ndarray, order: np.ndarray, n_classes: int
    ) -> tuple[float, int] | None:
        """Best split position for one sorted feature (gain, split_index)."""
        n = len(y)
        sorted_y = y[order]
        min_leaf = self.min_samples_leaf
        if self.criterion == "mse":
            prefix = np.cumsum(sorted_y)
            total = prefix[-1]
            prefix_sq = np.cumsum(sorted_y**2)
            total_sq = prefix_sq[-1]
            counts = np.arange(1, n)
            left_sum = prefix[:-1]
            left_sq = prefix_sq[:-1]
            right_sum = total - left_sum
            right_sq = total_sq - left_sq
            left_var = left_sq - left_sum**2 / counts
            right_var = right_sq - right_sum**2 / (n - counts)
            parent_var = total_sq - total**2 / n
            gains = parent_var - (left_var + right_var)
        else:  # gini
            one_hot = np.zeros((n, n_classes))
            one_hot[np.arange(n), sorted_y.astype(np.int64)] = 1.0
            prefix = np.cumsum(one_hot, axis=0)
            total = prefix[-1]
            counts = np.arange(1, n, dtype=np.float64)
            left_counts = prefix[:-1]
            right_counts = total - left_counts
            left_gini = counts - (left_counts**2).sum(axis=1) / counts
            right_gini = (n - counts) - (right_counts**2).sum(axis=1) / (n - counts)
            parent_gini = n - float((total**2).sum()) / n
            gains = parent_gini - (left_gini + right_gini)
        # A split is only valid between distinct feature values and when both
        # sides satisfy min_samples_leaf; the caller checks value ties.
        positions = np.arange(1, n)
        valid = (positions >= min_leaf) & (n - positions >= min_leaf)
        if not valid.any():
            return None
        gains = np.where(valid, gains, -np.inf)
        best = int(np.argmax(gains))
        if not np.isfinite(gains[best]) or gains[best] <= 1e-12:
            return None
        return float(gains[best]), best + 1

    def _grow(
        self, X: np.ndarray, y: np.ndarray, n_classes: int, depth: int
    ) -> TreeNode:
        node = TreeNode(value=self._leaf_value(y, n_classes), n_samples=len(y))
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or _is_pure(y, self.criterion)
        ):
            return node

        n_features = X.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            candidates = self.rng.choice(
                n_features, size=self.max_features, replace=False
            )
        else:
            candidates = np.arange(n_features)

        best_gain = 0.0
        best_feature = -1
        best_threshold = 0.0
        for j in candidates:
            column = X[:, j]
            order = np.argsort(column, kind="stable")
            result = self._impurity_reduction(y, order, n_classes)
            if result is None:
                continue
            gain, split = result
            sorted_col = column[order]
            # Move the split to a boundary between distinct values.
            while split < len(y) and sorted_col[split] == sorted_col[split - 1]:
                split += 1
            if split >= len(y):
                continue
            if gain > best_gain:
                best_gain = gain
                best_feature = int(j)
                best_threshold = float(
                    (sorted_col[split - 1] + sorted_col[split]) / 2.0
                )

        if best_feature < 0:
            return node

        go_left = X[:, best_feature] <= best_threshold
        if not go_left.any() or go_left.all():
            return node
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._grow(X[go_left], y[go_left], n_classes, depth + 1)
        node.right = self._grow(X[~go_left], y[~go_left], n_classes, depth + 1)
        return node


def _is_pure(y: np.ndarray, criterion: str) -> bool:
    if criterion == "mse":
        return bool(np.all(y == y[0]))
    return len(np.unique(y)) == 1


def predict_tree(root: TreeNode, X: np.ndarray) -> np.ndarray:
    """Vectorized tree evaluation: route row blocks down the tree."""
    first_value = root.value
    assert first_value is not None
    out = np.zeros((X.shape[0], len(first_value)))
    stack: list[tuple[TreeNode, np.ndarray]] = [
        (root, np.arange(X.shape[0], dtype=np.int64))
    ]
    while stack:
        node, rows = stack.pop()
        if len(rows) == 0:
            continue
        if node.is_leaf:
            assert node.value is not None
            out[rows] = node.value
            continue
        assert node.left is not None and node.right is not None
        go_left = X[rows, node.feature] <= node.threshold
        stack.append((node.left, rows[go_left]))
        stack.append((node.right, rows[~go_left]))
    return out


class DecisionTreeRegressor(BaseEstimator):
    """CART regression tree (variance reduction)."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = check_numeric_2d(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        check_consistent(X, y)
        builder = _TreeBuilder(
            "mse",
            self.max_depth,
            self.min_samples_split,
            self.min_samples_leaf,
            self.max_features,
            np.random.default_rng(self.random_state),
        )
        self.tree_ = builder.build(X, y, n_classes=1)
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_numeric_2d(X)
        check_feature_count(self, X, self.n_features_)
        return predict_tree(self.tree_, X)[:, 0]


class DecisionTreeClassifier(BaseEstimator):
    """CART classification tree (gini impurity)."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X = check_numeric_2d(X)
        y = np.asarray(y).ravel()
        check_consistent(X, y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        if len(self.classes_) < 2:
            raise ModelError("need at least two classes")
        builder = _TreeBuilder(
            "gini",
            self.max_depth,
            self.min_samples_split,
            self.min_samples_leaf,
            self.max_features,
            np.random.default_rng(self.random_state),
        )
        self.tree_ = builder.build(X, encoded, n_classes=len(self.classes_))
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_numeric_2d(X)
        check_feature_count(self, X, self.n_features_)
        return predict_tree(self.tree_, X)

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
