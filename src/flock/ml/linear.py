"""Linear models: least squares, ridge and logistic regression."""

from __future__ import annotations

import numpy as np

from flock.errors import ModelError
from flock.ml.base import (
    BaseEstimator,
    check_consistent,
    check_feature_count,
    check_numeric_2d,
)


class LinearRegression(BaseEstimator):
    """Ordinary least squares via the normal equations (with lstsq fallback)."""

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "LinearRegression":
        X = check_numeric_2d(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        check_consistent(X, y)
        design = self._design(X)
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_numeric_2d(X)
        check_feature_count(self, X, self.n_features_)
        return X @ self.coef_ + self.intercept_

    def _design(self, X: np.ndarray) -> np.ndarray:
        if not self.fit_intercept:
            return X
        return np.hstack([np.ones((X.shape[0], 1)), X])


class RidgeRegression(BaseEstimator):
    """L2-regularized least squares (closed form)."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        if alpha < 0:
            raise ModelError("alpha must be non-negative")
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "RidgeRegression":
        X = check_numeric_2d(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        check_consistent(X, y)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        gram = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_numeric_2d(X)
        check_feature_count(self, X, self.n_features_)
        return X @ self.coef_ + self.intercept_


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression(BaseEstimator):
    """Binary logistic regression trained with full-batch gradient descent.

    Supports L2 regularization and L1 via proximal (soft-threshold) steps —
    L1 produces the *sparse* models whose zero weights drive the inference
    layer's input-column pruning.
    """

    def __init__(
        self,
        learning_rate: float = 0.1,
        max_iter: int = 500,
        tol: float = 1e-6,
        l2: float = 0.0,
        l1: float = 0.0,
        fit_intercept: bool = True,
    ):
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.l2 = l2
        self.l1 = l1
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "LogisticRegression":
        X = check_numeric_2d(X)
        y = np.asarray(y).ravel()
        check_consistent(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ModelError(
                f"LogisticRegression is binary; got {len(self.classes_)} classes"
            )
        target = (y == self.classes_[1]).astype(np.float64)

        n, d = X.shape
        weights = np.zeros(d)
        intercept = 0.0
        step = self.learning_rate
        for _ in range(self.max_iter):
            z = X @ weights + intercept
            error = sigmoid(z) - target
            grad_w = X.T @ error / n + self.l2 * weights
            grad_b = float(error.mean())
            new_weights = weights - step * grad_w
            if self.l1 > 0.0:
                shrink = step * self.l1
                new_weights = np.sign(new_weights) * np.maximum(
                    np.abs(new_weights) - shrink, 0.0
                )
            new_intercept = intercept - step * grad_b if self.fit_intercept else 0.0
            delta = np.abs(new_weights - weights).max() if d else 0.0
            weights, intercept = new_weights, new_intercept
            if delta < self.tol:
                break
        self.coef_ = weights
        self.intercept_ = intercept
        self.n_features_ = d
        self._fitted = True
        return self

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_numeric_2d(X)
        check_feature_count(self, X, self.n_features_)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """``(n, 2)`` array of [P(class0), P(class1)]."""
        p1 = sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        p1 = sigmoid(self.decision_function(X))
        return np.where(p1 >= 0.5, self.classes_[1], self.classes_[0])
