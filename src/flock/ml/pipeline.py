"""Pipelines: chained transformers ending in an estimator.

A fitted :class:`Pipeline` is exactly the "inference pipeline" the paper
deploys: featurizers + model, packaged as one unit so the training-time and
scoring-time behaviour cannot drift apart.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from flock.errors import ModelError
from flock.ml.base import BaseEstimator, Transformer, check_2d


class Pipeline(BaseEstimator):
    """``[(name, transformer), ..., (name, estimator)]``."""

    def __init__(self, steps: Sequence[tuple[str, BaseEstimator]]):
        if not steps:
            raise ModelError("a pipeline needs at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ModelError("pipeline step names must be unique")
        for name, step in steps[:-1]:
            if not isinstance(step, Transformer):
                raise ModelError(
                    f"intermediate step {name!r} must be a Transformer"
                )
        self.steps = list(steps)

    @property
    def named_steps(self) -> dict[str, BaseEstimator]:
        return dict(self.steps)

    @property
    def final_estimator(self) -> BaseEstimator:
        return self.steps[-1][1]

    def fit(self, X, y=None) -> "Pipeline":
        data = X
        for _, step in self.steps[:-1]:
            data = step.fit_transform(data, y)  # type: ignore[union-attr]
        self.final_estimator.fit(data, y)  # type: ignore[call-arg]
        self._fitted = True
        return self

    def _transform_through(self, X) -> Any:
        data = X
        for _, step in self.steps[:-1]:
            data = step.transform(data)  # type: ignore[union-attr]
        return data

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        return self.final_estimator.predict(self._transform_through(X))  # type: ignore[attr-defined]

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        estimator = self.final_estimator
        if not hasattr(estimator, "predict_proba"):
            raise ModelError(
                f"{type(estimator).__name__} does not expose predict_proba"
            )
        return estimator.predict_proba(self._transform_through(X))  # type: ignore[attr-defined]

    def transform(self, X) -> Any:
        self._check_fitted()
        data = self._transform_through(X)
        estimator = self.final_estimator
        if isinstance(estimator, Transformer):
            return estimator.transform(data)
        return data


class ColumnTransformer(Transformer):
    """Apply different transformers to different column blocks.

    ``transformers`` is ``[(name, transformer, column_indexes)]``; outputs
    are horizontally concatenated in declaration order. Columns not named by
    any transformer are dropped (matching the deployment-safe default: a
    model only sees features it was trained on).
    """

    def __init__(
        self,
        transformers: Sequence[tuple[str, Transformer, Sequence[int]]],
    ):
        if not transformers:
            raise ModelError("ColumnTransformer needs at least one block")
        self.transformers = list(transformers)

    def fit(self, X, y=None) -> "ColumnTransformer":
        X = check_2d(X)
        for name, transformer, columns in self.transformers:
            block = X[:, list(columns)]
            transformer.fit(block, y)
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_2d(X)
        outputs = []
        for name, transformer, columns in self.transformers:
            block = X[:, list(columns)]
            outputs.append(np.asarray(transformer.transform(block), dtype=np.float64))
        return np.hstack(outputs)

    def output_width(self) -> int:
        """Total number of output features after transformation."""
        self._check_fitted()
        total = 0
        for _, transformer, columns in self.transformers:
            if hasattr(transformer, "n_output_features_"):
                total += transformer.n_output_features_
            elif hasattr(transformer, "n_buckets"):
                total += transformer.n_buckets * len(list(columns))
            else:
                total += len(list(columns))
        return total
