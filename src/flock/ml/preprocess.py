"""Feature preprocessing: scalers, encoders, imputation and text hashing.

These are the "featurizers" of the paper's end-to-end prediction pipelines
("featurizers such as text encoding", §4.1). All of them convert to
:mod:`flock.mlgraph` operators for in-DBMS deployment.
"""

from __future__ import annotations

import numpy as np

from flock.errors import ModelError
from flock.ml.base import Transformer, check_2d, check_feature_count, check_numeric_2d


class StandardScaler(Transformer):
    """Zero-mean, unit-variance scaling per feature."""

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None) -> "StandardScaler":
        X = check_numeric_2d(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_numeric_2d(X)
        check_feature_count(self, X, self.n_features_)
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_numeric_2d(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler(Transformer):
    """Scale each feature into [0, 1] based on the training range."""

    def fit(self, X, y=None) -> "MinMaxScaler":
        X = check_numeric_2d(X)
        self.min_ = X.min(axis=0)
        data_range = X.max(axis=0) - self.min_
        data_range[data_range == 0.0] = 1.0
        self.range_ = data_range
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_numeric_2d(X)
        check_feature_count(self, X, self.n_features_)
        return (X - self.min_) / self.range_


class SimpleImputer(Transformer):
    """Replace NaNs with the per-feature mean, median or a constant."""

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0):
        if strategy not in ("mean", "median", "constant"):
            raise ModelError(f"unknown imputation strategy {strategy!r}")
        self.strategy = strategy
        self.fill_value = fill_value

    def fit(self, X, y=None) -> "SimpleImputer":
        X = check_numeric_2d(X)
        if self.strategy == "constant":
            self.statistics_ = np.full(X.shape[1], self.fill_value)
        else:
            import warnings

            reducer = np.nanmean if self.strategy == "mean" else np.nanmedian
            with warnings.catch_warnings():
                # All-NaN columns legitimately fall back to fill_value.
                warnings.simplefilter("ignore", RuntimeWarning)
                stats = reducer(X, axis=0)
            stats = np.where(np.isnan(stats), self.fill_value, stats)
            self.statistics_ = stats
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_numeric_2d(X).copy()
        check_feature_count(self, X, self.n_features_)
        mask = np.isnan(X)
        if mask.any():
            X[mask] = np.take(self.statistics_, np.nonzero(mask)[1])
        return X


class OneHotEncoder(Transformer):
    """Dense one-hot encoding of categorical columns.

    Unknown categories at transform time map to the all-zeros vector
    (``handle_unknown='ignore'`` behaviour), which is what a deployed
    inference pipeline needs to never fail on fresh data.
    """

    def fit(self, X, y=None) -> "OneHotEncoder":
        X = check_2d(X)
        self.categories_: list[np.ndarray] = []
        for j in range(X.shape[1]):
            column = X[:, j]
            values = sorted({v for v in column.tolist() if v is not None})
            self.categories_.append(np.array(values, dtype=object))
        self.n_features_ = X.shape[1]
        self.n_output_features_ = sum(len(c) for c in self.categories_)
        self._fitted = True
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_2d(X)
        check_feature_count(self, X, self.n_features_)
        out = np.zeros((X.shape[0], self.n_output_features_), dtype=np.float64)
        offset = 0
        for j, categories in enumerate(self.categories_):
            index = {v: k for k, v in enumerate(categories.tolist())}
            column = X[:, j]
            for i, v in enumerate(column.tolist()):
                k = index.get(v)
                if k is not None:
                    out[i, offset + k] = 1.0
            offset += len(categories)
        return out

    def output_names(self, input_names: list[str] | None = None) -> list[str]:
        """Readable names of the one-hot output columns."""
        self._check_fitted()
        names = []
        for j, categories in enumerate(self.categories_):
            prefix = input_names[j] if input_names else f"x{j}"
            names.extend(f"{prefix}={c}" for c in categories.tolist())
        return names


class TextHasher(Transformer):
    """Feature hashing for text: token → bucket via a stable hash.

    A deterministic stand-in for bag-of-words/TF-IDF vectorizers; the same
    hashing runs inside the DBMS via the mlgraph ``text_hash`` operator.
    """

    def __init__(self, n_buckets: int = 64, lowercase: bool = True):
        if n_buckets <= 0:
            raise ModelError("n_buckets must be positive")
        self.n_buckets = n_buckets
        self.lowercase = lowercase

    def fit(self, X, y=None) -> "TextHasher":
        self._fitted = True
        return self

    @staticmethod
    def _hash_token(token: str) -> int:
        # FNV-1a: stable across processes (unlike builtin hash()).
        value = 2166136261
        for byte in token.encode("utf-8"):
            value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
        return value

    def transform(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_2d(X)
        out = np.zeros((X.shape[0], self.n_buckets), dtype=np.float64)
        for i in range(X.shape[0]):
            for j in range(X.shape[1]):
                text = X[i, j]
                if text is None:
                    continue
                text = str(text)
                if self.lowercase:
                    text = text.lower()
                for token in text.split():
                    out[i, self._hash_token(token) % self.n_buckets] += 1.0
        return out
