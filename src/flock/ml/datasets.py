"""Synthetic dataset generators.

These supply the enterprise workloads the paper's introduction motivates
(loan approval, patient recidivism, job resource prediction) plus generic
classification/regression generators for tests and benchmarks. Every
generator is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from flock.errors import ModelError
from flock.ml.linear import sigmoid


def make_regression(
    n_samples: int = 200,
    n_features: int = 5,
    n_informative: int | None = None,
    noise: float = 0.1,
    random_state: int | None = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Linear data with optional uninformative features.

    Returns (X, y, true_coefficients); uninformative features have exactly
    zero coefficient — handy for testing sparsity-driven column pruning.
    """
    if n_samples <= 0 or n_features <= 0:
        raise ModelError("n_samples and n_features must be positive")
    rng = np.random.default_rng(random_state)
    informative = n_informative if n_informative is not None else n_features
    informative = min(informative, n_features)
    X = rng.normal(size=(n_samples, n_features))
    coef = np.zeros(n_features)
    coef[:informative] = rng.uniform(0.5, 2.0, size=informative) * rng.choice(
        [-1.0, 1.0], size=informative
    )
    y = X @ coef + rng.normal(scale=noise, size=n_samples)
    return X, y, coef


def make_classification(
    n_samples: int = 200,
    n_features: int = 5,
    n_informative: int | None = None,
    class_sep: float = 1.5,
    random_state: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Binary classification with a logistic ground truth."""
    X, score, _ = make_regression(
        n_samples,
        n_features,
        n_informative,
        noise=0.0,
        random_state=random_state,
    )
    rng = np.random.default_rng(None if random_state is None else random_state + 1)
    probability = sigmoid(class_sep * score)
    y = (rng.uniform(size=n_samples) < probability).astype(np.int64)
    return X, y


@dataclass(frozen=True)
class TabularDataset:
    """A named tabular dataset with typed columns, ready to load into the DB.

    ``columns`` maps name → ("INTEGER"|"FLOAT"|"TEXT", list of values);
    ``feature_names`` and ``target`` identify the learning task.
    """

    name: str
    columns: dict[str, tuple[str, list]]
    feature_names: list[str]
    target: str

    @property
    def n_rows(self) -> int:
        first = next(iter(self.columns.values()))
        return len(first[1])

    def feature_matrix(self) -> np.ndarray:
        """Numeric features as a float matrix (TEXT features are excluded)."""
        arrays = []
        for name in self.feature_names:
            type_name, values = self.columns[name]
            if type_name == "TEXT":
                continue
            arrays.append(np.asarray(values, dtype=np.float64))
        return np.column_stack(arrays)

    def target_vector(self) -> np.ndarray:
        return np.asarray(self.columns[self.target][1])

    def create_table_sql(self, table_name: str | None = None) -> str:
        table = table_name or self.name
        parts = ", ".join(
            f"{name} {type_name}" for name, (type_name, _) in self.columns.items()
        )
        return f"CREATE TABLE {table} ({parts})"

    def insert_rows(self) -> list[tuple]:
        names = list(self.columns)
        pylists = [self.columns[n][1] for n in names]
        return list(zip(*pylists))


def make_loans(n_samples: int = 500, random_state: int = 0) -> TabularDataset:
    """Loan-approval data (the paper's financial-institution scenario)."""
    rng = np.random.default_rng(random_state)
    income = rng.lognormal(mean=10.8, sigma=0.5, size=n_samples)
    credit_score = rng.normal(680, 70, size=n_samples).clip(300, 850)
    loan_amount = rng.lognormal(mean=10.0, sigma=0.7, size=n_samples)
    debt_ratio = (loan_amount / income).clip(0, 10)
    years_employed = rng.integers(0, 35, size=n_samples).astype(np.float64)
    score = (
        0.01 * (credit_score - 680)
        + 0.9 * (np.log(income) - 10.8)
        - 0.8 * (debt_ratio - debt_ratio.mean())
        + 0.03 * years_employed
    )
    approved = (rng.uniform(size=n_samples) < sigmoid(2.0 * score)).astype(int)
    regions = rng.choice(["north", "south", "east", "west"], size=n_samples)
    return TabularDataset(
        name="loans",
        columns={
            "applicant_id": ("INTEGER", list(range(1, n_samples + 1))),
            "income": ("FLOAT", [float(v) for v in income.round(2)]),
            "credit_score": ("FLOAT", [float(v) for v in credit_score.round(1)]),
            "loan_amount": ("FLOAT", [float(v) for v in loan_amount.round(2)]),
            "debt_ratio": ("FLOAT", [float(v) for v in debt_ratio.round(4)]),
            "years_employed": ("FLOAT", [float(v) for v in years_employed]),
            "region": ("TEXT", [str(r) for r in regions]),
            "approved": ("INTEGER", [int(v) for v in approved]),
        },
        feature_names=[
            "income",
            "credit_score",
            "loan_amount",
            "debt_ratio",
            "years_employed",
        ],
        target="approved",
    )


def make_patients(n_samples: int = 500, random_state: int = 1) -> TabularDataset:
    """Patient-readmission data (the paper's health-insurance scenario)."""
    rng = np.random.default_rng(random_state)
    age = rng.integers(18, 95, size=n_samples).astype(np.float64)
    prior_admissions = rng.poisson(1.2, size=n_samples).astype(np.float64)
    length_of_stay = rng.gamma(2.0, 2.5, size=n_samples).round(1)
    chronic_conditions = rng.integers(0, 7, size=n_samples).astype(np.float64)
    medication_count = (
        chronic_conditions * 2 + rng.poisson(2.0, size=n_samples)
    ).astype(np.float64)
    score = (
        0.02 * (age - 55)
        + 0.5 * prior_admissions
        + 0.08 * (length_of_stay - 5)
        + 0.3 * chronic_conditions
        - 2.0
    )
    readmitted = (rng.uniform(size=n_samples) < sigmoid(score)).astype(int)
    wards = rng.choice(["cardiology", "oncology", "general", "ortho"], size=n_samples)
    return TabularDataset(
        name="patients",
        columns={
            "patient_id": ("INTEGER", list(range(1, n_samples + 1))),
            "age": ("FLOAT", [float(v) for v in age]),
            "prior_admissions": ("FLOAT", [float(v) for v in prior_admissions]),
            "length_of_stay": ("FLOAT", [float(v) for v in length_of_stay]),
            "chronic_conditions": ("FLOAT", [float(v) for v in chronic_conditions]),
            "medication_count": ("FLOAT", [float(v) for v in medication_count]),
            "ward": ("TEXT", [str(w) for w in wards]),
            "readmitted": ("INTEGER", [int(v) for v in readmitted]),
        },
        feature_names=[
            "age",
            "prior_admissions",
            "length_of_stay",
            "chronic_conditions",
            "medication_count",
        ],
        target="readmitted",
    )


def make_bigdata_jobs(n_samples: int = 400, random_state: int = 2) -> TabularDataset:
    """Big-data job telemetry for parallelism prediction (the Cosmos
    scenario of §4.1: predict tokens/parallelism, cap with business rules).
    """
    rng = np.random.default_rng(random_state)
    input_gb = rng.lognormal(mean=4.0, sigma=1.2, size=n_samples)
    operator_count = rng.integers(3, 120, size=n_samples).astype(np.float64)
    stage_count = rng.integers(1, 24, size=n_samples).astype(np.float64)
    historical_runtime = rng.lognormal(mean=6.0, sigma=0.8, size=n_samples)
    best_parallelism = (
        0.8 * np.sqrt(input_gb)
        + 0.3 * stage_count
        + 0.05 * operator_count
        + rng.normal(scale=2.0, size=n_samples)
    ).clip(1, None)
    return TabularDataset(
        name="bigdata_jobs",
        columns={
            "job_id": ("INTEGER", list(range(1, n_samples + 1))),
            "input_gb": ("FLOAT", [float(v) for v in input_gb.round(2)]),
            "operator_count": ("FLOAT", [float(v) for v in operator_count]),
            "stage_count": ("FLOAT", [float(v) for v in stage_count]),
            "historical_runtime": (
                "FLOAT",
                [float(v) for v in historical_runtime.round(1)],
            ),
            "best_parallelism": (
                "FLOAT",
                [float(v) for v in best_parallelism.round(1)],
            ),
        },
        feature_names=[
            "input_gb",
            "operator_count",
            "stage_count",
            "historical_runtime",
        ],
        target="best_parallelism",
    )


def load_dataset_into(database, dataset: TabularDataset, table_name: str | None = None):
    """Create and populate a table in *database* from a TabularDataset."""
    table = table_name or dataset.name
    database.execute(dataset.create_table_sql(table))
    rows = dataset.insert_rows()
    chunk = 500
    for start in range(0, len(rows), chunk):
        values = ", ".join(
            "(" + ", ".join(_sql_literal(v) for v in row) + ")"
            for row in rows[start : start + chunk]
        )
        database.execute(f"INSERT INTO {table} VALUES {values}")
    return table


def _sql_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return repr(value)
