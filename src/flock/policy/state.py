"""Decision and action history.

"It also maintains the system state and actions taken over time allowing to
easily debug and explain the system's actions" (§4.1): every decision keeps
the raw model output, the chain of policy outcomes that transformed it, and
the final action's result — so :meth:`SystemState.explain` reconstructs why
the application did what it did.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any

from flock.errors import PolicyError
from flock.policy.rules import PolicyOutcome


@dataclass(frozen=True)
class Decision:
    """The result of running model output through the policy chain."""

    decision_id: int
    model_name: str
    raw_value: Any
    final_value: Any
    vetoed: bool
    outcomes: tuple[PolicyOutcome, ...]
    context: dict[str, Any]
    timestamp: float

    @property
    def overridden(self) -> bool:
        return any(o.applied for o in self.outcomes)

    @property
    def applied_policies(self) -> list[str]:
        return [o.policy_name for o in self.outcomes if o.applied]


@dataclass(frozen=True)
class ActionRecord:
    """One attempted application-domain action for a decision."""

    decision_id: int
    status: str  # 'committed' | 'rolled_back' | 'skipped_veto'
    detail: str
    timestamp: float


class SystemState:
    """Thread-safe store of decisions and actions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._decisions: list[Decision] = []
        self._actions: list[ActionRecord] = []
        self._ids = itertools.count(1)

    def next_decision_id(self) -> int:
        return next(self._ids)

    def record_decision(self, decision: Decision) -> None:
        with self._lock:
            self._decisions.append(decision)

    def record_action(
        self, decision_id: int, status: str, detail: str = ""
    ) -> ActionRecord:
        record = ActionRecord(decision_id, status, detail, time.time())
        with self._lock:
            self._actions.append(record)
        return record

    # ------------------------------------------------------------------
    def decisions(
        self,
        model_name: str | None = None,
        overridden_only: bool = False,
        vetoed_only: bool = False,
    ) -> list[Decision]:
        with self._lock:
            snapshot = list(self._decisions)
        out = []
        for d in snapshot:
            if model_name is not None and d.model_name != model_name:
                continue
            if overridden_only and not d.overridden:
                continue
            if vetoed_only and not d.vetoed:
                continue
            out.append(d)
        return out

    def actions(self, decision_id: int | None = None) -> list[ActionRecord]:
        with self._lock:
            snapshot = list(self._actions)
        if decision_id is None:
            return snapshot
        return [a for a in snapshot if a.decision_id == decision_id]

    def decision(self, decision_id: int) -> Decision:
        with self._lock:
            for d in self._decisions:
                if d.decision_id == decision_id:
                    return d
        raise PolicyError(f"unknown decision {decision_id}")

    def explain(self, decision_id: int) -> str:
        """A human-readable trace: model output → policies → final action."""
        decision = self.decision(decision_id)
        lines = [
            f"decision {decision.decision_id} (model={decision.model_name})",
            f"  raw model output: {decision.raw_value!r}",
        ]
        for outcome in decision.outcomes:
            if outcome.applied:
                verdict = "VETO" if outcome.vetoed else f"-> {outcome.value!r}"
                lines.append(
                    f"  policy {outcome.policy_name}: {verdict} ({outcome.reason})"
                )
            else:
                lines.append(f"  policy {outcome.policy_name}: pass")
        lines.append(
            f"  final: {'VETOED' if decision.vetoed else repr(decision.final_value)}"
        )
        for action in self.actions(decision.decision_id):
            lines.append(f"  action: {action.status} {action.detail}".rstrip())
        return "\n".join(lines)

    def override_rate(self, model_name: str | None = None) -> float:
        decisions = self.decisions(model_name)
        if not decisions:
            return 0.0
        return sum(1 for d in decisions if d.overridden) / len(decisions)
