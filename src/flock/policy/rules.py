"""User-defined policies over model outputs.

A policy inspects a *decision context* — the model's raw prediction plus any
application attributes — and may adjust or veto the value. Policies compose
by priority; each records a human-readable reason so every final decision is
explainable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from flock.errors import PolicyError


@dataclass(frozen=True)
class PolicyOutcome:
    """What one policy did to a proposed value."""

    policy_name: str
    applied: bool
    value: Any
    vetoed: bool = False
    reason: str = ""


class Policy:
    """Base class: override :meth:`apply`.

    ``priority`` orders application (lower runs first); the value each
    policy sees is the output of the previous one.
    """

    def __init__(self, name: str, priority: int = 100):
        if not name:
            raise PolicyError("policy needs a name")
        self.name = name
        self.priority = priority

    def apply(self, value: Any, context: Mapping[str, Any]) -> PolicyOutcome:
        raise NotImplementedError

    def _pass(self, value: Any) -> PolicyOutcome:
        return PolicyOutcome(self.name, applied=False, value=value)


class CapPolicy(Policy):
    """Clamp a numeric prediction to an upper bound.

    The paper's concrete example: models "occasionally predict resource
    requirements in excess of the amounts allowed by user-specified caps.
    Business rules expressed as policies then override the model."
    The bound may be a constant or computed from the context (e.g. a
    per-customer cap).
    """

    def __init__(
        self,
        name: str,
        maximum: float | Callable[[Mapping[str, Any]], float],
        priority: int = 50,
    ):
        super().__init__(name, priority)
        self.maximum = maximum

    def apply(self, value: Any, context: Mapping[str, Any]) -> PolicyOutcome:
        bound = (
            self.maximum(context) if callable(self.maximum) else self.maximum
        )
        if value is None or value <= bound:
            return self._pass(value)
        return PolicyOutcome(
            self.name,
            applied=True,
            value=bound,
            reason=f"capped {value} to {bound}",
        )


class FloorPolicy(Policy):
    """Clamp a numeric prediction to a lower bound."""

    def __init__(
        self,
        name: str,
        minimum: float | Callable[[Mapping[str, Any]], float],
        priority: int = 50,
    ):
        super().__init__(name, priority)
        self.minimum = minimum

    def apply(self, value: Any, context: Mapping[str, Any]) -> PolicyOutcome:
        bound = (
            self.minimum(context) if callable(self.minimum) else self.minimum
        )
        if value is None or value >= bound:
            return self._pass(value)
        return PolicyOutcome(
            self.name,
            applied=True,
            value=bound,
            reason=f"raised {value} to {bound}",
        )


class OverridePolicy(Policy):
    """Replace the value when a condition over the context holds."""

    def __init__(
        self,
        name: str,
        condition: Callable[[Any, Mapping[str, Any]], bool],
        replacement: Any | Callable[[Any, Mapping[str, Any]], Any],
        reason: str = "",
        priority: int = 60,
    ):
        super().__init__(name, priority)
        self.condition = condition
        self.replacement = replacement
        self.reason = reason

    def apply(self, value: Any, context: Mapping[str, Any]) -> PolicyOutcome:
        if not self.condition(value, context):
            return self._pass(value)
        new_value = (
            self.replacement(value, context)
            if callable(self.replacement)
            else self.replacement
        )
        return PolicyOutcome(
            self.name,
            applied=True,
            value=new_value,
            reason=self.reason or f"override {value!r} -> {new_value!r}",
        )


class VetoPolicy(Policy):
    """Block the action entirely when a condition holds.

    Vetoed decisions never reach the application; the engine records them
    for audit/debugging ("automate it, and don't get me sued", §3).
    """

    def __init__(
        self,
        name: str,
        condition: Callable[[Any, Mapping[str, Any]], bool],
        reason: str = "",
        priority: int = 10,
    ):
        super().__init__(name, priority)
        self.condition = condition
        self.reason = reason

    def apply(self, value: Any, context: Mapping[str, Any]) -> PolicyOutcome:
        if not self.condition(value, context):
            return self._pass(value)
        return PolicyOutcome(
            self.name,
            applied=True,
            value=value,
            vetoed=True,
            reason=self.reason or "vetoed by policy",
        )


class LambdaPolicy(Policy):
    """Fully custom policy from a callable (for tests and power users)."""

    def __init__(
        self,
        name: str,
        fn: Callable[[Any, Mapping[str, Any]], PolicyOutcome],
        priority: int = 100,
    ):
        super().__init__(name, priority)
        self.fn = fn

    def apply(self, value: Any, context: Mapping[str, Any]) -> PolicyOutcome:
        return self.fn(value, context)
