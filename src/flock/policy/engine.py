"""The policy engine: monitor → apply policies → act transactionally."""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping

from flock.errors import PolicyError
from flock.policy.rules import Policy, PolicyOutcome
from flock.policy.state import Decision, SystemState


class PolicyEngine:
    """Applies an ordered policy chain to model outputs and executes the
    resulting actions transactionally.

    The engine is generic and extensible (the paper's [28]-style module):
    policies are user-defined objects, the decision context is an arbitrary
    mapping of application attributes, and actions are callables (optionally
    paired with compensations) or DBMS transactions.
    """

    def __init__(
        self,
        policies: list[Policy] | None = None,
        provenance_catalog=None,
    ):
        self._policies: list[Policy] = []
        self.state = SystemState()
        # When a provenance catalog is attached, every decision becomes a
        # DECISION entity linked to the model that scored it and the
        # policies that governed it — end-to-end accountability (§4.1).
        self.provenance_catalog = provenance_catalog
        for policy in policies or []:
            self.add_policy(policy)

    # ------------------------------------------------------------------
    # Policy management
    # ------------------------------------------------------------------
    def add_policy(self, policy: Policy) -> None:
        if any(p.name == policy.name for p in self._policies):
            raise PolicyError(f"duplicate policy name {policy.name!r}")
        self._policies.append(policy)
        self._policies.sort(key=lambda p: p.priority)

    def remove_policy(self, name: str) -> bool:
        before = len(self._policies)
        self._policies = [p for p in self._policies if p.name != name]
        return len(self._policies) != before

    @property
    def policies(self) -> list[Policy]:
        return list(self._policies)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decide(
        self,
        model_name: str,
        raw_value: Any,
        context: Mapping[str, Any] | None = None,
    ) -> Decision:
        """Run *raw_value* through the policy chain and record the decision."""
        context = dict(context or {})
        outcomes: list[PolicyOutcome] = []
        value = raw_value
        vetoed = False
        for policy in self._policies:
            outcome = policy.apply(value, context)
            outcomes.append(outcome)
            if outcome.vetoed:
                vetoed = True
                break
            if outcome.applied:
                value = outcome.value
        decision = Decision(
            decision_id=self.state.next_decision_id(),
            model_name=model_name,
            raw_value=raw_value,
            final_value=None if vetoed else value,
            vetoed=vetoed,
            outcomes=tuple(outcomes),
            context=context,
            timestamp=time.time(),
        )
        self.state.record_decision(decision)
        if self.provenance_catalog is not None:
            self._record_provenance(decision)
        return decision

    def _record_provenance(self, decision: Decision) -> None:
        from flock.provenance.model import EntityType, Relation

        catalog = self.provenance_catalog
        entity = catalog.register(
            EntityType.DECISION,
            f"decision-{decision.decision_id}",
            properties={
                "raw": repr(decision.raw_value),
                "final": repr(decision.final_value),
                "vetoed": decision.vetoed,
            },
        )
        model = catalog.register(EntityType.MODEL, decision.model_name)
        catalog.link(entity, model, Relation.SCORED_BY)
        for outcome in decision.outcomes:
            if outcome.applied:
                policy = catalog.register(
                    EntityType.POLICY, outcome.policy_name
                )
                catalog.link(entity, policy, Relation.GOVERNED_BY)

    def decide_batch(
        self,
        model_name: str,
        raw_values,
        contexts=None,
    ) -> list[Decision]:
        """Vector form of :meth:`decide` (one decision per value)."""
        raw_values = list(raw_values)
        if contexts is None:
            contexts = [{}] * len(raw_values)
        contexts = list(contexts)
        if len(contexts) != len(raw_values):
            raise PolicyError("contexts length must match raw_values")
        return [
            self.decide(model_name, v, c)
            for v, c in zip(raw_values, contexts)
        ]

    # ------------------------------------------------------------------
    # Transactional actions
    # ------------------------------------------------------------------
    def act(
        self,
        decision: Decision,
        action: Callable[[Any], Any],
        compensate: Callable[[Any], None] | None = None,
    ) -> Any:
        """Execute *action(final_value)*; roll back via *compensate* on error.

        Vetoed decisions never execute. The outcome is recorded against the
        decision in the system state.
        """
        if decision.vetoed:
            self.state.record_action(
                decision.decision_id, "skipped_veto", "decision was vetoed"
            )
            return None
        try:
            result = action(decision.final_value)
        except Exception as exc:
            if compensate is not None:
                compensate(decision.final_value)
            self.state.record_action(
                decision.decision_id, "rolled_back", f"{type(exc).__name__}: {exc}"
            )
            raise
        self.state.record_action(decision.decision_id, "committed")
        return result

    def act_in_database(
        self,
        decision: Decision,
        database,
        statements: list,
        user: str = "admin",
    ) -> bool:
        """Apply SQL statements for a decision as one DBMS transaction.

        Each statement is a SQL string or a ``(sql, params)`` pair where
        ``params`` bind ``?`` placeholders. All statements commit
        atomically; any failure rolls the whole transaction back and
        records it. Returns True on commit.
        """
        if decision.vetoed:
            self.state.record_action(
                decision.decision_id, "skipped_veto", "decision was vetoed"
            )
            return False
        connection = database.connect(user)
        connection.execute("BEGIN")
        try:
            for statement in statements:
                if isinstance(statement, str):
                    connection.execute(statement)
                else:
                    sql, params = statement
                    connection.execute(sql, params)
            connection.execute("COMMIT")
        except Exception as exc:
            if connection.in_transaction:
                connection.execute("ROLLBACK")
            self.state.record_action(
                decision.decision_id,
                "rolled_back",
                f"{type(exc).__name__}: {exc}",
            )
            return False
        self.state.record_action(
            decision.decision_id, "committed", f"{len(statements)} statements"
        )
        return True
