"""flock.policy — bridging the model–application divide (§4.1).

"Business rules and constraints are important factors that need to be taken
into account before any action is taken": the policy engine monitors model
outputs, applies user-defined policies (caps, floors, conditional overrides,
vetoes) before any action reaches the application domain, maintains the
system state and actions taken over time for debugging/explanation, and
executes actions transactionally with rollback on failure.
"""

from flock.policy.engine import PolicyEngine
from flock.policy.rules import (
    CapPolicy,
    FloorPolicy,
    OverridePolicy,
    Policy,
    PolicyOutcome,
    VetoPolicy,
)
from flock.policy.state import ActionRecord, Decision, SystemState

__all__ = [
    "ActionRecord",
    "CapPolicy",
    "Decision",
    "FloorPolicy",
    "OverridePolicy",
    "Policy",
    "PolicyEngine",
    "PolicyOutcome",
    "SystemState",
    "VetoPolicy",
]
