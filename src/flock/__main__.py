"""``python -m flock`` — the interactive shell."""

import sys

from flock.cli import main

sys.exit(main())
