"""flock.landscape — the competitive-landscape feature matrix (Figure 3)."""

from flock.landscape.matrix import (
    FEATURES,
    SYSTEMS,
    Support,
    feature_matrix,
    group_scores,
    render_matrix,
    trend_summary,
)

__all__ = [
    "FEATURES",
    "SYSTEMS",
    "Support",
    "feature_matrix",
    "group_scores",
    "render_matrix",
    "trend_summary",
]
