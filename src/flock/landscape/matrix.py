"""ML systems in the public cloud and major companies (Figure 3).

A data-driven encoding of the paper's feature-support matrix: systems ×
features with four support levels, grouped into Training / Serving / Data
Management exactly as the figure is. The cell values transcribe the figure
(the paper itself flags them as "a subjective judgement based on a few weeks
of analysis ... at the time of writing" — late 2019). The analysis
functions derive the two trends the paper calls out: proprietary
("unicorn") stacks have stronger data-management support, and no third-party
offering is complete.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Support(enum.Enum):
    GOOD = 2
    OK = 1
    NO = 0
    UNKNOWN = -1

    @property
    def symbol(self) -> str:
        return {"GOOD": "●", "OK": "◐", "NO": "○", "UNKNOWN": "?"}[self.name]

    @property
    def score(self) -> float | None:
        """Numeric score; UNKNOWN cells are excluded from averages."""
        return None if self is Support.UNKNOWN else float(self.value)


@dataclass(frozen=True)
class System:
    name: str
    kind: str  # 'proprietary' | 'cloud' | 'oss'


SYSTEMS: list[System] = [
    System("Bing", "proprietary"),
    System("Uber Michelangelo", "proprietary"),
    System("LinkedIn ProML", "proprietary"),
    System("Azure ML", "cloud"),
    System("Google Cloud AI", "cloud"),
    System("AWS SageMaker", "cloud"),
    System("MLflow", "oss"),
    System("Kubeflow", "oss"),
]

# (group, feature) in the figure's order.
FEATURES: list[tuple[str, str]] = [
    ("Training", "Experiment Tracking"),
    ("Training", "Managed Notebooks"),
    ("Training", "Pipelines / Projects"),
    ("Training", "Multi-Framework"),
    ("Training", "Proprietary Algos"),
    ("Training", "Distributed Training"),
    ("Training", "Auto ML"),
    ("Serving", "Batch prediction"),
    ("Serving", "On-prem deployment"),
    ("Serving", "Model Monitoring"),
    ("Serving", "Model Validation"),
    ("Data Management", "Data Provenance"),
    ("Data Management", "Data testing"),
    ("Data Management", "Feature Store"),
    ("Data Management", "Featurization DSL"),
    ("Data Management", "Labelling"),
    ("Data Management", "In-DB ML"),
]

_G, _O, _N, _U = Support.GOOD, Support.OK, Support.NO, Support.UNKNOWN

# Rows follow FEATURES order; columns follow SYSTEMS order.
_CELLS: list[list[Support]] = [
    # ExpTrack    Bing Uber LIn  AzML GCP  SageM MLflow Kubeflow
    [_G, _G, _G, _G, _O, _O, _G, _O],  # Experiment Tracking
    [_O, _O, _U, _G, _G, _G, _N, _G],  # Managed Notebooks
    [_G, _G, _G, _G, _G, _O, _G, _G],  # Pipelines / Projects
    [_O, _G, _O, _G, _O, _G, _G, _G],  # Multi-Framework
    [_G, _O, _G, _O, _O, _O, _N, _N],  # Proprietary Algos
    [_G, _G, _G, _G, _G, _G, _N, _O],  # Distributed Training
    [_O, _O, _O, _G, _G, _O, _N, _O],  # Auto ML
    [_G, _G, _G, _G, _G, _G, _O, _O],  # Batch prediction
    [_N, _G, _G, _O, _N, _N, _G, _G],  # On-prem deployment
    [_G, _G, _G, _O, _O, _O, _N, _N],  # Model Monitoring
    [_G, _G, _G, _O, _N, _O, _N, _N],  # Model Validation
    [_G, _G, _O, _O, _N, _N, _N, _N],  # Data Provenance
    [_G, _G, _O, _N, _N, _N, _N, _N],  # Data testing
    [_G, _G, _G, _N, _N, _N, _N, _N],  # Feature Store
    [_G, _G, _G, _N, _O, _N, _N, _N],  # Featurization DSL
    [_O, _U, _O, _O, _O, _G, _N, _N],  # Labelling
    [_O, _N, _N, _G, _G, _O, _N, _N],  # In-DB ML
]


def feature_matrix() -> dict[tuple[str, str], Support]:
    """``(system_name, feature_name) → Support`` for every cell."""
    out: dict[tuple[str, str], Support] = {}
    for row, (_, feature) in enumerate(FEATURES):
        for col, system in enumerate(SYSTEMS):
            out[(system.name, feature)] = _CELLS[row][col]
    return out


def group_scores() -> dict[str, dict[str, float]]:
    """Average support per system per feature group (UNKNOWN excluded)."""
    matrix = feature_matrix()
    groups = sorted({g for g, _ in FEATURES})
    out: dict[str, dict[str, float]] = {}
    for system in SYSTEMS:
        scores: dict[str, float] = {}
        for group in groups:
            values = [
                matrix[(system.name, feature)].score
                for g, feature in FEATURES
                if g == group
            ]
            known = [v for v in values if v is not None]
            scores[group] = sum(known) / len(known) if known else 0.0
        out[system.name] = scores
    return out


def trend_summary() -> dict[str, float]:
    """The two quantitative trends the paper reads off the figure.

    - ``dm_gap``: average Data Management score of proprietary systems minus
      third-party (cloud + OSS) systems — positive means trend 1 holds;
    - ``best_third_party_completeness``: the best fraction of features any
      non-proprietary system supports at least at OK level — well below 1.0
      means trend 2 ("complete third-party solutions are non-trivial") holds.
    """
    matrix = feature_matrix()
    scores = group_scores()
    proprietary = [s for s in SYSTEMS if s.kind == "proprietary"]
    third_party = [s for s in SYSTEMS if s.kind != "proprietary"]
    dm_prop = sum(scores[s.name]["Data Management"] for s in proprietary) / len(
        proprietary
    )
    dm_third = sum(scores[s.name]["Data Management"] for s in third_party) / len(
        third_party
    )

    best = 0.0
    for system in third_party:
        supported = sum(
            1
            for _, feature in FEATURES
            if matrix[(system.name, feature)] in (Support.GOOD, Support.OK)
        )
        best = max(best, supported / len(FEATURES))
    return {
        "dm_proprietary": dm_prop,
        "dm_third_party": dm_third,
        "dm_gap": dm_prop - dm_third,
        "best_third_party_completeness": best,
    }


def render_matrix() -> str:
    """The figure as aligned text (● Good, ◐ OK, ○ No, ? Unknown)."""
    matrix = feature_matrix()
    name_width = max(len(f) for _, f in FEATURES) + 2
    col_width = max(len(s.name) for s in SYSTEMS) + 2
    lines = []
    header = " " * name_width + "".join(
        s.name.ljust(col_width) for s in SYSTEMS
    )
    lines.append(header)
    current_group = None
    for group, feature in FEATURES:
        if group != current_group:
            lines.append(f"-- {group} --")
            current_group = group
        row = feature.ljust(name_width)
        for system in SYSTEMS:
            row += matrix[(system.name, feature)].symbol.ljust(col_width)
        lines.append(row)
    lines.append("legend: ● Good   ◐ OK   ○ No   ? Unknown")
    return "\n".join(lines)
