"""AutoML-lite: tracked hyperparameter search over the training service.

Figure 3 lists "Auto ML" among the capabilities an EGML platform needs, and
the paper's enterprise feedback is blunt: "automate it, and don't get me
sued". This module automates model selection the governed way — every
candidate is a tracked :class:`~flock.lifecycle.training.TrainingRun`, the
search is deterministic given its seed, and the winner is chosen by a
held-out metric, not training fit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from flock.errors import FlockError
from flock.lifecycle.training import CloudTrainingService, TrainingRun
from flock.ml.metrics import accuracy_score, r2_score, train_test_split


@dataclass(frozen=True)
class Candidate:
    """One point of the search space."""

    estimator_factory: Callable[..., Any]
    params: dict[str, Any]

    @property
    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.estimator_factory.__name__}({inner})"


def grid(estimator_factory: Callable[..., Any], **param_lists) -> list[Candidate]:
    """The cartesian product of parameter lists for one estimator family."""
    names = sorted(param_lists)
    out = []
    for values in itertools.product(*(param_lists[n] for n in names)):
        out.append(Candidate(estimator_factory, dict(zip(names, values))))
    return out


@dataclass
class SearchResult:
    """Outcome of a search: the winner plus the full leaderboard."""

    best_estimator: Any
    best_candidate: Candidate
    best_score: float
    metric_name: str
    leaderboard: list[tuple[Candidate, float, TrainingRun]] = field(
        default_factory=list
    )

    def summary(self) -> str:
        lines = [f"AutoML search ({self.metric_name}, higher is better):"]
        for candidate, score, run in self.leaderboard:
            marker = " <== best" if candidate is self.best_candidate else ""
            lines.append(
                f"  {score:8.4f}  {candidate.describe}  [{run.run_id}]{marker}"
            )
        return "\n".join(lines)


class AutoTuner:
    """Searches candidate estimators with held-out evaluation.

    Every fit goes through the :class:`CloudTrainingService`, so the full
    search is reconstructible from the experiment log — the provenance story
    extends into model selection.
    """

    def __init__(
        self,
        training: CloudTrainingService | None = None,
        validation_fraction: float = 0.25,
        random_state: int = 0,
    ):
        self.training = training or CloudTrainingService()
        self.validation_fraction = validation_fraction
        self.random_state = random_state

    def search(
        self,
        model_name: str,
        candidates: Sequence[Candidate],
        X,
        y,
        task: str = "classification",
        metric: Callable | None = None,
        metric_name: str | None = None,
    ) -> SearchResult:
        """Fit every candidate; rank by held-out metric; return the winner."""
        if not candidates:
            raise FlockError("AutoTuner.search needs at least one candidate")
        if task not in ("classification", "regression"):
            raise FlockError(f"unknown task {task!r}")
        if metric is None:
            metric = accuracy_score if task == "classification" else r2_score
            metric_name = metric_name or (
                "val_accuracy" if task == "classification" else "val_r2"
            )
        metric_name = metric_name or "val_metric"

        X = np.asarray(X)
        y = np.asarray(y)
        X_train, X_val, y_train, y_val = train_test_split(
            X, y, self.validation_fraction, self.random_state
        )

        leaderboard: list[tuple[Candidate, float, TrainingRun]] = []
        for candidate in candidates:
            estimator = candidate.estimator_factory(**candidate.params)

            def evaluate(fitted, _X, _y, estimator=estimator):
                score = float(metric(y_val, fitted.predict(X_val)))
                return {metric_name: score}

            run = self.training.submit(
                model_name,
                estimator,
                X_train,
                y_train,
                evaluate=evaluate,
            )
            leaderboard.append((candidate, run.metrics[metric_name], run))

        leaderboard.sort(key=lambda item: item[1], reverse=True)
        best_candidate, best_score, best_run = leaderboard[0]

        # Refit the winner on all data (standard practice) and return it.
        best_estimator = best_candidate.estimator_factory(
            **best_candidate.params
        )
        best_estimator.fit(X, y)
        return SearchResult(
            best_estimator=best_estimator,
            best_candidate=best_candidate,
            best_score=best_score,
            metric_name=metric_name,
            leaderboard=leaderboard,
        )
