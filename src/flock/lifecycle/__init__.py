"""flock.lifecycle — train-in-the-cloud, score-in-the-DBMS orchestration."""

from flock.lifecycle.autotune import AutoTuner, Candidate, SearchResult, grid
from flock.lifecycle.session import FlockSession
from flock.lifecycle.training import CloudTrainingService, TrainingRun

__all__ = [
    "AutoTuner",
    "Candidate",
    "CloudTrainingService",
    "FlockSession",
    "SearchResult",
    "TrainingRun",
    "grid",
]
