"""FlockSession: the whole Figure 1 lifecycle behind one object.

Wires together the DBMS (scoring + governance), the cloud training service,
the model registry, the provenance catalog and the policy engine, and offers
the canonical end-to-end flow:

    session = FlockSession()
    session.load_dataset(make_loans(500))
    session.train_and_deploy("loan_model", pipeline, "loans", features, "approved")
    session.sql("SELECT applicant_id FROM loans WHERE PREDICT(loan_model) > 0.8")

with full provenance captured across all phases (the paper's conclusion:
training in the cloud, models stored and scored in managed environments,
provenance collected across all phases).
"""

from __future__ import annotations

import numpy as np

from flock import create_database
from flock.errors import FlockError
from flock.lifecycle.training import CloudTrainingService, TrainingRun
from flock.mlgraph import to_graph
from flock.policy import PolicyEngine
from flock.provenance import (
    ProvenanceCatalog,
    PythonProvenanceCapture,
    SQLProvenanceCapture,
)
from flock.provenance.model import EntityType, Relation


class FlockSession:
    """One EGML deployment: DB + registry + training + provenance + policy."""

    def __init__(
        self,
        cross_optimizer=None,
        eager_provenance: bool = True,
        monitor_models: bool = True,
    ):
        from flock.monitoring import MonitorHub

        self.database, self.registry = create_database(cross_optimizer)
        self.training = CloudTrainingService()
        self.provenance = ProvenanceCatalog()
        self.sql_capture = SQLProvenanceCapture(
            self.provenance, database=self.database
        )
        self.py_capture = PythonProvenanceCapture(self.provenance)
        self.policies = PolicyEngine(provenance_catalog=self.provenance)
        self.eager_provenance = eager_provenance
        self.monitor_models = monitor_models
        self.monitors = MonitorHub()
        if monitor_models:
            # Scoring feeds the monitors; monitored models keep their
            # Predict operator (inlining would bypass the hook).
            self.database.scorer.monitor_hub = self.monitors
            self.database.cross_optimizer.monitor_hub = self.monitors

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def sql(self, statement: str, params=None, user: str = "admin"):
        """Execute SQL with (optional) eager provenance capture.

        ``params`` bind ``?`` placeholders positionally, exactly as in
        :meth:`flock.db.Database.execute`.
        """
        result = self.database.execute(statement, params, user=user)
        if self.eager_provenance:
            self.sql_capture.capture_query(statement, user=user)
        return result

    def load_dataset(self, dataset, table_name: str | None = None) -> str:
        """Load a :class:`~flock.ml.datasets.TabularDataset` into the DBMS."""
        from flock.ml.datasets import load_dataset_into

        table = load_dataset_into(self.database, dataset, table_name)
        if self.eager_provenance:
            table_entity = self.provenance.register(EntityType.TABLE, table)
            for column_name in dataset.columns:
                column = self.provenance.register(
                    EntityType.COLUMN, f"{table}.{column_name}"
                )
                self.provenance.link(table_entity, column, Relation.CONTAINS)
        return table

    def table_matrix(
        self, table_name: str, feature_names: list[str], target_name: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fetch (X, y) from a DB table for training."""
        columns = ", ".join(feature_names + [target_name])
        result = self.database.execute(
            f"SELECT {columns} FROM {table_name}"
        )
        batch = result.batch
        assert batch is not None
        X = np.column_stack(
            [
                np.asarray(batch.column(n).to_pylist(), dtype=np.float64)
                for n in feature_names
            ]
        )
        y = np.asarray(batch.column(target_name).to_pylist())
        return X, y

    # ------------------------------------------------------------------
    # Train in the cloud, deploy to the DBMS
    # ------------------------------------------------------------------
    def train_and_deploy(
        self,
        model_name: str,
        estimator,
        table_name: str,
        feature_names: list[str],
        target_name: str,
        user: str = "admin",
        description: str = "",
    ) -> TrainingRun:
        """The canonical lifecycle: fetch → train (cloud) → convert →
        deploy (DBMS, transactional) → record provenance end to end."""
        X, y = self.table_matrix(table_name, feature_names, target_name)
        run = self.training.submit(
            model_name,
            estimator,
            X,
            y,
            dataset_name=table_name,
            feature_names=feature_names,
            target_name=target_name,
        )
        graph = to_graph(estimator, feature_names, name=model_name)
        version = self.registry.deploy(
            model_name,
            graph,
            user=user,
            description=description,
            metrics=run.metrics,
            training_run_id=run.run_id,
        )
        self._record_training_provenance(run, version, table_name)
        if self.monitor_models:
            self._register_monitor(model_name, estimator, feature_names, X)
        return run

    def _register_monitor(
        self, model_name, estimator, feature_names, X
    ) -> None:
        from flock.monitoring.drift import baseline_from_training

        scores = None
        if hasattr(estimator, "predict_proba"):
            scores = estimator.predict_proba(X)[:, 1]
        elif hasattr(estimator, "predict"):
            try:
                scores = np.asarray(estimator.predict(X), dtype=np.float64)
            except (TypeError, ValueError):
                scores = None
        baseline = baseline_from_training(feature_names, X, scores)
        self.monitors.register(model_name, baseline)

    def drift_report(self, model_name: str):
        """Drift of scoring traffic vs the model's training baseline."""
        return self.monitors.monitor(model_name).report()

    def _record_training_provenance(self, run, version, table_name) -> None:
        run_entity = self.provenance.register(
            EntityType.TRAINING_RUN,
            run.run_id,
            properties={"duration_seconds": run.duration_seconds},
        )
        model_entity = self.provenance.register(
            EntityType.MODEL_VERSION,
            f"{version.name}:v{version.version}",
            properties={"metrics": dict(run.metrics)},
        )
        self.provenance.link(run_entity, model_entity, Relation.PRODUCES)
        table_entity = self.provenance.register(EntityType.TABLE, table_name)
        self.provenance.link(model_entity, table_entity, Relation.TRAINED_ON)
        for feature in run.feature_names + [run.target_name]:
            if not feature:
                continue
            column = self.provenance.register(
                EntityType.COLUMN, f"{table_name}.{feature}"
            )
            self.provenance.link(table_entity, column, Relation.CONTAINS)
            self.provenance.link(model_entity, column, Relation.TRAINED_ON)
        for key, value in run.hyperparameters.items():
            hp = self.provenance.register(
                EntityType.HYPERPARAMETER,
                f"{version.name}:v{version.version}:{key}",
                properties={"value": value},
            )
            self.provenance.link(model_entity, hp, Relation.CONFIGURED_BY)

    # ------------------------------------------------------------------
    # Governance queries
    # ------------------------------------------------------------------
    def models_affected_by_column(
        self, table_name: str, column_name: str
    ) -> list[str]:
        """C3's motivating question: which deployed models must be
        retrained if this column changes?"""
        entities = self.provenance.models_depending_on_column(
            table_name, column_name
        )
        return sorted({e.name for e in entities})

    def model_lineage(self, model_name: str, version: int | None = None):
        """Upstream lineage entities of a deployed model version."""
        if version is None:
            version = self.registry.latest(model_name).version
        entity = self.provenance.find(
            EntityType.MODEL_VERSION, f"{model_name}:v{version}"
        )
        if entity is None:
            raise FlockError(
                f"no provenance recorded for {model_name!r} v{version}"
            )
        return self.provenance.graph.lineage(entity.entity_id, "upstream")
