"""The (simulated) cloud training service with experiment tracking.

The paper argues model development/training happens in the cloud: spiky
resource usage, centralized data, managed infrastructure (§1). This module
simulates that managed service — submitted training jobs run estimators,
record metrics and durations, and every run gets a tracked
:class:`TrainingRun` (the MLflow-style "inner training loop" lineage the
paper says must be expanded to full provenance).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from flock.errors import FlockError
from flock.ml.metrics import accuracy_score, r2_score


@dataclass
class TrainingRun:
    """One tracked training-job execution."""

    run_id: str
    model_name: str
    estimator_class: str
    hyperparameters: dict[str, Any]
    metrics: dict[str, float] = field(default_factory=dict)
    dataset_name: str = ""
    feature_names: list[str] = field(default_factory=list)
    target_name: str = ""
    started_at: float = 0.0
    duration_seconds: float = 0.0
    status: str = "pending"  # pending | succeeded | failed
    error: str = ""


class CloudTrainingService:
    """Runs training jobs and tracks their experiments."""

    def __init__(self) -> None:
        self._runs: list[TrainingRun] = []
        self._counter = itertools.count(1)

    # ------------------------------------------------------------------
    def submit(
        self,
        model_name: str,
        estimator,
        X,
        y,
        dataset_name: str = "",
        feature_names: list[str] | None = None,
        target_name: str = "",
        evaluate: Callable[[Any, Any, Any], dict[str, float]] | None = None,
    ) -> TrainingRun:
        """Train *estimator* on (X, y); returns the tracked run.

        A default metric (accuracy for classifiers, R² for regressors) is
        recorded on the training data unless *evaluate* is supplied.
        """
        run = TrainingRun(
            run_id=f"run-{next(self._counter)}",
            model_name=model_name,
            estimator_class=type(estimator).__name__,
            hyperparameters=_hyperparameters_of(estimator),
            dataset_name=dataset_name,
            feature_names=list(feature_names or []),
            target_name=target_name,
            started_at=time.time(),
        )
        self._runs.append(run)
        started = time.perf_counter()
        try:
            estimator.fit(X, y)
            if evaluate is not None:
                run.metrics = dict(evaluate(estimator, X, y))
            else:
                run.metrics = _default_metrics(estimator, X, y)
            run.status = "succeeded"
        except Exception as exc:
            run.status = "failed"
            run.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            run.duration_seconds = time.perf_counter() - started
        return run

    # ------------------------------------------------------------------
    def runs(self, model_name: str | None = None) -> list[TrainingRun]:
        if model_name is None:
            return list(self._runs)
        return [r for r in self._runs if r.model_name == model_name]

    def run(self, run_id: str) -> TrainingRun:
        for r in self._runs:
            if r.run_id == run_id:
                return r
        raise FlockError(f"unknown training run {run_id!r}")

    def best_run(self, model_name: str, metric: str, maximize: bool = True):
        """The run with the best recorded value of *metric*."""
        candidates = [
            r
            for r in self.runs(model_name)
            if r.status == "succeeded" and metric in r.metrics
        ]
        if not candidates:
            raise FlockError(
                f"no successful runs of {model_name!r} with metric {metric!r}"
            )
        key = lambda r: r.metrics[metric]  # noqa: E731
        return max(candidates, key=key) if maximize else min(candidates, key=key)


def _hyperparameters_of(estimator) -> dict[str, Any]:
    getter = getattr(estimator, "get_params", None)
    if getter is None:
        return {}
    out = {}
    for key, value in getter().items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def _default_metrics(estimator, X, y) -> dict[str, float]:
    try:
        predictions = estimator.predict(X)
    except FlockError:
        return {}
    y_arr = np.asarray(y).ravel()
    if hasattr(estimator, "predict_proba") or hasattr(estimator, "classes_"):
        return {"train_accuracy": accuracy_score(y_arr, predictions)}
    try:
        return {"train_r2": r2_score(y_arr, predictions)}
    except FlockError:
        return {}
