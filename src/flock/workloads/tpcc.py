"""TPC-C: schema, a tiny data generator, and the five transaction templates.

Used two ways: (a) the provenance experiment captures lineage from the
generated statement stream (Table 1's 2,200 TPC-C queries); (b) the
transactions actually run against :class:`flock.db.Database`, exercising the
versioned storage (every UPDATE/INSERT makes a table version — the very
blow-up the paper's provenance compression addresses).
"""

from __future__ import annotations

import numpy as np

from flock.errors import WorkloadError

TPCC_TABLES = [
    "warehouse",
    "district",
    "customer_c",
    "history",
    "neworder",
    "orders_c",
    "orderline",
    "item",
    "stock",
]

_SCHEMA_SQL = """
CREATE TABLE warehouse (
    w_id INTEGER PRIMARY KEY,
    w_name TEXT,
    w_street_1 TEXT,
    w_street_2 TEXT,
    w_city TEXT,
    w_state TEXT,
    w_zip TEXT,
    w_tax FLOAT,
    w_ytd FLOAT
);
CREATE TABLE district (
    d_id INTEGER NOT NULL,
    d_w_id INTEGER NOT NULL,
    d_name TEXT,
    d_street_1 TEXT,
    d_street_2 TEXT,
    d_city TEXT,
    d_state TEXT,
    d_zip TEXT,
    d_tax FLOAT,
    d_ytd FLOAT,
    d_next_o_id INTEGER
);
CREATE TABLE customer_c (
    c_id INTEGER NOT NULL,
    c_d_id INTEGER NOT NULL,
    c_w_id INTEGER NOT NULL,
    c_first TEXT,
    c_middle TEXT,
    c_last TEXT,
    c_street_1 TEXT,
    c_street_2 TEXT,
    c_city TEXT,
    c_state TEXT,
    c_zip TEXT,
    c_phone TEXT,
    c_since DATE,
    c_credit TEXT,
    c_credit_lim FLOAT,
    c_discount FLOAT,
    c_balance FLOAT,
    c_ytd_payment FLOAT,
    c_payment_cnt INTEGER,
    c_delivery_cnt INTEGER,
    c_data TEXT
);
CREATE TABLE history (
    h_c_id INTEGER,
    h_c_d_id INTEGER,
    h_c_w_id INTEGER,
    h_d_id INTEGER,
    h_w_id INTEGER,
    h_date DATE,
    h_amount FLOAT,
    h_data TEXT
);
CREATE TABLE neworder (
    no_o_id INTEGER NOT NULL,
    no_d_id INTEGER NOT NULL,
    no_w_id INTEGER NOT NULL
);
CREATE TABLE orders_c (
    o_id INTEGER NOT NULL,
    o_d_id INTEGER NOT NULL,
    o_w_id INTEGER NOT NULL,
    o_c_id INTEGER,
    o_entry_d DATE,
    o_carrier_id INTEGER,
    o_ol_cnt INTEGER,
    o_all_local INTEGER
);
CREATE TABLE orderline (
    ol_o_id INTEGER NOT NULL,
    ol_d_id INTEGER NOT NULL,
    ol_w_id INTEGER NOT NULL,
    ol_number INTEGER NOT NULL,
    ol_i_id INTEGER,
    ol_supply_w_id INTEGER,
    ol_delivery_d DATE,
    ol_quantity INTEGER,
    ol_amount FLOAT,
    ol_dist_info TEXT
);
CREATE TABLE item (
    i_id INTEGER PRIMARY KEY,
    i_im_id INTEGER,
    i_name TEXT,
    i_price FLOAT,
    i_data TEXT
);
CREATE TABLE stock (
    s_i_id INTEGER NOT NULL,
    s_w_id INTEGER NOT NULL,
    s_quantity INTEGER,
    s_dist_01 TEXT,
    s_dist_02 TEXT,
    s_dist_03 TEXT,
    s_dist_04 TEXT,
    s_dist_05 TEXT,
    s_ytd FLOAT,
    s_order_cnt INTEGER,
    s_remote_cnt INTEGER,
    s_data TEXT
);
"""


def create_tpcc_schema(database) -> None:
    database.connect().execute_script(_SCHEMA_SQL)


def generate_tpcc_data(
    database,
    warehouses: int = 1,
    districts_per_warehouse: int = 3,
    customers_per_district: int = 20,
    items: int = 50,
    seed: int = 11,
) -> dict:
    """Populate a miniature TPC-C instance; returns per-table row counts."""
    if warehouses < 1:
        raise WorkloadError("need at least one warehouse")
    rng = np.random.default_rng(seed)
    counts: dict[str, int] = {}

    rows = [
        (
            w, f"WH{w}", f"{w} Main St", "Suite 1", "Springfield", "CA",
            f"9{w % 10}000", round(float(rng.uniform(0.0, 0.2)), 4), 30000.0,
        )
        for w in range(1, warehouses + 1)
    ]
    _insert(database, "warehouse", rows)
    counts["warehouse"] = len(rows)

    rows = []
    for w in range(1, warehouses + 1):
        for d in range(1, districts_per_warehouse + 1):
            rows.append(
                (
                    d, w, f"D{w}-{d}", f"{d} Side St", "Floor 2",
                    "Springfield", "CA", f"9{d % 10}001",
                    round(float(rng.uniform(0.0, 0.2)), 4), 3000.0, 1,
                )
            )
    _insert(database, "district", rows)
    counts["district"] = len(rows)

    rows = []
    for w in range(1, warehouses + 1):
        for d in range(1, districts_per_warehouse + 1):
            for c in range(1, customers_per_district + 1):
                rows.append(
                    (
                        c, d, w, f"First{c}", "OE", f"Last{c % 10}",
                        f"{c} Elm St", "", "Springfield", "CA",
                        f"9{c % 10}002", f"555-{c:04d}", "2015-01-01",
                        "GC" if rng.random() < 0.9 else "BC",
                        50000.0, round(float(rng.uniform(0.0, 0.5)), 4),
                        -10.0, 10.0, 1, 0, "customer data",
                    )
                )
    _insert(database, "customer_c", rows)
    counts["customer_c"] = len(rows)

    rows = [
        (
            i,
            int(rng.integers(1, 10_000)),
            f"Item{i}",
            round(float(rng.uniform(1.0, 100.0)), 2),
            "original" if rng.random() < 0.9 else "generic",
        )
        for i in range(1, items + 1)
    ]
    _insert(database, "item", rows)
    counts["item"] = len(rows)

    rows = []
    for w in range(1, warehouses + 1):
        for i in range(1, items + 1):
            rows.append(
                (
                    i, w, int(rng.integers(10, 101)),
                    "dist1", "dist2", "dist3", "dist4", "dist5",
                    0.0, 0, 0, "stock data",
                )
            )
    _insert(database, "stock", rows)
    counts["stock"] = len(rows)
    for empty in ("history", "neworder", "orders_c", "orderline"):
        counts[empty] = 0
    return counts


def _insert(database, table: str, rows: list[tuple]) -> None:
    if not rows:
        return
    sql = f"INSERT INTO {table} VALUES ({', '.join('?' * len(rows[0]))})"
    database.executemany(sql, rows)


# ----------------------------------------------------------------------
# Transaction templates. Each is a list of parameterized statements.
# ----------------------------------------------------------------------
class _TxnState:
    """Monotonic counters so generated keys do not collide."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self.next_order_id = 1000


def _new_order(state: _TxnState, w: int, d: int, c: int) -> list[str]:
    rng = state.rng
    order_id = state.next_order_id
    state.next_order_id += 1
    n_lines = int(rng.integers(2, 6))
    statements = [
        f"SELECT c_discount, c_last, c_credit FROM customer_c "
        f"WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}",
        f"SELECT w_tax FROM warehouse WHERE w_id = {w}",
        f"UPDATE district SET d_next_o_id = d_next_o_id + 1 "
        f"WHERE d_w_id = {w} AND d_id = {d}",
        f"INSERT INTO orders_c VALUES ({order_id}, {d}, {w}, {c}, "
        f"'2019-06-{rng.integers(1, 29):02d}', NULL, {n_lines}, 1)",
        f"INSERT INTO neworder VALUES ({order_id}, {d}, {w})",
    ]
    for line in range(1, n_lines + 1):
        item = int(rng.integers(1, 51))
        qty = int(rng.integers(1, 10))
        statements.append(
            f"SELECT i_price, i_name, i_data FROM item WHERE i_id = {item}"
        )
        statements.append(
            f"UPDATE stock SET s_quantity = s_quantity - {qty}, "
            f"s_ytd = s_ytd + {qty}, s_order_cnt = s_order_cnt + 1 "
            f"WHERE s_i_id = {item} AND s_w_id = {w}"
        )
        amount = round(float(state.rng.uniform(1, 500)), 2)
        statements.append(
            f"INSERT INTO orderline VALUES ({order_id}, {d}, {w}, {line}, "
            f"{item}, {w}, NULL, {qty}, {amount}, 'dist{d}')"
        )
    return statements


def _payment(state: _TxnState, w: int, d: int, c: int) -> list[str]:
    amount = round(float(state.rng.uniform(1.0, 5000.0)), 2)
    return [
        f"UPDATE warehouse SET w_ytd = w_ytd + {amount} WHERE w_id = {w}",
        f"UPDATE district SET d_ytd = d_ytd + {amount} "
        f"WHERE d_w_id = {w} AND d_id = {d}",
        f"UPDATE customer_c SET c_balance = c_balance - {amount}, "
        f"c_ytd_payment = c_ytd_payment + {amount}, "
        f"c_payment_cnt = c_payment_cnt + 1 "
        f"WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}",
        f"INSERT INTO history VALUES ({c}, {d}, {w}, {d}, {w}, "
        f"'2019-06-15', {amount}, 'payment')",
    ]


def _order_status(state: _TxnState, w: int, d: int, c: int) -> list[str]:
    return [
        f"SELECT c_balance, c_first, c_last FROM customer_c "
        f"WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}",
        f"SELECT o_id, o_entry_d, o_carrier_id FROM orders_c "
        f"WHERE o_w_id = {w} AND o_d_id = {d} AND o_c_id = {c} "
        f"ORDER BY o_id DESC LIMIT 1",
        f"SELECT ol_i_id, ol_quantity, ol_amount, ol_delivery_d "
        f"FROM orderline WHERE ol_w_id = {w} AND ol_d_id = {d}",
    ]


def _delivery(state: _TxnState, w: int, d: int, c: int) -> list[str]:
    carrier = int(state.rng.integers(1, 11))
    return [
        f"SELECT MIN(no_o_id) AS oldest FROM neworder "
        f"WHERE no_w_id = {w} AND no_d_id = {d}",
        f"DELETE FROM neworder WHERE no_w_id = {w} AND no_d_id = {d} "
        f"AND no_o_id < 1005",
        f"UPDATE orders_c SET o_carrier_id = {carrier} "
        f"WHERE o_w_id = {w} AND o_d_id = {d} AND o_carrier_id IS NULL",
        f"UPDATE orderline SET ol_delivery_d = '2019-06-20' "
        f"WHERE ol_w_id = {w} AND ol_d_id = {d} AND ol_delivery_d IS NULL",
        f"UPDATE customer_c SET c_delivery_cnt = c_delivery_cnt + 1 "
        f"WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}",
    ]


def _stock_level(state: _TxnState, w: int, d: int, c: int) -> list[str]:
    threshold = int(state.rng.integers(10, 21))
    return [
        f"SELECT d_next_o_id FROM district WHERE d_w_id = {w} AND d_id = {d}",
        f"SELECT COUNT(DISTINCT s.s_i_id) AS low_stock "
        f"FROM orderline ol JOIN stock s ON s.s_i_id = ol.ol_i_id "
        f"WHERE ol.ol_w_id = {w} AND ol.ol_d_id = {d} "
        f"AND s.s_w_id = {w} AND s.s_quantity < {threshold}",
    ]


_TRANSACTIONS = {
    "new_order": (_new_order, 0.45),
    "payment": (_payment, 0.43),
    "order_status": (_order_status, 0.04),
    "delivery": (_delivery, 0.04),
    "stock_level": (_stock_level, 0.04),
}


def generate_tpcc_transactions(
    statement_count: int = 2200,
    warehouses: int = 1,
    districts_per_warehouse: int = 3,
    customers_per_district: int = 20,
    seed: int = 3,
) -> list[str]:
    """A statement stream of roughly *statement_count* queries following the
    TPC-C transaction mix (45/43/4/4/4)."""
    rng = np.random.default_rng(seed)
    state = _TxnState(rng)
    names = list(_TRANSACTIONS)
    weights = np.array([_TRANSACTIONS[n][1] for n in names])
    weights = weights / weights.sum()
    statements: list[str] = []
    while len(statements) < statement_count:
        name = names[int(rng.choice(len(names), p=weights))]
        maker = _TRANSACTIONS[name][0]
        w = int(rng.integers(1, warehouses + 1))
        d = int(rng.integers(1, districts_per_warehouse + 1))
        c = int(rng.integers(1, customers_per_district + 1))
        statements.extend(maker(state, w, d, c))
    return statements[:statement_count]
