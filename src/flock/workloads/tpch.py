"""TPC-H: schema, scaled data generator and all 22 query templates.

The templates keep TPC-H's table/column footprint and analytical shape but
are rewritten into this engine's SQL subset: correlated subqueries and
EXISTS become joins against aggregated FROM-subqueries, and scalar-subquery
thresholds become parameters. Every template both parses *and executes* on
:class:`flock.db.Database`.

``generate_tpch_queries(2208)`` reproduces the query batch of the paper's
provenance experiment ("queries generated out of all query templates in
TPC-H": 2,208 ≈ 22 templates × ~100 parameterizations).
"""

from __future__ import annotations

import numpy as np

from flock.errors import WorkloadError

TPCH_TABLES = [
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
]

_SCHEMA_SQL = """
CREATE TABLE region (
    r_regionkey INTEGER PRIMARY KEY,
    r_name TEXT NOT NULL,
    r_comment TEXT
);
CREATE TABLE nation (
    n_nationkey INTEGER PRIMARY KEY,
    n_name TEXT NOT NULL,
    n_regionkey INTEGER NOT NULL,
    n_comment TEXT
);
CREATE TABLE supplier (
    s_suppkey INTEGER PRIMARY KEY,
    s_name TEXT NOT NULL,
    s_address TEXT,
    s_nationkey INTEGER NOT NULL,
    s_phone TEXT,
    s_acctbal FLOAT,
    s_comment TEXT
);
CREATE TABLE customer (
    c_custkey INTEGER PRIMARY KEY,
    c_name TEXT NOT NULL,
    c_address TEXT,
    c_nationkey INTEGER NOT NULL,
    c_phone TEXT,
    c_acctbal FLOAT,
    c_mktsegment TEXT,
    c_comment TEXT
);
CREATE TABLE part (
    p_partkey INTEGER PRIMARY KEY,
    p_name TEXT NOT NULL,
    p_mfgr TEXT,
    p_brand TEXT,
    p_type TEXT,
    p_size INTEGER,
    p_container TEXT,
    p_retailprice FLOAT,
    p_comment TEXT
);
CREATE TABLE partsupp (
    ps_partkey INTEGER NOT NULL,
    ps_suppkey INTEGER NOT NULL,
    ps_availqty INTEGER,
    ps_supplycost FLOAT,
    ps_comment TEXT
);
CREATE TABLE orders (
    o_orderkey INTEGER PRIMARY KEY,
    o_custkey INTEGER NOT NULL,
    o_orderstatus TEXT,
    o_totalprice FLOAT,
    o_orderdate DATE,
    o_orderpriority TEXT,
    o_clerk TEXT,
    o_shippriority INTEGER,
    o_comment TEXT
);
CREATE TABLE lineitem (
    l_orderkey INTEGER NOT NULL,
    l_partkey INTEGER NOT NULL,
    l_suppkey INTEGER NOT NULL,
    l_linenumber INTEGER NOT NULL,
    l_quantity FLOAT,
    l_extendedprice FLOAT,
    l_discount FLOAT,
    l_tax FLOAT,
    l_returnflag TEXT,
    l_linestatus TEXT,
    l_shipdate DATE,
    l_commitdate DATE,
    l_receiptdate DATE,
    l_shipinstruct TEXT,
    l_shipmode TEXT,
    l_comment TEXT
);
"""

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIPINSTRUCT = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
]
CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX"]
BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cream", "cyan",
]


def create_tpch_schema(database) -> None:
    """Create the eight TPC-H tables.

    Accepts anything with ``execute`` — an embedded
    :class:`~flock.db.Database` or a sharded/replicated client.
    """
    connect = getattr(database, "connect", None)
    if connect is not None:
        connect().execute_script(_SCHEMA_SQL)
        return
    for statement in _SCHEMA_SQL.split(";"):
        if statement.strip():
            database.execute(statement)


class _TableLoader:
    """Streams rows into one table in fixed-size ``executemany`` batches.

    Buffering at most ``batch_rows`` rows keeps the generator's memory flat
    in the batch size rather than the scale factor, so SF-class row counts
    load without materializing whole tables in Python lists.
    """

    def __init__(self, database, table: str, batch_rows: int,
                 date_columns=frozenset()):
        self.database = database
        self.table = table
        self.batch_rows = batch_rows
        self.date_columns = date_columns
        self.count = 0
        self._rows: list[tuple] = []

    def add(self, row: tuple) -> None:
        self._rows.append(row)
        if len(self._rows) >= self.batch_rows:
            self.flush()

    def flush(self) -> None:
        from flock.db.types import days_to_date

        if not self._rows:
            return
        rows = self._rows
        if self.date_columns:
            rows = [
                tuple(
                    days_to_date(value).isoformat()
                    if j in self.date_columns else value
                    for j, value in enumerate(row)
                )
                for row in rows
            ]
        sql = (
            f"INSERT INTO {self.table} "
            f"VALUES ({', '.join('?' * len(rows[0]))})"
        )
        self.database.executemany(sql, rows)
        self.count += len(rows)
        self._rows = []


def _load(database, table: str, batch_rows: int, date_columns, rows) -> int:
    loader = _TableLoader(database, table, batch_rows, date_columns)
    for row in rows:
        loader.add(row)
    loader.flush()
    return loader.count


def generate_tpch_data(
    database,
    scale: float = 0.002,
    seed: int = 42,
    batch_rows: int = 10_000,
) -> dict:
    """Populate a scaled-down TPC-H instance, streaming in seeded chunks.

    ``scale`` is the fraction of SF1 (scale=0.002 → 12k lineitem rows).
    Rows are generated one at a time and flushed through parameterized
    ``executemany`` batches of ``batch_rows``, so peak memory is bounded by
    the batch size, not the scale. Returns per-table row counts.
    """
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    if batch_rows <= 0:
        raise WorkloadError("batch_rows must be positive")
    rng = np.random.default_rng(seed)
    n_supp = max(3, int(10_000 * scale))
    n_cust = max(5, int(150_000 * scale))
    n_part = max(5, int(200_000 * scale))
    n_orders = max(10, int(1_500_000 * scale))
    counts = {
        "region": len(REGIONS),
        "nation": len(NATIONS),
        "supplier": n_supp,
        "customer": n_cust,
        "part": n_part,
        "orders": n_orders,
    }

    _load(database, "region", batch_rows, frozenset(), (
        (i, name, f"region {name.lower()}") for i, name in enumerate(REGIONS)
    ))
    _load(database, "nation", batch_rows, frozenset(), (
        (i, name, region, f"nation {name.lower()}")
        for i, (name, region) in enumerate(NATIONS)
    ))
    _load(database, "supplier", batch_rows, frozenset(), (
        (
            i + 1,
            f"Supplier#{i + 1:09d}",
            f"addr {i}",
            int(rng.integers(0, len(NATIONS))),
            f"{rng.integers(10, 35)}-{rng.integers(100, 999)}-{rng.integers(1000, 9999)}",
            float(np.round(rng.uniform(-999.99, 9999.99), 2)),
            "supplier comment",
        )
        for i in range(n_supp)
    ))
    _load(database, "customer", batch_rows, frozenset(), (
        (
            i + 1,
            f"Customer#{i + 1:09d}",
            f"addr {i}",
            int(rng.integers(0, len(NATIONS))),
            f"{rng.integers(10, 35)}-{rng.integers(100, 999)}-{rng.integers(1000, 9999)}",
            float(np.round(rng.uniform(-999.99, 9999.99), 2)),
            SEGMENTS[int(rng.integers(0, len(SEGMENTS)))],
            "no special requests here" if rng.random() < 0.9 else
            "special requests pending",
        )
        for i in range(n_cust)
    ))

    part_loader = _TableLoader(database, "part", batch_rows)
    partsupp_loader = _TableLoader(database, "partsupp", batch_rows)
    for i in range(n_part):
        name = " ".join(
            rng.choice(NAME_WORDS, size=3, replace=False).tolist()
        )
        p_type = (
            f"{TYPE_SYLL1[int(rng.integers(0, 6))]} "
            f"{TYPE_SYLL2[int(rng.integers(0, 5))]} "
            f"{TYPE_SYLL3[int(rng.integers(0, 5))]}"
        )
        part_loader.add(
            (
                i + 1,
                name,
                f"Manufacturer#{rng.integers(1, 6)}",
                BRANDS[int(rng.integers(0, len(BRANDS)))],
                p_type,
                int(rng.integers(1, 51)),
                CONTAINERS[int(rng.integers(0, len(CONTAINERS)))],
                float(np.round(900 + (i % 1000), 2)),
                "part comment",
            )
        )
        for _ in range(4):
            partsupp_loader.add(
                (
                    i + 1,
                    int(rng.integers(1, n_supp + 1)),
                    int(rng.integers(1, 10_000)),
                    float(np.round(rng.uniform(1.0, 1000.0), 2)),
                    "partsupp comment",
                )
            )
    part_loader.flush()
    partsupp_loader.flush()
    counts["partsupp"] = partsupp_loader.count

    base_day = 8036  # 1992-01-01
    order_loader = _TableLoader(database, "orders", batch_rows,
                                date_columns={4})
    line_loader = _TableLoader(database, "lineitem", batch_rows,
                               date_columns={10, 11, 12})
    for i in range(n_orders):
        order_day = int(base_day + rng.integers(0, 2400))
        order_loader.add(
            (
                i + 1,
                int(rng.integers(1, n_cust + 1)),
                str(rng.choice(["O", "F", "P"], p=[0.45, 0.45, 0.10])),
                float(np.round(rng.uniform(1000, 400000), 2)),
                order_day,
                PRIORITIES[int(rng.integers(0, len(PRIORITIES)))],
                f"Clerk#{rng.integers(1, 1000):09d}",
                0,
                "order comment",
            )
        )
        for line in range(int(rng.integers(1, 8))):
            quantity = float(rng.integers(1, 51))
            price = float(np.round(rng.uniform(900.0, 105000.0), 2))
            ship = order_day + int(rng.integers(1, 122))
            commit = order_day + int(rng.integers(30, 91))
            receipt = ship + int(rng.integers(1, 31))
            line_loader.add(
                (
                    i + 1,
                    int(rng.integers(1, n_part + 1)),
                    int(rng.integers(1, n_supp + 1)),
                    line + 1,
                    quantity,
                    price,
                    float(np.round(rng.uniform(0.0, 0.10), 2)),
                    float(np.round(rng.uniform(0.0, 0.08), 2)),
                    str(rng.choice(["R", "A", "N"], p=[0.25, 0.25, 0.5])),
                    str(rng.choice(["O", "F"])),
                    ship,
                    commit,
                    receipt,
                    SHIPINSTRUCT[int(rng.integers(0, len(SHIPINSTRUCT)))],
                    SHIPMODES[int(rng.integers(0, len(SHIPMODES)))],
                    "lineitem comment",
                )
            )
    order_loader.flush()
    line_loader.flush()
    counts["lineitem"] = line_loader.count
    return counts


# ----------------------------------------------------------------------
# The 22 query templates (engine-subset rewrites; see module docstring).
# ----------------------------------------------------------------------
_TEMPLATES: dict[int, str] = {
    1: """
        SELECT l_returnflag, l_linestatus,
               SUM(l_quantity) AS sum_qty,
               SUM(l_extendedprice) AS sum_base_price,
               SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
               SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
               AVG(l_quantity) AS avg_qty,
               AVG(l_extendedprice) AS avg_price,
               AVG(l_discount) AS avg_disc,
               COUNT(*) AS count_order
        FROM lineitem
        WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '{delta}' DAY
        GROUP BY l_returnflag, l_linestatus
        ORDER BY l_returnflag, l_linestatus
    """,
    2: """
        SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey, p.p_mfgr
        FROM part p
        JOIN partsupp ps ON p.p_partkey = ps.ps_partkey
        JOIN supplier s ON s.s_suppkey = ps.ps_suppkey
        JOIN nation n ON s.s_nationkey = n.n_nationkey
        JOIN region r ON n.n_regionkey = r.r_regionkey
        LEFT JOIN (SELECT ps2.ps_partkey AS min_partkey,
                          MIN(ps2.ps_supplycost) AS min_cost
                   FROM partsupp ps2
                   JOIN supplier s2 ON s2.s_suppkey = ps2.ps_suppkey
                   JOIN nation n2 ON s2.s_nationkey = n2.n_nationkey
                   JOIN region r2 ON n2.n_regionkey = r2.r_regionkey
                   WHERE r2.r_name = '{region}'
                   GROUP BY ps2.ps_partkey) m
          ON p.p_partkey = m.min_partkey
        WHERE p.p_size = {size} AND r.r_name = '{region}'
          AND ps.ps_supplycost = m.min_cost
        ORDER BY s.s_acctbal DESC, n.n_name, s.s_name, p.p_partkey LIMIT 100
    """,
    3: """
        SELECT l.l_orderkey,
               SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
               o.o_orderdate, o.o_shippriority
        FROM customer c
        JOIN orders o ON c.c_custkey = o.o_custkey
        JOIN lineitem l ON l.l_orderkey = o.o_orderkey
        WHERE c.c_mktsegment = '{segment}'
          AND o.o_orderdate < DATE '{date}'
          AND l.l_shipdate > DATE '{date}'
        GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority
        ORDER BY revenue DESC, o.o_orderdate LIMIT 10
    """,
    4: """
        SELECT o.o_orderpriority, COUNT(*) AS order_count
        FROM orders o
        JOIN (SELECT DISTINCT l_orderkey FROM lineitem
              WHERE l_commitdate < l_receiptdate) late
          ON o.o_orderkey = late.l_orderkey
        WHERE o.o_orderdate >= DATE '{date}'
          AND o.o_orderdate < DATE '{date}' + INTERVAL '3' MONTH
        GROUP BY o.o_orderpriority
        ORDER BY o.o_orderpriority
    """,
    5: """
        SELECT n.n_name,
               SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
        FROM customer c
        JOIN orders o ON c.c_custkey = o.o_custkey
        JOIN lineitem l ON l.l_orderkey = o.o_orderkey
        JOIN supplier s ON l.l_suppkey = s.s_suppkey
        JOIN nation n ON s.s_nationkey = n.n_nationkey
        JOIN region r ON n.n_regionkey = r.r_regionkey
        WHERE r.r_name = '{region}' AND c.c_nationkey = s.s_nationkey
          AND o.o_orderdate >= DATE '{date}'
          AND o.o_orderdate < DATE '{date}' + INTERVAL '1' YEAR
        GROUP BY n.n_name
        ORDER BY revenue DESC
    """,
    6: """
        SELECT SUM(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_shipdate >= DATE '{date}'
          AND l_shipdate < DATE '{date}' + INTERVAL '1' YEAR
          AND l_discount BETWEEN {discount} - 0.01 AND {discount} + 0.01
          AND l_quantity < {quantity}
    """,
    7: """
        SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
               EXTRACT(YEAR FROM l.l_shipdate) AS l_year,
               SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
        FROM supplier s
        JOIN lineitem l ON s.s_suppkey = l.l_suppkey
        JOIN orders o ON o.o_orderkey = l.l_orderkey
        JOIN customer c ON c.c_custkey = o.o_custkey
        JOIN nation n1 ON s.s_nationkey = n1.n_nationkey
        JOIN nation n2 ON c.c_nationkey = n2.n_nationkey
        WHERE ((n1.n_name = '{nation1}' AND n2.n_name = '{nation2}')
            OR (n1.n_name = '{nation2}' AND n2.n_name = '{nation1}'))
          AND l.l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
        GROUP BY n1.n_name, n2.n_name, EXTRACT(YEAR FROM l.l_shipdate)
        ORDER BY supp_nation, cust_nation, l_year
    """,
    8: """
        SELECT EXTRACT(YEAR FROM o.o_orderdate) AS o_year,
               SUM(CASE WHEN n2.n_name = '{nation1}'
                        THEN l.l_extendedprice * (1 - l.l_discount)
                        ELSE 0.0 END)
                 / SUM(l.l_extendedprice * (1 - l.l_discount)) AS mkt_share
        FROM part p
        JOIN lineitem l ON p.p_partkey = l.l_partkey
        JOIN supplier s ON s.s_suppkey = l.l_suppkey
        JOIN orders o ON o.o_orderkey = l.l_orderkey
        JOIN customer c ON c.c_custkey = o.o_custkey
        JOIN nation n1 ON c.c_nationkey = n1.n_nationkey
        JOIN region r ON n1.n_regionkey = r.r_regionkey
        JOIN nation n2 ON s.s_nationkey = n2.n_nationkey
        WHERE r.r_name = '{region}'
          AND o.o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
          AND p.p_type = '{type}'
        GROUP BY EXTRACT(YEAR FROM o.o_orderdate)
        ORDER BY o_year
    """,
    9: """
        SELECT n.n_name AS nation,
               EXTRACT(YEAR FROM o.o_orderdate) AS o_year,
               SUM(l.l_extendedprice * (1 - l.l_discount)
                   - ps.ps_supplycost * l.l_quantity) AS sum_profit
        FROM part p
        JOIN lineitem l ON p.p_partkey = l.l_partkey
        JOIN supplier s ON s.s_suppkey = l.l_suppkey
        JOIN partsupp ps ON ps.ps_suppkey = l.l_suppkey
                        AND ps.ps_partkey = l.l_partkey
        JOIN orders o ON o.o_orderkey = l.l_orderkey
        JOIN nation n ON s.s_nationkey = n.n_nationkey
        WHERE p.p_name LIKE '%{color}%'
        GROUP BY n.n_name, EXTRACT(YEAR FROM o.o_orderdate)
        ORDER BY nation, o_year DESC
    """,
    10: """
        SELECT c.c_custkey, c.c_name,
               SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
               c.c_acctbal, n.n_name, c.c_address, c.c_phone
        FROM customer c
        JOIN orders o ON c.c_custkey = o.o_custkey
        JOIN lineitem l ON l.l_orderkey = o.o_orderkey
        JOIN nation n ON c.c_nationkey = n.n_nationkey
        WHERE o.o_orderdate >= DATE '{date}'
          AND o.o_orderdate < DATE '{date}' + INTERVAL '3' MONTH
          AND l.l_returnflag = 'R'
        GROUP BY c.c_custkey, c.c_name, c.c_acctbal, c.c_phone,
                 n.n_name, c.c_address
        ORDER BY revenue DESC LIMIT 20
    """,
    11: """
        SELECT ps.ps_partkey,
               SUM(ps.ps_supplycost * ps.ps_availqty) AS value
        FROM partsupp ps
        JOIN supplier s ON ps.ps_suppkey = s.s_suppkey
        JOIN nation n ON s.s_nationkey = n.n_nationkey
        WHERE n.n_name = '{nation1}'
        GROUP BY ps.ps_partkey
        HAVING SUM(ps.ps_supplycost * ps.ps_availqty) > {threshold}
        ORDER BY value DESC
    """,
    12: """
        SELECT l.l_shipmode,
               SUM(CASE WHEN o.o_orderpriority = '1-URGENT'
                         OR o.o_orderpriority = '2-HIGH'
                        THEN 1 ELSE 0 END) AS high_line_count,
               SUM(CASE WHEN o.o_orderpriority <> '1-URGENT'
                        AND o.o_orderpriority <> '2-HIGH'
                        THEN 1 ELSE 0 END) AS low_line_count
        FROM orders o
        JOIN lineitem l ON o.o_orderkey = l.l_orderkey
        WHERE l.l_shipmode IN ('{shipmode1}', '{shipmode2}')
          AND l.l_commitdate < l.l_receiptdate
          AND l.l_shipdate < l.l_commitdate
          AND l.l_receiptdate >= DATE '{date}'
          AND l.l_receiptdate < DATE '{date}' + INTERVAL '1' YEAR
        GROUP BY l.l_shipmode
        ORDER BY l.l_shipmode
    """,
    13: """
        SELECT c_count, COUNT(*) AS custdist
        FROM (SELECT c.c_custkey AS custkey,
                     COUNT(o.o_orderkey) AS c_count
              FROM customer c
              LEFT JOIN orders o ON c.c_custkey = o.o_custkey
                   AND o.o_comment NOT LIKE '%special%requests%'
              GROUP BY c.c_custkey) c_orders
        GROUP BY c_count
        ORDER BY custdist DESC, c_count DESC
    """,
    14: """
        SELECT 100.00 * SUM(CASE WHEN p.p_type LIKE 'PROMO%'
                                 THEN l.l_extendedprice * (1 - l.l_discount)
                                 ELSE 0.0 END)
               / SUM(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue
        FROM lineitem l
        JOIN part p ON l.l_partkey = p.p_partkey
        WHERE l.l_shipdate >= DATE '{date}'
          AND l.l_shipdate < DATE '{date}' + INTERVAL '1' MONTH
    """,
    15: """
        SELECT s.s_suppkey, s.s_name, s.s_address, s.s_phone,
               r.total_revenue
        FROM supplier s
        JOIN (SELECT l_suppkey AS supplier_no,
                     SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
              FROM lineitem
              WHERE l_shipdate >= DATE '{date}'
                AND l_shipdate < DATE '{date}' + INTERVAL '3' MONTH
              GROUP BY l_suppkey) r
          ON s.s_suppkey = r.supplier_no
        JOIN (SELECT MAX(rr.total_revenue) AS max_revenue
              FROM (SELECT l_suppkey AS supplier_no,
                           SUM(l_extendedprice * (1 - l_discount))
                             AS total_revenue
                    FROM lineitem
                    WHERE l_shipdate >= DATE '{date}'
                      AND l_shipdate < DATE '{date}' + INTERVAL '3' MONTH
                    GROUP BY l_suppkey) rr) m
          ON r.total_revenue = m.max_revenue
        ORDER BY s.s_suppkey
    """,
    16: """
        SELECT p.p_brand, p.p_type, p.p_size,
               COUNT(DISTINCT ps.ps_suppkey) AS supplier_cnt
        FROM partsupp ps
        JOIN part p ON p.p_partkey = ps.ps_partkey
        WHERE p.p_brand <> '{brand}'
          AND p.p_type NOT LIKE '{typeprefix}%'
          AND p.p_size IN ({size1}, {size2}, {size3}, {size4})
          AND ps.ps_suppkey NOT IN (SELECT s_suppkey FROM supplier
                                    WHERE s_comment LIKE '%Complaints%')
        GROUP BY p.p_brand, p.p_type, p.p_size
        ORDER BY supplier_cnt DESC, p.p_brand, p.p_type, p.p_size
    """,
    17: """
        SELECT SUM(l.l_extendedprice) / 7.0 AS avg_yearly
        FROM lineitem l
        JOIN part p ON p.p_partkey = l.l_partkey
        LEFT JOIN (SELECT l_partkey, 0.2 * AVG(l_quantity) AS small_qty
                   FROM lineitem GROUP BY l_partkey) a
          ON l.l_partkey = a.l_partkey
        WHERE p.p_brand = '{brand}' AND p.p_container = '{container}'
          AND l.l_quantity < a.small_qty
    """,
    18: """
        SELECT c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate,
               o.o_totalprice, SUM(l.l_quantity) AS total_qty
        FROM customer c
        JOIN orders o ON c.c_custkey = o.o_custkey
        JOIN lineitem l ON o.o_orderkey = l.l_orderkey
        WHERE o.o_orderkey IN (SELECT l_orderkey FROM lineitem
                               GROUP BY l_orderkey
                               HAVING SUM(l_quantity) > {quantity})
        GROUP BY c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate,
                 o.o_totalprice
        ORDER BY o.o_totalprice DESC, o.o_orderdate LIMIT 100
    """,
    19: """
        SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
        FROM lineitem l
        JOIN part p ON p.p_partkey = l.l_partkey
        WHERE (p.p_brand = '{brand}'
               AND l.l_quantity BETWEEN {q1} AND {q1} + 10
               AND p.p_size BETWEEN 1 AND 5)
           OR (p.p_brand = '{brand2}'
               AND l.l_quantity BETWEEN {q2} AND {q2} + 10
               AND p.p_size BETWEEN 1 AND 10)
           OR (p.p_brand = '{brand3}'
               AND l.l_quantity BETWEEN {q3} AND {q3} + 10
               AND p.p_size BETWEEN 1 AND 15)
    """,
    20: """
        SELECT s.s_name, s.s_address
        FROM supplier s
        JOIN nation n ON s.s_nationkey = n.n_nationkey
        JOIN (SELECT DISTINCT ps.ps_suppkey AS suppkey
              FROM partsupp ps
              JOIN (SELECT l_partkey, l_suppkey,
                           0.5 * SUM(l_quantity) AS half_qty
                    FROM lineitem
                    WHERE l_shipdate >= DATE '{date}'
                      AND l_shipdate < DATE '{date}' + INTERVAL '1' YEAR
                    GROUP BY l_partkey, l_suppkey) lq
                ON ps.ps_partkey = lq.l_partkey
               AND ps.ps_suppkey = lq.l_suppkey
              WHERE ps.ps_availqty > lq.half_qty
                AND ps.ps_partkey IN (SELECT p_partkey FROM part
                                      WHERE p_name LIKE '{color}%')) ok
          ON s.s_suppkey = ok.suppkey
        WHERE n.n_name = '{nation1}'
        ORDER BY s.s_name
    """,
    21: """
        SELECT s.s_name, COUNT(*) AS numwait
        FROM supplier s
        JOIN lineitem l1 ON s.s_suppkey = l1.l_suppkey
        JOIN orders o ON o.o_orderkey = l1.l_orderkey
        JOIN nation n ON s.s_nationkey = n.n_nationkey
        JOIN (SELECT l_orderkey, COUNT(DISTINCT l_suppkey) AS nsupp
              FROM lineitem GROUP BY l_orderkey) others
          ON others.l_orderkey = l1.l_orderkey
        JOIN (SELECT l_orderkey, COUNT(DISTINCT l_suppkey) AS nlate
              FROM lineitem WHERE l_receiptdate > l_commitdate
              GROUP BY l_orderkey) late
          ON late.l_orderkey = l1.l_orderkey
        WHERE o.o_orderstatus = 'F'
          AND l1.l_receiptdate > l1.l_commitdate
          AND n.n_name = '{nation1}'
          AND others.nsupp > 1
          AND late.nlate = 1
        GROUP BY s.s_name
        ORDER BY numwait DESC, s.s_name LIMIT 100
    """,
    22: """
        SELECT SUBSTR(c.c_phone, 1, 2) AS cntrycode,
               COUNT(*) AS numcust,
               SUM(c.c_acctbal) AS totacctbal
        FROM customer c
        LEFT JOIN orders o ON o.o_custkey = c.c_custkey
        WHERE SUBSTR(c.c_phone, 1, 2) IN
              ('{cc1}', '{cc2}', '{cc3}', '{cc4}', '{cc5}', '{cc6}', '{cc7}')
          AND c.c_acctbal > {balance}
          AND o.o_orderkey IS NULL
        GROUP BY SUBSTR(c.c_phone, 1, 2)
        ORDER BY cntrycode
    """,
}

#: The engine-subset rewrites, under their public name. These are the
#: decorrelator's oracle: each faithful template below must return
#: repr-identical rows to its rewrite on the same instance.
TPCH_REWRITTEN: dict[int, str] = _TEMPLATES

#: TPC-H-faithful forms: the spec's correlated/EXISTS/scalar-subquery and
#: CTE shapes verbatim (modulo parameter markers). Templates whose rewrite
#: already is the faithful shape are shared with ``TPCH_REWRITTEN``.
TPCH_FAITHFUL: dict[int, str] = {
    **_TEMPLATES,
    2: """
        SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey, p.p_mfgr
        FROM part p
        JOIN partsupp ps ON p.p_partkey = ps.ps_partkey
        JOIN supplier s ON s.s_suppkey = ps.ps_suppkey
        JOIN nation n ON s.s_nationkey = n.n_nationkey
        JOIN region r ON n.n_regionkey = r.r_regionkey
        WHERE p.p_size = {size} AND r.r_name = '{region}'
          AND ps.ps_supplycost = (
              SELECT MIN(ps2.ps_supplycost)
              FROM partsupp ps2
              JOIN supplier s2 ON s2.s_suppkey = ps2.ps_suppkey
              JOIN nation n2 ON s2.s_nationkey = n2.n_nationkey
              JOIN region r2 ON n2.n_regionkey = r2.r_regionkey
              WHERE ps2.ps_partkey = p.p_partkey
                AND r2.r_name = '{region}')
        ORDER BY s.s_acctbal DESC, n.n_name, s.s_name, p.p_partkey LIMIT 100
    """,
    4: """
        SELECT o.o_orderpriority, COUNT(*) AS order_count
        FROM orders o
        WHERE o.o_orderdate >= DATE '{date}'
          AND o.o_orderdate < DATE '{date}' + INTERVAL '3' MONTH
          AND EXISTS (SELECT * FROM lineitem l
                      WHERE l.l_orderkey = o.o_orderkey
                        AND l.l_commitdate < l.l_receiptdate)
        GROUP BY o.o_orderpriority
        ORDER BY o.o_orderpriority
    """,
    11: """
        SELECT ps.ps_partkey,
               SUM(ps.ps_supplycost * ps.ps_availqty) AS value
        FROM partsupp ps
        JOIN supplier s ON ps.ps_suppkey = s.s_suppkey
        JOIN nation n ON s.s_nationkey = n.n_nationkey
        WHERE n.n_name = '{nation1}'
        GROUP BY ps.ps_partkey
        HAVING SUM(ps.ps_supplycost * ps.ps_availqty) > (
            SELECT SUM(ps2.ps_supplycost * ps2.ps_availqty) * 0.0001
            FROM partsupp ps2
            JOIN supplier s2 ON ps2.ps_suppkey = s2.s_suppkey
            JOIN nation n2 ON s2.s_nationkey = n2.n_nationkey
            WHERE n2.n_name = '{nation1}')
        ORDER BY value DESC
    """,
    15: """
        WITH revenue AS (
            SELECT l_suppkey AS supplier_no,
                   SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
            FROM lineitem
            WHERE l_shipdate >= DATE '{date}'
              AND l_shipdate < DATE '{date}' + INTERVAL '3' MONTH
            GROUP BY l_suppkey)
        SELECT s.s_suppkey, s.s_name, s.s_address, s.s_phone,
               r.total_revenue
        FROM supplier s
        JOIN revenue r ON s.s_suppkey = r.supplier_no
        WHERE r.total_revenue = (SELECT MAX(r2.total_revenue)
                                 FROM revenue r2)
        ORDER BY s.s_suppkey
    """,
    17: """
        SELECT SUM(l.l_extendedprice) / 7.0 AS avg_yearly
        FROM lineitem l
        JOIN part p ON p.p_partkey = l.l_partkey
        WHERE p.p_brand = '{brand}' AND p.p_container = '{container}'
          AND l.l_quantity < (SELECT 0.2 * AVG(l2.l_quantity)
                              FROM lineitem l2
                              WHERE l2.l_partkey = l.l_partkey)
    """,
    20: """
        SELECT s.s_name, s.s_address
        FROM supplier s
        JOIN nation n ON s.s_nationkey = n.n_nationkey
        WHERE n.n_name = '{nation1}'
          AND s.s_suppkey IN (
              SELECT ps.ps_suppkey FROM partsupp ps
              WHERE ps.ps_partkey IN (SELECT p_partkey FROM part
                                      WHERE p_name LIKE '{color}%')
                AND ps.ps_availqty > (
                    SELECT 0.5 * SUM(l.l_quantity) FROM lineitem l
                    WHERE l.l_partkey = ps.ps_partkey
                      AND l.l_suppkey = ps.ps_suppkey
                      AND l.l_shipdate >= DATE '{date}'
                      AND l.l_shipdate < DATE '{date}' + INTERVAL '1' YEAR))
        ORDER BY s.s_name
    """,
    21: """
        SELECT s.s_name, COUNT(*) AS numwait
        FROM supplier s
        JOIN lineitem l1 ON s.s_suppkey = l1.l_suppkey
        JOIN orders o ON o.o_orderkey = l1.l_orderkey
        JOIN nation n ON s.s_nationkey = n.n_nationkey
        WHERE o.o_orderstatus = 'F'
          AND l1.l_receiptdate > l1.l_commitdate
          AND n.n_name = '{nation1}'
          AND EXISTS (SELECT * FROM lineitem l2
                      WHERE l2.l_orderkey = l1.l_orderkey
                        AND l2.l_suppkey <> l1.l_suppkey)
          AND NOT EXISTS (SELECT * FROM lineitem l3
                          WHERE l3.l_orderkey = l1.l_orderkey
                            AND l3.l_suppkey <> l1.l_suppkey
                            AND l3.l_receiptdate > l3.l_commitdate)
        GROUP BY s.s_name
        ORDER BY numwait DESC, s.s_name LIMIT 100
    """,
    22: """
        SELECT SUBSTR(c.c_phone, 1, 2) AS cntrycode,
               COUNT(*) AS numcust,
               SUM(c.c_acctbal) AS totacctbal
        FROM customer c
        WHERE SUBSTR(c.c_phone, 1, 2) IN
              ('{cc1}', '{cc2}', '{cc3}', '{cc4}', '{cc5}', '{cc6}', '{cc7}')
          AND c.c_acctbal > (
              SELECT AVG(c2.c_acctbal) FROM customer c2
              WHERE c2.c_acctbal > 0.00
                AND SUBSTR(c2.c_phone, 1, 2) IN
                    ('{cc1}', '{cc2}', '{cc3}', '{cc4}',
                     '{cc5}', '{cc6}', '{cc7}'))
          AND NOT EXISTS (SELECT * FROM orders o
                          WHERE o.o_custkey = c.c_custkey)
        GROUP BY SUBSTR(c.c_phone, 1, 2)
        ORDER BY cntrycode
    """,
}


def tpch_params(rng: np.random.Generator | None = None) -> dict:
    """One seeded draw of substitution parameters for every template.

    Both template sets consume the same parameter names, so formatting
    ``TPCH_FAITHFUL[i]`` and ``TPCH_REWRITTEN[i]`` with one ``tpch_params``
    draw yields the *same* query instance in two syntactic forms.
    """
    rng = rng or np.random.default_rng(0)
    nations = [n for n, _ in NATIONS]
    n1, n2 = rng.choice(len(nations), size=2, replace=False)
    sizes = rng.choice(np.arange(1, 51), size=4, replace=False)
    shipmode1, shipmode2 = rng.choice(len(SHIPMODES), size=2, replace=False)
    params = {
        "delta": int(rng.integers(60, 121)),
        "size": int(rng.integers(1, 51)),
        "region": REGIONS[int(rng.integers(0, len(REGIONS)))],
        "segment": SEGMENTS[int(rng.integers(0, len(SEGMENTS)))],
        "date": f"199{rng.integers(3, 8)}-0{rng.integers(1, 10)}-01",
        "discount": round(float(rng.uniform(0.02, 0.09)), 2),
        "quantity": int(rng.integers(24, 36)),
        "nation1": nations[n1],
        "nation2": nations[n2],
        "type": (
            f"{TYPE_SYLL1[int(rng.integers(0, 6))]} "
            f"{TYPE_SYLL2[int(rng.integers(0, 5))]} "
            f"{TYPE_SYLL3[int(rng.integers(0, 5))]}"
        ),
        "color": NAME_WORDS[int(rng.integers(0, len(NAME_WORDS)))],
        "threshold": int(rng.integers(1_000, 100_000)),
        "shipmode1": SHIPMODES[shipmode1],
        "shipmode2": SHIPMODES[shipmode2],
        "brand": BRANDS[int(rng.integers(0, len(BRANDS)))],
        "brand2": BRANDS[int(rng.integers(0, len(BRANDS)))],
        "brand3": BRANDS[int(rng.integers(0, len(BRANDS)))],
        "typeprefix": TYPE_SYLL1[int(rng.integers(0, 6))],
        "size1": int(sizes[0]),
        "size2": int(sizes[1]),
        "size3": int(sizes[2]),
        "size4": int(sizes[3]),
        "container": CONTAINERS[int(rng.integers(0, len(CONTAINERS)))],
        "q1": int(rng.integers(1, 11)),
        "q2": int(rng.integers(10, 21)),
        "q3": int(rng.integers(20, 31)),
        "cc1": "10", "cc2": "11", "cc3": "12", "cc4": "13",
        "cc5": "14", "cc6": "15", "cc7": "16",
        "balance": round(float(rng.uniform(0.0, 5000.0)), 2),
    }
    return params


def tpch_query(
    template_id: int,
    rng: np.random.Generator | None = None,
    faithful: bool = False,
) -> str:
    """Instantiate one TPC-H template with (seeded) random parameters.

    ``faithful=True`` selects the spec-shaped form from
    :data:`TPCH_FAITHFUL`; the default is the engine-subset rewrite.
    """
    templates = TPCH_FAITHFUL if faithful else TPCH_REWRITTEN
    if template_id not in templates:
        raise WorkloadError(f"unknown TPC-H template {template_id}")
    return templates[template_id].format(**tpch_params(rng)).strip()


def generate_tpch_queries(count: int = 2208, seed: int = 1) -> list[str]:
    """*count* parameterized queries cycling through all 22 templates."""
    rng = np.random.default_rng(seed)
    return [tpch_query(i % 22 + 1, rng) for i in range(count)]
