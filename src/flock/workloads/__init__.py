"""flock.workloads — TPC-H and TPC-C generators.

The substrates of the paper's SQL-provenance experiment (Table 1: 2,208
TPC-H queries and 2,200 TPC-C queries). Schemas are the standard ones;
query templates ship in two forms: :data:`TPCH_FAITHFUL` keeps the spec's
correlated subqueries, EXISTS, scalar subqueries and CTEs verbatim, while
:data:`TPCH_REWRITTEN` expresses the same queries in the pre-decorrelation
engine subset (joins against aggregated FROM-subqueries). Both forms touch
the same tables and columns — and must return identical rows, which makes
the rewrites the decorrelator's differential oracle.
"""

from flock.workloads.tpch import (
    TPCH_FAITHFUL,
    TPCH_REWRITTEN,
    TPCH_TABLES,
    create_tpch_schema,
    generate_tpch_data,
    generate_tpch_queries,
    tpch_params,
    tpch_query,
)
from flock.workloads.tpcc import (
    TPCC_TABLES,
    create_tpcc_schema,
    generate_tpcc_data,
    generate_tpcc_transactions,
)

__all__ = [
    "TPCC_TABLES",
    "TPCH_FAITHFUL",
    "TPCH_REWRITTEN",
    "TPCH_TABLES",
    "create_tpcc_schema",
    "create_tpch_schema",
    "generate_tpcc_data",
    "generate_tpch_data",
    "generate_tpch_queries",
    "generate_tpcc_transactions",
    "tpch_params",
    "tpch_query",
]
