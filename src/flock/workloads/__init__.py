"""flock.workloads — TPC-H and TPC-C generators.

The substrates of the paper's SQL-provenance experiment (Table 1: 2,208
TPC-H queries and 2,200 TPC-C queries). Schemas are the standard ones;
query templates are rewritten into this engine's SQL subset (no correlated
subqueries — they are expressed as joins against aggregated FROM-subqueries)
while touching the same tables and columns, which is what coarse-grained
provenance capture measures.
"""

from flock.workloads.tpch import (
    TPCH_TABLES,
    create_tpch_schema,
    generate_tpch_data,
    generate_tpch_queries,
    tpch_query,
)
from flock.workloads.tpcc import (
    TPCC_TABLES,
    create_tpcc_schema,
    generate_tpcc_data,
    generate_tpcc_transactions,
)

__all__ = [
    "TPCC_TABLES",
    "TPCH_TABLES",
    "create_tpcc_schema",
    "create_tpch_schema",
    "generate_tpcc_data",
    "generate_tpch_data",
    "generate_tpch_queries",
    "generate_tpcc_transactions",
    "tpch_query",
]
